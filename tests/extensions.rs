//! Integration tests for the extension machinery (alternative-graph
//! metrics, turn-aware routing, ESX, CH) working together on a real
//! synthetic city.

use alt_route_planner::prelude::*;
use arp_core::altgraph::alt_graph_metrics;
use arp_core::{turn_aware_shortest_path, ChSearch, ContractionHierarchy, EsxOptions, TurnModel};
use arp_roadnet::spatial::SpatialIndex;

fn city_query() -> (arp_citygen::GeneratedCity, NodeId, NodeId) {
    let g = citygen::generate(City::Melbourne, Scale::Tiny, 404);
    let idx = SpatialIndex::build(&g.network);
    let bb = g.network.bbox();
    let s = idx
        .nearest_node(
            &g.network,
            Point::new(
                bb.min_lon + bb.width_deg() * 0.2,
                bb.min_lat + bb.height_deg() * 0.25,
            ),
        )
        .unwrap();
    let t = idx
        .nearest_node(
            &g.network,
            Point::new(
                bb.min_lon + bb.width_deg() * 0.8,
                bb.min_lat + bb.height_deg() * 0.8,
            ),
        )
        .unwrap();
    (g, s, t)
}

#[test]
fn alt_graph_metrics_of_each_technique_are_sane() {
    let (g, s, t) = city_query();
    let net = &g.network;
    let q = AltQuery::paper();
    let best = shortest_path(net, net.weights(), s, t).unwrap().cost_ms;

    for provider in standard_providers(net, 404) {
        let routes = provider.alternatives(net, net.weights(), s, t, &q).unwrap();
        let paths: Vec<Path> = routes.into_iter().map(|r| r.path).collect();
        if paths.is_empty() {
            continue;
        }
        let m = alt_graph_metrics(net, net.weights(), &paths, best);
        assert!(m.total_distance >= 0.99, "{}: {m:?}", provider.kind());
        assert!(
            m.average_distance >= 0.99 && m.average_distance < 2.0,
            "{}: {m:?}",
            provider.kind()
        );
        // k=3 routes cannot need more than a handful of decisions.
        assert!(
            m.decision_edges <= 3 * paths.len(),
            "{}: {m:?}",
            provider.kind()
        );
    }
}

#[test]
fn turn_aware_route_never_turns_more_than_plain() {
    let (g, s, t) = city_query();
    let net = &g.network;
    let plain = shortest_path(net, net.weights(), s, t).unwrap();
    let aware = turn_aware_shortest_path(net, net.weights(), &TurnModel::default(), s, t).unwrap();
    // The real guarantee: the turn-aware route minimizes the *penalized*
    // objective, so it must not lose to the plain route under the model.
    let model = TurnModel::default();
    let penalized = |p: &Path| -> u64 {
        let turns: u64 = p
            .edges
            .windows(2)
            .map(|w| model.penalty_ms(net, w[0], w[1]) as u64)
            .sum();
        p.cost_under(net.weights()) + turns
    };
    assert!(
        penalized(&aware) <= penalized(&plain),
        "aware {} > plain {} under the turn model",
        penalized(&aware),
        penalized(&plain)
    );
    // And the geometric 45-degree turn count stays comparable (the model
    // uses a 30-degree threshold, so tiny discrepancies are expected).
    let plain_turns = arp_core::quality::turn_count(net, &plain, 45.0);
    let aware_turns = arp_core::quality::turn_count(net, &aware, 45.0);
    assert!(
        aware_turns <= plain_turns + 2,
        "aware {aware_turns} much worse than plain {plain_turns}"
    );
    // And the travel-time overhead stays moderate.
    let overhead = aware.cost_under(net.weights()) as f64 / plain.cost_ms as f64;
    assert!(overhead < 1.5, "turn-aware overhead {overhead}");
}

#[test]
fn esx_and_ch_agree_with_plain_search_on_city() {
    let (g, s, t) = city_query();
    let net = &g.network;
    let q = AltQuery::paper();
    let best = shortest_path(net, net.weights(), s, t).unwrap();

    let esx =
        arp_core::esx_alternatives(net, net.weights(), s, t, &q, &EsxOptions::default()).unwrap();
    assert_eq!(esx[0].cost_ms, best.cost_ms);

    let ch = ContractionHierarchy::build(net, net.weights()).unwrap();
    let mut search = ChSearch::new(&ch);
    assert_eq!(search.distance(&ch, s, t), Some(best.cost_ms));
    let unpacked = ch.shortest_path(net, net.weights(), s, t).unwrap();
    assert_eq!(unpacked.cost_ms, best.cost_ms);
    assert!(unpacked.validate(net));
}
