//! Workspace-level integration tests: the complete paper pipeline from
//! synthetic OSM data to rated study tables, spanning every crate.

use alt_route_planner::prelude::*;
use arp_core::provider::standard_providers;
use arp_osm::constructor::{build_road_network, ConstructorConfig};
use arp_osm::export::network_to_osm;
use arp_osm::writer::write_osm_xml;
use arp_osm::xml::parse_osm_xml;

/// The full §3 data path: city → OSM XML → constructor → demo query
/// processor → four approaches → blinded display payload.
#[test]
fn osm_to_demo_pipeline() {
    let city = citygen::generate(City::Melbourne, Scale::Tiny, 2024);
    let xml = write_osm_xml(&network_to_osm(&city.network));
    let parsed = parse_osm_xml(&xml).unwrap();
    let (net, stats) = build_road_network(&parsed, &ConstructorConfig::default()).unwrap();
    assert_eq!(stats.dangling_refs, 0);
    assert_eq!(net.num_edges(), city.network.num_edges());

    let processor = QueryProcessor::new("Melbourne", net, 2024);
    let bb = processor.network().bbox();
    let s = Point::new(
        bb.min_lon + bb.width_deg() * 0.2,
        bb.min_lat + bb.height_deg() * 0.3,
    );
    let t = Point::new(
        bb.min_lon + bb.width_deg() * 0.8,
        bb.min_lat + bb.height_deg() * 0.75,
    );
    let resp = processor.process(s, t).unwrap();
    assert_eq!(resp.approaches.len(), 4);
    assert!(resp.fastest_minutes >= 1);
    // Every approach's fastest display time is >= the global fastest.
    for a in &resp.approaches {
        assert!(!a.routes.is_empty());
        assert!(a.routes[0].minutes >= resp.fastest_minutes);
    }
}

/// The §4 study pipeline on a small city, checking the blinding and the
/// statistics layer work against real provider output.
#[test]
fn study_to_tables_pipeline() {
    let city = citygen::generate(City::Melbourne, Scale::Small, 99);
    let providers = standard_providers(&city.network, 99);
    let config = StudyConfig {
        seed: 99,
        query: AltQuery::paper(),
        resident_bins: [8, 8, 0],
        nonresident_bins: [6, 6, 0],
    };
    let outcome = run_study(
        &city.network,
        &providers,
        &config,
        &Calibration::from_paper_targets(),
    );
    assert!(outcome.responses.len() >= 20);

    let t1 = table1(&outcome);
    let t2 = table2(&outcome);
    let t3 = table3(&outcome);
    assert_eq!(
        t2.rows[0].responses + t3.rows[0].responses,
        t1.rows[0].responses
    );
    // Ratings live on the 1..=5 scale, so every summary does too.
    for table in [&t1, &t2, &t3] {
        for row in &table.rows {
            for cell in &row.cells {
                if cell.n > 0 {
                    assert!((1.0..=5.0).contains(&cell.mean));
                    assert!(cell.sd <= 2.5);
                }
            }
        }
    }
    let report = anova_report(&outcome);
    assert!(report.all.is_some());
}

/// Cross-technique agreement: every technique's first route is the same
/// optimal cost, on every city.
#[test]
fn first_route_is_always_the_public_optimum() {
    for kind in City::ALL {
        let city = citygen::generate(kind, Scale::Tiny, 31);
        let net = &city.network;
        let queries_seed = 31;
        let mut ws = SearchSpace::new(net);
        let n = net.num_nodes() as u32;
        let pairs = [(0u32, n / 2), (1, n - 2), (n / 3, 2 * n / 3)];
        let q = AltQuery::paper();
        for (a, b) in pairs {
            let (s, t) = (NodeId(a), NodeId(b));
            if s == t {
                continue;
            }
            let best = ws.shortest_path(net, net.weights(), s, t).unwrap().cost_ms;
            let pen =
                penalty_alternatives(net, net.weights(), s, t, &q, &PenaltyOptions::default())
                    .unwrap();
            let pla =
                plateau_alternatives(net, net.weights(), s, t, &q, &PlateauOptions::default())
                    .unwrap();
            let dis = dissimilarity_alternatives(
                net,
                net.weights(),
                s,
                t,
                &q,
                &DissimilarityOptions::default(),
            )
            .unwrap();
            let yen = yen_k_shortest_paths(net, net.weights(), s, t, 1).unwrap();
            assert_eq!(pen[0].cost_ms, best, "{kind:?} penalty");
            assert_eq!(pla[0].cost_ms, best, "{kind:?} plateaus");
            assert_eq!(dis[0].cost_ms, best, "{kind:?} dissimilarity");
            assert_eq!(yen[0].cost_ms, best, "{kind:?} yen");
        }
        let _ = queries_seed;
    }
}

/// The demo HTTP API drives the whole stack: route query, rating, results.
#[test]
fn http_api_full_session() {
    let city = citygen::generate(City::Copenhagen, Scale::Tiny, 5);
    let app = DemoApp::new(QueryProcessor::new(city.name.clone(), city.network, 5));

    let bb = app.processor.network().bbox();
    let body = format!(
        r#"{{"slon": {}, "slat": {}, "tlon": {}, "tlat": {}}}"#,
        bb.min_lon + bb.width_deg() * 0.25,
        bb.min_lat + bb.height_deg() * 0.25,
        bb.min_lon + bb.width_deg() * 0.7,
        bb.min_lat + bb.height_deg() * 0.8,
    );
    let route = app.handle("POST", "/api/route", &body);
    assert_eq!(route.status, 200, "{}", route.body);

    for i in 0..5 {
        let rate = format!(
            r#"{{"a": {}, "b": 4, "c": 3, "d": 5, "resident": {}, "fastest_minutes": 12}}"#,
            1 + (i % 5),
            i % 2 == 0
        );
        assert_eq!(app.handle("POST", "/api/rate", &rate).status, 200);
    }
    assert_eq!(app.store.len(), 5);
    let results = app.handle("GET", "/api/results", "");
    assert!(results.body.contains("\"count\":5"));

    // CSV export round-trips through the store loader.
    let csv = app.handle("GET", "/api/results.csv", "").body;
    let restored = ResponseStore::load_csv(&csv).unwrap();
    assert_eq!(restored.len(), 5);
}

/// Serialization round-trip of a generated city through the roadnet text
/// format preserves routing behaviour exactly.
#[test]
fn network_io_preserves_routing() {
    let city = citygen::generate(City::Dhaka, Scale::Tiny, 77);
    let text = arp_roadnet::io::network_to_string(&city.network);
    let restored = arp_roadnet::io::network_from_str(&text).unwrap();

    let mut ws1 = SearchSpace::new(&city.network);
    let mut ws2 = SearchSpace::new(&restored);
    let n = city.network.num_nodes() as u32;
    for (s, t) in [(0u32, n - 1), (n / 4, 3 * n / 4), (n / 2, 1)] {
        if s == t {
            continue;
        }
        let d1 = ws1.shortest_path(&city.network, city.network.weights(), NodeId(s), NodeId(t));
        let d2 = ws2.shortest_path(&restored, restored.weights(), NodeId(s), NodeId(t));
        match (d1, d2) {
            (Ok(a), Ok(b)) => assert_eq!(a.cost_ms, b.cost_ms),
            (Err(_), Err(_)) => {}
            other => panic!("routing diverged after io round-trip: {other:?}"),
        }
    }
}
