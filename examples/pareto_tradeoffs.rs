//! Skyline routing (§2.4's Pareto-optimal paths): for one commute, print
//! the full time-vs-distance trade-off frontier next to what the
//! alternative-route techniques report, and show where each technique's
//! routes sit relative to the frontier.
//!
//! ```sh
//! cargo run --release --example pareto_tradeoffs
//! ```

use alt_route_planner::prelude::*;
use arp_roadnet::weight::ms_to_minutes_f64;

fn main() {
    let city = citygen::generate(City::Melbourne, Scale::Small, 13);
    let net = &city.network;
    let index = SpatialIndex::build(net);
    let bb = net.bbox();
    let s = index
        .nearest_node(
            net,
            Point::new(
                bb.min_lon + bb.width_deg() * 0.15,
                bb.min_lat + bb.height_deg() * 0.2,
            ),
        )
        .unwrap();
    let t = index
        .nearest_node(
            net,
            Point::new(
                bb.min_lon + bb.width_deg() * 0.85,
                bb.min_lat + bb.height_deg() * 0.85,
            ),
        )
        .unwrap();

    let frontier =
        pareto_paths(net, net.weights(), s, t, &ParetoOptions::default()).expect("routable");
    println!("Pareto frontier (time × distance) for {s} -> {t}:");
    println!("{:>8} {:>10}", "min", "km");
    for r in &frontier {
        println!(
            "{:>8.1} {:>10.2}",
            ms_to_minutes_f64(r.time_ms),
            r.dist_m as f64 / 1000.0
        );
    }

    // Where do the study techniques' routes land relative to the frontier?
    let q = AltQuery::paper();
    let dominated_by_frontier = |time: u64, dist: f64| {
        frontier.iter().any(|f| {
            f.time_ms <= time
                && (f.dist_m as f64) <= dist + 1.0
                && (f.time_ms < time || (f.dist_m as f64) < dist - 1.0)
        })
    };
    for provider in standard_providers(net, 13) {
        let routes = provider
            .alternatives(net, net.weights(), s, t, &q)
            .expect("routable");
        println!("\n{} routes vs the frontier:", provider.kind());
        for (i, r) in routes.iter().enumerate() {
            let dist = r.path.length_m(net);
            let tag = if dominated_by_frontier(r.public_cost_ms, dist) {
                "dominated (trades time AND distance away for diversity)"
            } else {
                "on/near the frontier"
            };
            println!(
                "  route {}: {:>5.1} min {:>6.2} km — {}",
                i + 1,
                ms_to_minutes_f64(r.public_cost_ms),
                dist / 1000.0,
                tag
            );
        }
    }
    println!(
        "\nTakeaway: alternative-route techniques deliberately report some\n\
         Pareto-dominated routes — diversity, not bi-criteria optimality,\n\
         is what users are shown (and what the study evaluates)."
    );
}
