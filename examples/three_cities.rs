//! Cross-city comparison on Melbourne, Dhaka and Copenhagen (the three
//! networks in the paper's title): objective route-set quality and wall
//! time per technique, over a batch of random medium-length queries.
//!
//! ```sh
//! cargo run --release --example three_cities
//! ```

use std::time::Instant;

use alt_route_planner::prelude::*;
use arp_core::quality::route_set_quality;
use arp_roadnet::weight::minutes_to_ms;

fn main() {
    let query = AltQuery::paper();
    println!(
        "{:<12} {:<14} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "city", "technique", "routes", "stretch", "diversity", "wide%", "ms/query"
    );

    for city_kind in City::ALL {
        let city = citygen::generate(city_kind, Scale::Small, 99);
        let net = &city.network;
        let index = SpatialIndex::build(net);
        let bb = net.bbox();

        // Deterministic spread of 12 medium-length queries.
        let mut queries = Vec::new();
        for i in 0..12u32 {
            let fx = 0.1 + 0.8 * ((i * 7 % 12) as f64 / 12.0);
            let fy = 0.1 + 0.8 * ((i * 5 % 12) as f64 / 12.0);
            let s = index
                .nearest_node(
                    net,
                    Point::new(
                        bb.min_lon + bb.width_deg() * fx,
                        bb.min_lat + bb.height_deg() * 0.1,
                    ),
                )
                .unwrap();
            let t = index
                .nearest_node(
                    net,
                    Point::new(
                        bb.min_lon + bb.width_deg() * (1.0 - fx),
                        bb.min_lat + bb.height_deg() * fy,
                    ),
                )
                .unwrap();
            if s == t {
                continue;
            }
            if let Ok(best) = shortest_path(net, net.weights(), s, t) {
                if best.cost_ms >= minutes_to_ms(3.0) {
                    queries.push((s, t, best.cost_ms));
                }
            }
        }

        for provider in standard_providers(net, 99) {
            let mut count = 0usize;
            let mut stretch_sum = 0.0;
            let mut div_sum = 0.0;
            let mut wide_sum = 0.0;
            let mut routes_sum = 0usize;
            let started = Instant::now();
            for &(s, t, best) in &queries {
                let Ok(routes) = provider.alternatives(net, net.weights(), s, t, &query) else {
                    continue;
                };
                let paths: Vec<_> = routes.iter().map(|r| r.path.clone()).collect();
                let q = route_set_quality(net, net.weights(), &paths, best);
                count += 1;
                routes_sum += q.count;
                stretch_sum += q.mean_stretch;
                div_sum += q.diversity;
                wide_sum += q.mean_wide_share;
            }
            let elapsed = started.elapsed().as_secs_f64() * 1000.0 / count.max(1) as f64;
            println!(
                "{:<12} {:<14} {:>7.1} {:>9.3} {:>9.3} {:>8.0}% {:>10.2}",
                city.name,
                provider.kind().to_string(),
                routes_sum as f64 / count.max(1) as f64,
                stretch_sum / count.max(1) as f64,
                div_sum / count.max(1) as f64,
                wide_sum / count.max(1) as f64 * 100.0,
                elapsed
            );
        }
        println!();
    }
}
