//! Launches the web demo (Figs. 2–3): an interactive map where you pick a
//! source and a target, see the four approaches' routes blinded as A–D,
//! and submit 1–5 ratings.
//!
//! ```sh
//! cargo run --release --example demo_server [city] [port]
//! # then open http://127.0.0.1:8765
//! ```

use std::net::TcpListener;
use std::sync::Arc;

use alt_route_planner::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let city_kind: City = args
        .next()
        .map(|s| s.parse().expect("city: melbourne | dhaka | copenhagen"))
        .unwrap_or(City::Melbourne);
    let port: u16 = args
        .next()
        .map(|s| s.parse().expect("port number"))
        .unwrap_or(8765);

    let city = citygen::generate(city_kind, Scale::Medium, 42);
    println!(
        "Generated {} ({} nodes, {} edges)",
        city.name,
        city.network.num_nodes(),
        city.network.num_edges()
    );
    let processor = QueryProcessor::new(city.name.clone(), city.network, 42);
    let app = Arc::new(DemoApp::new(processor));

    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind demo port");
    println!("Demo running at http://127.0.0.1:{port}/  (Ctrl-C to stop)");
    serve(app, listener).expect("serve");
}
