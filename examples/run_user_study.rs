//! Runs a scaled-down user study end to end and prints the Table 1–3
//! analogues plus the one-way ANOVA — the full §4 pipeline in one command.
//! (The full-size calibrated reproduction lives in the `repro_table*`
//! binaries of `arp-bench`.)
//!
//! ```sh
//! cargo run --release --example run_user_study
//! ```

use alt_route_planner::prelude::*;
use arp_core::provider::standard_providers;

fn main() {
    let city = citygen::generate(City::Melbourne, Scale::Medium, 5);
    println!(
        "Simulating a user study on {} ({} nodes)…\n",
        city.name,
        city.network.num_nodes()
    );

    let providers = standard_providers(&city.network, 5);
    // A quarter-size study so the example finishes in seconds.
    let config = StudyConfig {
        seed: 5,
        query: AltQuery::paper(),
        resident_bins: [10, 20, 9],
        nonresident_bins: [7, 7, 7],
    };
    let calibration = Calibration::from_paper_targets();
    let outcome = run_study(&city.network, &providers, &config, &calibration);
    println!(
        "Collected {} responses ({} residents, {} non-residents)\n",
        outcome.responses.len(),
        outcome.count(Some(true), None),
        outcome.count(Some(false), None)
    );

    println!("{}", render(&table1(&outcome)));
    println!("{}", render(&table2(&outcome)));
    println!("{}", render(&table3(&outcome)));
    println!("{}", render_anova(&anova_report(&outcome)));
}
