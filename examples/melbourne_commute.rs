//! A Melbourne commute scenario: the workload the paper's introduction
//! motivates. A commuter crossing the Yarra compares the four approaches'
//! alternatives, including how the Google-like provider's reliance on its
//! own traffic data shows up (the Fig. 4 phenomenon).
//!
//! ```sh
//! cargo run --release --example melbourne_commute
//! ```

use alt_route_planner::prelude::*;
use arp_core::quality::{route_set_quality, stretch};
use arp_core::similarity::similarity;
use arp_roadnet::weight::ms_to_display_minutes;

fn main() {
    let city = citygen::generate(City::Melbourne, Scale::Medium, 7);
    let net = &city.network;
    let index = SpatialIndex::build(net);
    let bb = net.bbox();

    // Home in the northern suburbs, office south of the river.
    let home = index
        .nearest_node(
            net,
            Point::new(
                bb.min_lon + bb.width_deg() * 0.35,
                bb.min_lat + bb.height_deg() * 0.85,
            ),
        )
        .unwrap();
    let office = index
        .nearest_node(
            net,
            Point::new(
                bb.min_lon + bb.width_deg() * 0.65,
                bb.min_lat + bb.height_deg() * 0.25,
            ),
        )
        .unwrap();

    let best = shortest_path(net, net.weights(), home, office).expect("commutable");
    println!(
        "Commute: {} -> {}  (fastest {} min, {:.1} km)\n",
        home,
        office,
        ms_to_display_minutes(best.cost_ms),
        best.length_m(net) / 1000.0
    );

    let query = AltQuery::paper();
    for provider in standard_providers(net, 7) {
        let routes = provider
            .alternatives(net, net.weights(), home, office, &query)
            .expect("routable");
        let paths: Vec<_> = routes.iter().map(|r| r.path.clone()).collect();
        let quality = route_set_quality(net, net.weights(), &paths, best.cost_ms);

        println!("== {} ==", provider.kind());
        for (i, r) in routes.iter().enumerate() {
            let overlap_with_best = similarity(&r.path, &best, net.weights());
            println!(
                "  route {}: {:>3} min  stretch {:.2}  overlap-with-fastest {:.0}%",
                i + 1,
                ms_to_display_minutes(r.public_cost_ms),
                stretch(r.public_cost_ms, best.cost_ms),
                overlap_with_best * 100.0
            );
        }
        println!(
            "  set quality: diversity {:.2}, mean stretch {:.2}, wide-road share {:.0}%, locally-optimal {:.0}%\n",
            quality.diversity,
            quality.mean_stretch,
            quality.mean_wide_share * 100.0,
            quality.mean_local_optimality * 100.0
        );
    }

    // The §4.2/Fig. 4 effect: price the Google-like provider's first route
    // under both data sets.
    let google = GoogleLikeProvider::new(net, 7);
    let routes = google
        .alternatives(net, net.weights(), home, office, &query)
        .unwrap();
    let first = &routes[0].path;
    println!("Data-mismatch check on the Google-like recommendation:");
    println!(
        "  under OSM data:    {} min (public optimum {} min)",
        ms_to_display_minutes(first.cost_under(net.weights())),
        ms_to_display_minutes(best.cost_ms)
    );
    println!(
        "  under private data: {} min (its own optimum)",
        ms_to_display_minutes(first.cost_under(google.private_weights()))
    );
}
