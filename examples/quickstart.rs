//! Quickstart: generate a city, ask each technique for alternative routes,
//! print what a navigation UI would show.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alt_route_planner::prelude::*;
use arp_roadnet::weight::ms_to_display_minutes;

fn main() {
    // 1. A deterministic synthetic Melbourne (≈2.5k intersections).
    let city = citygen::generate(City::Melbourne, Scale::Small, 42);
    let net = &city.network;
    println!(
        "{}: {} intersections, {} road segments, {:.0} km of road",
        city.name,
        net.num_nodes(),
        net.num_edges(),
        net.total_length_km()
    );

    // 2. Geo-coordinate matching: click-like lookup of two locations.
    let index = SpatialIndex::build(net);
    let bb = net.bbox();
    let click = |fx: f64, fy: f64| {
        index
            .nearest_node(
                net,
                Point::new(
                    bb.min_lon + bb.width_deg() * fx,
                    bb.min_lat + bb.height_deg() * fy,
                ),
            )
            .expect("non-empty network")
    };
    let source = click(0.2, 0.25);
    let target = click(0.8, 0.8);

    // 3. The paper's parameters: k = 3, ε = 1.4, θ = 0.5, penalty 1.4.
    let query = AltQuery::paper();

    // 4. Ask all four approaches (A: Google-like, B: Plateaus,
    //    C: Dissimilarity, D: Penalty) and print their routes.
    for provider in standard_providers(net, 42) {
        let routes = provider
            .alternatives(net, net.weights(), source, target, &query)
            .expect("routable query");
        println!("\n== {} ==", provider.kind());
        for (i, route) in routes.iter().enumerate() {
            println!(
                "  route {}: {:>3} min, {:.1} km, {} turns",
                i + 1,
                ms_to_display_minutes(route.public_cost_ms),
                route.path.length_m(net) / 1000.0,
                arp_core::quality::turn_count(net, &route.path, 45.0),
            );
        }
    }
}
