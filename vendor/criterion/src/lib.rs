#![warn(missing_docs)]
//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal timing harness with the API its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are honest wall-clock timings (warm-up plus `sample_size`
//! samples, reporting min/mean/max per iteration) but there is no
//! statistical analysis, no HTML report, and no saved baselines.

use std::time::{Duration, Instant};

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark id, optionally parameterized (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs one benchmark closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        match Stats::of(&bencher.samples) {
            Some(stats) => println!(
                "  {full:<44} {:>12} .. {:>12} .. {:>12}",
                format_duration(stats.min),
                format_duration(stats.mean),
                format_duration(stats.max),
            ),
            None => println!("  {full:<44} (no samples)"),
        }
    }
}

struct Stats {
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Stats {
    fn of(samples: &[Duration]) -> Option<Stats> {
        let (&min, &max) = (samples.iter().min()?, samples.iter().max()?);
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        Some(Stats { min, mean, max })
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        // warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn macros_compose() {
        fn bench_a(c: &mut Criterion) {
            c.benchmark_group("a")
                .bench_function("noop", |b| b.iter(|| 1));
        }
        criterion_group!(benches, bench_a);
        benches();
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
