#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] /
//! [`RngExt::random_bool`]. The generator is SplitMix64 — deterministic,
//! seedable, and statistically fine for synthetic-city generation and
//! simulated raters (nothing here is cryptographic).
//!
//! Every repository seed (city layouts, study samples, benchmark query
//! sets) is defined against **this** stream; swapping in the real `rand`
//! would change the generated cities, so this stand-in is authoritative
//! for the reproduction.

pub mod rngs {
    //! Concrete generators.

    /// A deterministic SplitMix64 generator, mirroring the role of
    /// `rand::rngs::StdRng` (seedable, portable stream).
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub(crate) fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed ^ 0xDEAD_BEEF_CAFE_F00D,
        }
    }
}

/// A range that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                let span = (e - s) as u64 + 1;
                s + (rng.next_u64() % span) as $t
            }
        }
    };
}
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}
impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        s + rng.next_f64() * (e - s)
    }
}

/// The sampling methods the workspace calls (a subset of rand's `Rng`).
pub trait RngExt {
    /// Uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
            let u = rng.random_range(5usize..=5);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
