#![warn(missing_docs)]
//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal deterministic property-testing engine with the API
//! surface its tests actually use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`0..n`, `1.0f64..5.0`), tuple strategies up to
//!   arity 8, [`strategy::Just`], [`arbitrary::any`], [`bool::ANY`],
//!   and [`collection::vec`],
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from the real crate: inputs are drawn from a fixed
//! deterministic stream seeded by the test's name (every run explores the
//! same cases — failures are always reproducible), and there is **no
//! shrinking**: a failing case reports its case index and message as-is.

pub mod test_runner {
    //! Configuration, RNG and failure type for property runs.

    /// Run configuration. Only `cases` is configurable, mirroring the
    /// `ProptestConfig::with_cases` usage in this workspace.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream feeding every strategy.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded from the property's name, so each property
        /// explores a stable but distinct sequence of cases.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[lo, hi)`; `hi > lo` required.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(hi > lo, "empty size range {lo}..{hi}");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }

    /// A failed assertion inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for producing values of `Self::Value` from the test RNG.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    let span = (e - s) as u64 + 1;
                    s + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }
    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — the full-domain strategy for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T` (supported primitives only).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    pub struct BoolAny;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive size window for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Glob import bringing the macro-facing API into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs (default 256,
/// override with `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body, failing the case (with an
/// optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -2.5f64..2.5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.5..2.5).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn flat_map_threads_dependencies(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..n, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
            for e in v {
                prop_assert!(e < n);
            }
        }

        #[test]
        fn map_and_any_compose(
            s in any::<u32>().prop_map(|x| x.to_string()),
            b in crate::bool::ANY,
        ) {
            prop_assert!(s.parse::<u32>().is_ok());
            prop_assert!(b == (b as u8 == 1));
        }
    }

    #[test]
    fn failing_property_panics_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                fn always_fails(_x in 0u32..10) {
                    prop_assert!(false, "doomed");
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("doomed"), "{msg}");
        assert!(msg.contains("case 1/5"), "{msg}");
    }
}
