//! Property-based tests for the statistics layer.

use arp_userstudy::anova::one_way_anova;
use arp_userstudy::dist::{betai, chi2_sf, f_sf, gammainc_lower, t_sf};
use arp_userstudy::posthoc::kruskal_wallis;
use arp_userstudy::stats::{Summary, Welford};
use proptest::prelude::*;

fn arb_group() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1.0f64..5.0, 3..60)
}

proptest! {
    #[test]
    fn welford_matches_two_pass(values in arb_group()) {
        let mut w = Welford::new();
        for &x in &values {
            w.push(x);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-10);
        prop_assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_is_order_independent(a in arb_group(), b in arb_group()) {
        let mut wa = Welford::new();
        for &x in &a { wa.push(x); }
        let mut wb = Welford::new();
        for &x in &b { wb.push(x); }
        let mut ab = wa;
        ab.merge(&wb);
        let mut ba = wb;
        ba.merge(&wa);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-10);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-9);
    }

    #[test]
    fn anova_is_invariant_under_group_order(a in arb_group(), b in arb_group(), c in arb_group()) {
        let r1 = one_way_anova(&[&a, &b, &c]).unwrap();
        let r2 = one_way_anova(&[&c, &a, &b]).unwrap();
        prop_assert!((r1.f - r2.f).abs() < 1e-9 || (r1.f.is_infinite() && r2.f.is_infinite()));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }

    #[test]
    fn anova_is_invariant_under_shift(a in arb_group(), b in arb_group(), shift in -3.0f64..3.0) {
        // Adding the same constant to every observation leaves F unchanged.
        let sa: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let sb: Vec<f64> = b.iter().map(|x| x + shift).collect();
        let r1 = one_way_anova(&[&a, &b]).unwrap();
        let r2 = one_way_anova(&[&sa, &sb]).unwrap();
        if r1.f.is_finite() && r2.f.is_finite() {
            prop_assert!((r1.f - r2.f).abs() < 1e-6, "{} vs {}", r1.f, r2.f);
        }
    }

    #[test]
    fn kruskal_wallis_invariant_under_monotone_transform(a in arb_group(), b in arb_group()) {
        // A rank test must not change under strictly increasing transforms.
        let ta: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        let tb: Vec<f64> = b.iter().map(|x| x.exp()).collect();
        let r1 = kruskal_wallis(&[&a, &b]).unwrap();
        let r2 = kruskal_wallis(&[&ta, &tb]).unwrap();
        prop_assert!((r1.h - r2.h).abs() < 1e-9, "{} vs {}", r1.h, r2.h);
    }

    #[test]
    fn p_values_are_probabilities(
        f in 0.0f64..50.0,
        d1 in 1.0f64..20.0,
        d2 in 2.0f64..500.0,
    ) {
        let p = f_sf(f, d1, d2);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn betai_is_monotone_in_x(a in 0.3f64..20.0, b in 0.3f64..20.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(betai(a, b, lo) <= betai(a, b, hi) + 1e-12);
    }

    #[test]
    fn gammainc_is_monotone(a in 0.3f64..20.0, x1 in 0.0f64..40.0, x2 in 0.0f64..40.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(gammainc_lower(a, lo) <= gammainc_lower(a, hi) + 1e-12);
    }

    #[test]
    fn chi2_and_t_tails_are_valid(x in 0.0f64..100.0, k in 1.0f64..30.0) {
        let c = chi2_sf(x, k);
        prop_assert!((0.0..=1.0).contains(&c));
        let t = t_sf(x, k);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&t));
    }

    #[test]
    fn summary_paper_format_is_parseable(values in arb_group()) {
        let s = Summary::of(&values);
        let txt = s.paper_format();
        // "m.mm (s.ss)" shape.
        prop_assert!(txt.contains('(') && txt.ends_with(')'));
        let mean_part: f64 = txt.split(' ').next().unwrap().parse().unwrap();
        prop_assert!((mean_part - s.mean).abs() < 0.005 + 1e-12);
    }
}
