//! The user-study simulator.
//!
//! Mirrors the paper's protocol (§4): queries are sampled per length bin
//! for a resident and a non-resident population, each response shows the
//! routes of all four approaches for one query, and the participant rates
//! each approach 1–5. Group means are anchored to the published tables via
//! a [`crate::calibrate::Calibration`]; variances, bin structure and the
//! ANOVA outcome emerge from the perception model.

use arp_core::provider::AlternativesProvider;
use arp_core::quality::route_set_quality;
use arp_core::query::AltQuery;
use arp_core::search::SearchSpace;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::weight::{minutes_to_ms, Cost};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::calibrate::Calibration;
use crate::participant::{
    perceived_utility, sample_normal, to_rating, Participant, RouteSetFeatures,
};
use crate::sampler::{sample_queries, StudyQuery};

/// Route-length bin (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LengthBin {
    /// Fastest time in (0, 10] minutes.
    Small,
    /// Fastest time in (10, 25] minutes.
    Medium,
    /// Fastest time in (25, 80] minutes.
    Long,
}

impl LengthBin {
    /// All bins in table order.
    pub const ALL: [LengthBin; 3] = [LengthBin::Small, LengthBin::Medium, LengthBin::Long];

    /// Dense index (small = 0, medium = 1, long = 2).
    pub fn index(self) -> usize {
        match self {
            LengthBin::Small => 0,
            LengthBin::Medium => 1,
            LengthBin::Long => 2,
        }
    }

    /// Classifies a fastest travel time; `None` above 80 minutes (the
    /// paper's study area never produced such routes).
    pub fn from_ms(ms: Cost) -> Option<LengthBin> {
        if ms == 0 {
            None
        } else if ms <= minutes_to_ms(10.0) {
            Some(LengthBin::Small)
        } else if ms <= minutes_to_ms(25.0) {
            Some(LengthBin::Medium)
        } else if ms <= minutes_to_ms(80.0) {
            Some(LengthBin::Long)
        } else {
            None
        }
    }

    /// Row label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            LengthBin::Small => "Small Routes (0, 10] (mins)",
            LengthBin::Medium => "Medium Routes (10, 25] (mins)",
            LengthBin::Long => "Long Routes (25, 80] (mins)",
        }
    }
}

/// Configuration of a study run.
#[derive(Clone, Copy, Debug)]
pub struct StudyConfig {
    /// Master seed (queries, participants and noise all derive from it).
    pub seed: u64,
    /// Query parameters handed to every provider.
    pub query: AltQuery,
    /// Resident responses per bin (small, medium, long).
    pub resident_bins: [usize; 3],
    /// Non-resident responses per bin.
    pub nonresident_bins: [usize; 3],
}

impl StudyConfig {
    /// The paper's group sizes: residents 38/83/35, non-residents 28/26/27
    /// (total 237).
    pub fn paper(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            query: AltQuery::paper(),
            resident_bins: [38, 83, 35],
            nonresident_bins: [28, 26, 27],
        }
    }

    /// A reduced configuration for tests (quick, small/medium bins only).
    pub fn smoke(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            query: AltQuery::paper(),
            resident_bins: [6, 6, 0],
            nonresident_bins: [4, 4, 0],
        }
    }

    /// Total number of responses requested.
    pub fn total_responses(&self) -> usize {
        self.resident_bins.iter().sum::<usize>() + self.nonresident_bins.iter().sum::<usize>()
    }
}

/// One response: a participant rated all four approaches for one query.
#[derive(Clone, Debug)]
pub struct ResponseRecord {
    /// Whether the participant is a resident.
    pub resident: bool,
    /// Length bin of the query.
    pub bin: LengthBin,
    /// The query itself.
    pub query: StudyQuery,
    /// Ratings in approach order (Google-like, Plateaus, Dissimilarity,
    /// Penalty).
    pub ratings: [u8; 4],
    /// The features each rating was based on (same order).
    pub features: [RouteSetFeatures; 4],
}

/// The outcome of a study run.
#[derive(Clone, Debug, Default)]
pub struct StudyOutcome {
    /// All responses.
    pub responses: Vec<ResponseRecord>,
}

impl StudyOutcome {
    /// Ratings of one approach over an optionally filtered subset.
    pub fn ratings_of(
        &self,
        approach: usize,
        resident: Option<bool>,
        bin: Option<LengthBin>,
    ) -> Vec<f64> {
        self.responses
            .iter()
            .filter(|r| resident.is_none_or(|want| r.resident == want))
            .filter(|r| bin.is_none_or(|want| r.bin == want))
            .map(|r| r.ratings[approach] as f64)
            .collect()
    }

    /// Number of responses matching a filter.
    pub fn count(&self, resident: Option<bool>, bin: Option<LengthBin>) -> usize {
        self.responses
            .iter()
            .filter(|r| resident.is_none_or(|want| r.resident == want))
            .filter(|r| bin.is_none_or(|want| r.bin == want))
            .count()
    }
}

/// Computes the perception features of one approach's answer to a query.
pub fn features_of_routes(
    net: &RoadNetwork,
    query: &AltQuery,
    fastest_ms: Cost,
    routes: &[arp_core::query::Route],
) -> RouteSetFeatures {
    if routes.is_empty() {
        return RouteSetFeatures {
            count: 0,
            requested: query.k,
            mean_stretch: 2.0,
            diversity: 0.0,
            max_wiggliness: 2.0,
            turns_per_km: 4.0,
            wide_share: 0.0,
            first_stretch: 2.0,
        };
    }
    let paths: Vec<arp_core::Path> = routes.iter().map(|r| r.path.clone()).collect();
    let q = route_set_quality(net, net.weights(), &paths, fastest_ms);
    RouteSetFeatures {
        count: routes.len(),
        requested: query.k,
        mean_stretch: q.mean_stretch,
        diversity: q.diversity,
        max_wiggliness: q.max_wiggliness,
        turns_per_km: q.mean_turns_per_km,
        wide_share: q.mean_wide_share,
        first_stretch: routes[0].public_cost_ms as f64 / fastest_ms.max(1) as f64,
    }
}

/// Runs the full study.
///
/// `providers` must be the four approaches in paper order (see
/// [`arp_core::provider::standard_providers`]). Under-fillable bins are
/// skipped silently; check `outcome.count(..)` against the config if exact
/// totals matter.
pub fn run_study(
    net: &RoadNetwork,
    providers: &[Box<dyn AlternativesProvider>],
    config: &StudyConfig,
    calibration: &Calibration,
) -> StudyOutcome {
    assert_eq!(
        providers.len(),
        4,
        "the study compares exactly 4 approaches"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ws = SearchSpace::new(net);
    let _ = &mut ws; // reserved for future shared-workspace optimization

    let mut outcome = StudyOutcome::default();
    for (resident, quotas, qseed) in [
        (true, config.resident_bins, config.seed.wrapping_add(1)),
        (false, config.nonresident_bins, config.seed.wrapping_add(2)),
    ] {
        let queries = sample_queries(net, quotas, qseed);
        for sq in queries {
            let participant = Participant::draw(resident, &mut rng);
            let mut ratings = [0u8; 4];
            let mut features = [RouteSetFeatures::default(); 4];
            for (a, provider) in providers.iter().enumerate() {
                let routes = provider
                    .alternatives(net, net.weights(), sq.source, sq.target, &config.query)
                    .unwrap_or_default();
                let f = features_of_routes(net, &config.query, sq.fastest_ms, &routes);
                let intercept = calibration.intercept(a, resident, sq.bin);
                let noise = sample_normal(&mut rng) * participant.noise_sd;
                let utility = intercept
                    + perceived_utility(&participant, &f)
                    + participant.response_effect
                    + noise;
                ratings[a] = to_rating(utility);
                features[a] = f;
            }
            outcome.responses.push(ResponseRecord {
                resident,
                bin: sq.bin,
                query: sq,
                ratings,
                features,
            });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};
    use arp_core::provider::standard_providers;

    #[test]
    fn bins_classify_correctly() {
        assert_eq!(LengthBin::from_ms(0), None);
        assert_eq!(
            LengthBin::from_ms(minutes_to_ms(5.0)),
            Some(LengthBin::Small)
        );
        assert_eq!(
            LengthBin::from_ms(minutes_to_ms(10.0)),
            Some(LengthBin::Small)
        );
        assert_eq!(
            LengthBin::from_ms(minutes_to_ms(10.1)),
            Some(LengthBin::Medium)
        );
        assert_eq!(
            LengthBin::from_ms(minutes_to_ms(25.0)),
            Some(LengthBin::Medium)
        );
        assert_eq!(
            LengthBin::from_ms(minutes_to_ms(26.0)),
            Some(LengthBin::Long)
        );
        assert_eq!(
            LengthBin::from_ms(minutes_to_ms(80.0)),
            Some(LengthBin::Long)
        );
        assert_eq!(LengthBin::from_ms(minutes_to_ms(81.0)), None);
    }

    #[test]
    fn paper_config_totals() {
        let c = StudyConfig::paper(1);
        assert_eq!(c.total_responses(), 237);
        assert_eq!(c.resident_bins.iter().sum::<usize>(), 156);
        assert_eq!(c.nonresident_bins.iter().sum::<usize>(), 81);
    }

    #[test]
    fn smoke_study_runs_end_to_end() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 8);
        let providers = standard_providers(&g.network, 8);
        let config = StudyConfig::smoke(21);
        let cal = Calibration::from_paper_targets();
        let outcome = run_study(&g.network, &providers, &config, &cal);
        assert!(
            outcome.responses.len() >= 16,
            "got {}",
            outcome.responses.len()
        );
        for r in &outcome.responses {
            for &rating in &r.ratings {
                assert!((1..=5).contains(&rating));
            }
            for f in &r.features {
                assert!(f.count <= 3);
            }
        }
        // Both populations present.
        assert!(outcome.count(Some(true), None) >= 10);
        assert!(outcome.count(Some(false), None) >= 6);
    }

    #[test]
    fn study_is_deterministic() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Tiny, 8);
        let providers = standard_providers(&g.network, 8);
        let config = StudyConfig {
            seed: 5,
            query: AltQuery::paper(),
            resident_bins: [4, 0, 0],
            nonresident_bins: [3, 0, 0],
        };
        let cal = Calibration::from_paper_targets();
        let a = run_study(&g.network, &providers, &config, &cal);
        let b = run_study(&g.network, &providers, &config, &cal);
        assert_eq!(a.responses.len(), b.responses.len());
        for (x, y) in a.responses.iter().zip(&b.responses) {
            assert_eq!(x.ratings, y.ratings);
        }
    }

    #[test]
    fn ratings_of_filters_work() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Tiny, 8);
        let providers = standard_providers(&g.network, 8);
        let config = StudyConfig {
            seed: 5,
            query: AltQuery::paper(),
            resident_bins: [5, 0, 0],
            nonresident_bins: [5, 0, 0],
        };
        let cal = Calibration::from_paper_targets();
        let outcome = run_study(&g.network, &providers, &config, &cal);
        let all = outcome.ratings_of(0, None, None);
        let res = outcome.ratings_of(0, Some(true), None);
        let non = outcome.ratings_of(0, Some(false), None);
        assert_eq!(all.len(), res.len() + non.len());
        let small = outcome.ratings_of(1, None, Some(LengthBin::Small));
        assert_eq!(small.len(), all.len());
        assert!(outcome
            .ratings_of(1, None, Some(LengthBin::Long))
            .is_empty());
    }
}
