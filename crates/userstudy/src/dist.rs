//! Special functions for statistical distributions.
//!
//! A self-contained implementation of the log-gamma function (Lanczos),
//! the regularized incomplete beta function (Lentz continued fraction) and
//! the F-distribution CDF — exactly the machinery needed to convert the
//! one-way ANOVA F statistic into the p-values the paper reports (§4.1).

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Uses the standard continued-fraction expansion with the symmetry
/// transform for numerical stability.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the F distribution with `d1`, `d2` degrees of freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 0.0;
    }
    let x = d1 * f / (d1 * f + d2);
    betai(d1 / 2.0, d2 / 2.0, x)
}

/// Survival function (p-value): `P(F > f)`.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    (1.0 - f_cdf(f, d1, d2)).clamp(0.0, 1.0)
}

/// Standard normal CDF via `erf`-free Hart-style rational approximation
/// (|error| < 7.5e-8) — used for sanity checks on rating distributions.
pub fn normal_cdf(z: f64) -> f64 {
    // Abramowitz & Stegun 26.2.17.
    let t = 1.0 / (1.0 + 0.231_641_9 * z.abs());
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let pdf = (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if z >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[
            (2.0, 5.0, 0.3),
            (0.5, 0.5, 0.7),
            (4.0, 4.0, 0.5),
            (10.0, 2.0, 0.9),
        ] {
            let lhs = betai(a, b, x);
            let rhs = 1.0 - betai(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn f_cdf_known_quantiles() {
        // Median of F(1,1) is 1.0 (CDF(1) = 0.5).
        assert!((f_cdf(1.0, 1.0, 1.0) - 0.5).abs() < 1e-9);
        // F(2, 10): CDF at the 95th percentile 4.1028 ≈ 0.95.
        assert!((f_cdf(4.1028, 2.0, 10.0) - 0.95).abs() < 1e-4);
        // F(3, 944): 95th percentile ≈ 2.614 (large-sample ANOVA shape).
        let p = f_cdf(2.614, 3.0, 944.0);
        assert!((p - 0.95).abs() < 2e-3, "got {p}");
    }

    #[test]
    fn f_sf_complements_cdf() {
        let (f, d1, d2) = (1.7, 3.0, 940.0);
        assert!((f_sf(f, d1, d2) + f_cdf(f, d1, d2) - 1.0).abs() < 1e-12);
        assert_eq!(f_sf(0.0, 3.0, 10.0), 1.0);
        assert_eq!(f_sf(-1.0, 3.0, 10.0), 1.0);
    }

    #[test]
    fn f_sf_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..40 {
            let f = i as f64 * 0.25;
            let p = f_sf(f, 3.0, 500.0);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(6.0) > 0.999_999);
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes style). Needed for the chi-square CDF behind the
/// Kruskal–Wallis test.
pub fn gammainc_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x) = 1 - P(a, x).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Chi-square survival function `P(X > x)` with `k` degrees of freedom.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gammainc_lower(k / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Student's t survival function `P(T > t)` with `df` degrees of freedom
/// (one-sided), via the incomplete beta function.
pub fn t_sf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    let p = 0.5 * betai(df / 2.0, 0.5, x);
    if t >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn gammainc_known_values() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let expect = 1.0 - f64::exp(-x);
            assert!((gammainc_lower(1.0, x) - expect).abs() < 1e-10, "x={x}");
        }
        // P(a, 0) = 0 and P(a, inf) -> 1.
        assert_eq!(gammainc_lower(2.5, 0.0), 0.0);
        assert!(gammainc_lower(2.5, 100.0) > 0.999_999);
    }

    #[test]
    fn chi2_known_quantiles() {
        // chi2(3): 95th percentile = 7.815.
        assert!((chi2_sf(7.815, 3.0) - 0.05).abs() < 1e-3);
        // chi2(1): P(X > 3.841) = 0.05.
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert_eq!(chi2_sf(0.0, 4.0), 1.0);
    }

    #[test]
    fn t_sf_known_quantiles() {
        // t(10): P(T > 1.812) = 0.05.
        assert!((t_sf(1.812, 10.0) - 0.05).abs() < 1e-3);
        // Symmetry.
        assert!((t_sf(-1.812, 10.0) - 0.95).abs() < 1e-3);
        // Large df approaches the normal tail.
        assert!((t_sf(1.96, 10_000.0) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn chi2_monotone() {
        let mut prev = 1.0;
        for i in 1..30 {
            let p = chi2_sf(i as f64 * 0.5, 3.0);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }
}
