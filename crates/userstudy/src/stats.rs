//! Basic descriptive statistics: running mean/variance (Welford) and the
//! `m(sd)` formatting the paper's tables use.

/// Running mean and variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sum of squared deviations from the mean (for ANOVA).
    pub fn sum_sq(&self) -> f64 {
        self.m2
    }

    /// Merges another accumulator (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// A computed summary: count, mean, standard deviation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(values: &[f64]) -> Summary {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        Summary {
            n: w.count(),
            mean: w.mean(),
            sd: w.sd(),
        }
    }

    /// The paper's `m(sd)` cell format, e.g. `3.63 (1.25)`.
    pub fn paper_format(&self) -> String {
        format!("{:.2} ({:.2})", self.mean, self.sd)
    }
}

impl From<&Welford> for Summary {
    fn from(w: &Welford) -> Summary {
        Summary {
            n: w.count(),
            mean: w.mean(),
            sd: w.sd(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(3.5);
        assert_eq!(w1.mean(), 3.5);
        assert_eq!(w1.sd(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 2.0)
            .collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn summary_paper_format() {
        let s = Summary::of(&[3.0, 4.0, 5.0, 2.0, 4.0]);
        assert_eq!(s.n, 5);
        let txt = s.paper_format();
        assert!(txt.starts_with("3.60 ("), "{txt}");
    }
}
