#![warn(missing_docs)]
//! # arp-userstudy
//!
//! The user-study apparatus of the reproduction: simulated participants
//! rate the four approaches' alternative routes, and the statistics layer
//! regenerates the paper's Tables 1–3 and one-way ANOVA (§4).
//!
//! Real participants cannot be reproduced offline; what this crate makes
//! reproducible is the full *pipeline*: stratified query sampling by
//! fastest-travel-time bin, blind rating collection, group summaries
//! `m(sd)`, and the significance test. The perception model encodes every
//! mechanism the paper's §4.2 documents (apparent detours, resident
//! familiarity, favorite-route bias, comfort preferences, data mismatch),
//! and a [`calibrate::Calibration`] layer anchors cell means to the
//! published tables so the mixture rows and ANOVA outcome can be compared
//! against the paper (see DESIGN.md for the substitution rationale).
//!
//! ```no_run
//! use arp_citygen::{City, Scale};
//! use arp_core::provider::standard_providers;
//! use arp_userstudy::prelude::*;
//!
//! let city = arp_citygen::generate(City::Melbourne, Scale::Medium, 42);
//! let providers = standard_providers(&city.network, 42);
//! let config = StudyConfig::paper(42);
//! let cal = Calibration::from_paper_targets();
//! let outcome = run_study(&city.network, &providers, &config, &cal);
//! println!("{}", render(&table1(&outcome)));
//! println!("{}", render_anova(&anova_report(&outcome)));
//! ```

pub mod anova;
pub mod calibrate;
pub mod dist;
pub mod export;
pub mod paper;
pub mod participant;
pub mod posthoc;
pub mod power;
pub mod sampler;
pub mod stats;
pub mod study;
pub mod tables;

pub use anova::{one_way_anova, AnovaResult};
pub use calibrate::Calibration;
pub use posthoc::{kruskal_wallis, pairwise_welch, KruskalWallisResult, PairwiseComparison};
pub use power::{required_n, simulate_power, PowerDesign};
pub use sampler::{sample_queries, StudyQuery};
pub use stats::{Summary, Welford};
pub use study::{run_study, LengthBin, ResponseRecord, StudyConfig, StudyOutcome};
pub use tables::{anova_report, render, render_anova, render_vs_paper, table1, table2, table3};

/// Convenient glob import.
pub mod prelude {
    pub use crate::anova::{one_way_anova, AnovaResult};
    pub use crate::calibrate::Calibration;
    pub use crate::sampler::{sample_queries, StudyQuery};
    pub use crate::stats::{Summary, Welford};
    pub use crate::study::{run_study, LengthBin, StudyConfig, StudyOutcome};
    pub use crate::tables::{
        anova_report, render, render_anova, render_vs_paper, table1, table2, table3,
    };
}
