//! Table generation: turns a [`StudyOutcome`] into the paper's Tables 1–3
//! and the §4.1 ANOVA report, with side-by-side paper-vs-measured
//! rendering for EXPERIMENTS.md.

use crate::anova::{one_way_anova, AnovaResult};
use crate::paper::{self, PaperRow};
use crate::stats::Summary;
use crate::study::{LengthBin, StudyOutcome};

/// One computed table row: `m(sd)` per approach plus the group size.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Row label (paper wording).
    pub label: String,
    /// Summary per approach in paper column order.
    pub cells: [Summary; 4],
    /// Number of responses in the group.
    pub responses: usize,
}

impl TableRow {
    /// Index of the approach with the highest mean (bold in the paper).
    pub fn best_approach(&self) -> usize {
        let mut best = 0;
        for i in 1..4 {
            if self.cells[i].mean > self.cells[best].mean {
                best = i;
            }
        }
        best
    }
}

/// A computed table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Rows in paper order.
    pub rows: Vec<TableRow>,
}

fn row(
    outcome: &StudyOutcome,
    label: &str,
    resident: Option<bool>,
    bin: Option<LengthBin>,
) -> TableRow {
    let mut cells = [Summary {
        n: 0,
        mean: 0.0,
        sd: 0.0,
    }; 4];
    for (a, cell) in cells.iter_mut().enumerate() {
        *cell = Summary::of(&outcome.ratings_of(a, resident, bin));
    }
    TableRow {
        label: label.to_string(),
        cells,
        responses: outcome.count(resident, bin),
    }
}

/// Table 1: all responses — overall + per length bin.
pub fn table1(outcome: &StudyOutcome) -> Table {
    let mut rows = vec![
        row(outcome, "Overall", None, None),
        row(outcome, "Melbourne residents", Some(true), None),
        row(outcome, "Non-residents", Some(false), None),
    ];
    for bin in LengthBin::ALL {
        rows.push(row(outcome, bin.label(), None, Some(bin)));
    }
    Table {
        title: "Table 1: All responses".to_string(),
        rows,
    }
}

/// Table 2: Melbourne residents only.
pub fn table2(outcome: &StudyOutcome) -> Table {
    let mut rows = vec![row(outcome, "Melbourne residents", Some(true), None)];
    for bin in LengthBin::ALL {
        rows.push(row(outcome, bin.label(), Some(true), Some(bin)));
    }
    Table {
        title: "Table 2: Only Melbourne residents".to_string(),
        rows,
    }
}

/// Table 3: non-residents only.
pub fn table3(outcome: &StudyOutcome) -> Table {
    let mut rows = vec![row(outcome, "Non-residents", Some(false), None)];
    for bin in LengthBin::ALL {
        rows.push(row(outcome, bin.label(), Some(false), Some(bin)));
    }
    Table {
        title: "Table 3: Only non-residents".to_string(),
        rows,
    }
}

/// Renders a table as aligned plain text, bolding (with `*`) the best
/// approach per row like the paper does.
pub fn render(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(&table.title);
    out.push('\n');
    out.push_str(&format!(
        "{:<32} {:>14} {:>14} {:>14} {:>14} {:>10}\n",
        "", "Google Maps", "Plateaus", "Dissimilarity", "Penalty", "#Responses"
    ));
    for row in &table.rows {
        let best = row.best_approach();
        out.push_str(&format!("{:<32}", row.label));
        for (i, c) in row.cells.iter().enumerate() {
            let cell = if i == best {
                format!("*{}", c.paper_format())
            } else {
                c.paper_format()
            };
            out.push_str(&format!(" {cell:>14}"));
        }
        out.push_str(&format!(" {:>10}\n", row.responses));
    }
    out
}

/// Renders measured vs published cells side by side:
/// `measured | paper` per approach.
pub fn render_vs_paper(table: &Table, paper_rows: &[PaperRow]) -> String {
    let mut out = String::new();
    out.push_str(&table.title);
    out.push_str(" — measured vs paper\n");
    out.push_str(&format!(
        "{:<32} {:>22} {:>22} {:>22} {:>22}\n",
        "", "Google Maps", "Plateaus", "Dissimilarity", "Penalty"
    ));
    for row in &table.rows {
        let Some(paper_row) = paper_rows.iter().find(|p| p.label == row.label) else {
            continue;
        };
        out.push_str(&format!("{:<32}", row.label));
        for i in 0..4 {
            let cell = format!("{:.2} | {:.2}", row.cells[i].mean, paper_row.means[i]);
            out.push_str(&format!(" {cell:>22}"));
        }
        out.push('\n');
    }
    out
}

/// Maximum |measured − paper| mean over the rows that exist in both.
pub fn max_mean_deviation(table: &Table, paper_rows: &[PaperRow]) -> f64 {
    let mut worst = 0.0f64;
    for row in &table.rows {
        if let Some(paper_row) = paper_rows.iter().find(|p| p.label == row.label) {
            for i in 0..4 {
                if row.cells[i].n == 0 {
                    continue;
                }
                worst = worst.max((row.cells[i].mean - paper_row.means[i]).abs());
            }
        }
    }
    worst
}

/// The three ANOVA tests the paper reports (§4.1): all respondents,
/// residents only, non-residents only.
#[derive(Clone, Copy, Debug)]
pub struct AnovaReport {
    /// ANOVA over all responses.
    pub all: Option<AnovaResult>,
    /// Residents only.
    pub residents: Option<AnovaResult>,
    /// Non-residents only.
    pub non_residents: Option<AnovaResult>,
}

/// Runs the paper's three ANOVA tests on a study outcome.
pub fn anova_report(outcome: &StudyOutcome) -> AnovaReport {
    let run = |resident: Option<bool>| -> Option<AnovaResult> {
        let groups: Vec<Vec<f64>> = (0..4)
            .map(|a| outcome.ratings_of(a, resident, None))
            .collect();
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        one_way_anova(&refs)
    };
    AnovaReport {
        all: run(None),
        residents: run(Some(true)),
        non_residents: run(Some(false)),
    }
}

/// Renders the ANOVA report with the paper's published p-values alongside.
pub fn render_anova(report: &AnovaReport) -> String {
    let line = |label: &str, r: &Option<AnovaResult>, paper_p: f64| -> String {
        match r {
            Some(r) => format!(
                "{label:<18} F({:.0},{:.0}) = {:.3}   p = {:.3} (paper: {:.2})   significant at 0.05: {}\n",
                r.df_between,
                r.df_within,
                r.f,
                r.p_value,
                paper_p,
                if r.significant(0.05) { "yes" } else { "no" }
            ),
            None => format!("{label:<18} (not enough data)\n"),
        }
    };
    let mut out = String::from("One-way ANOVA (null: equal mean ratings for the 4 approaches)\n");
    out.push_str(&line("All respondents", &report.all, paper::ANOVA_P_ALL));
    out.push_str(&line(
        "Residents",
        &report.residents,
        paper::ANOVA_P_RESIDENTS,
    ));
    out.push_str(&line(
        "Non-residents",
        &report.non_residents,
        paper::ANOVA_P_NON_RESIDENTS,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Calibration;
    use crate::study::{run_study, StudyConfig};
    use arp_citygen::{City, Scale};
    use arp_core::provider::standard_providers;

    fn smoke_outcome() -> StudyOutcome {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 14);
        let providers = standard_providers(&g.network, 14);
        let config = StudyConfig {
            seed: 33,
            query: arp_core::AltQuery::paper(),
            resident_bins: [10, 10, 0],
            nonresident_bins: [8, 8, 0],
        };
        run_study(
            &g.network,
            &providers,
            &config,
            &Calibration::from_paper_targets(),
        )
    }

    #[test]
    fn tables_have_expected_shape() {
        let outcome = smoke_outcome();
        let t1 = table1(&outcome);
        assert_eq!(t1.rows.len(), 6);
        assert_eq!(t1.rows[0].label, "Overall");
        assert_eq!(t1.rows[0].responses, outcome.responses.len());

        let t2 = table2(&outcome);
        assert_eq!(t2.rows.len(), 4);
        assert_eq!(t2.rows[0].responses, outcome.count(Some(true), None));

        let t3 = table3(&outcome);
        assert_eq!(t3.rows[0].responses, outcome.count(Some(false), None));
        // Residents + non-residents = all.
        assert_eq!(
            t2.rows[0].responses + t3.rows[0].responses,
            t1.rows[0].responses
        );
    }

    #[test]
    fn render_contains_all_columns() {
        let outcome = smoke_outcome();
        let txt = render(&table1(&outcome));
        for col in [
            "Google Maps",
            "Plateaus",
            "Dissimilarity",
            "Penalty",
            "#Responses",
        ] {
            assert!(txt.contains(col), "missing column {col}\n{txt}");
        }
        assert!(txt.contains('*'), "best cell should be starred\n{txt}");
    }

    #[test]
    fn render_vs_paper_matches_labels() {
        let outcome = smoke_outcome();
        let txt = render_vs_paper(&table2(&outcome), &paper::TABLE2);
        assert!(txt.contains("Melbourne residents"));
        assert!(txt.contains('|'));
    }

    #[test]
    fn anova_report_runs() {
        let outcome = smoke_outcome();
        let report = anova_report(&outcome);
        let all = report.all.expect("enough data for anova");
        assert_eq!(all.df_between, 3.0);
        assert!(all.p_value > 0.0 && all.p_value <= 1.0);
        let txt = render_anova(&report);
        assert!(txt.contains("All respondents"));
        assert!(txt.contains("paper: 0.16"));
    }

    #[test]
    fn max_mean_deviation_reasonable_even_unfitted() {
        // With intercepts = paper targets (no fitting) the deviation is
        // bounded; fitting in the repro binaries tightens it further.
        let outcome = smoke_outcome();
        let t2 = table2(&outcome);
        let dev = max_mean_deviation(&t2, &paper::TABLE2);
        assert!(dev < 1.0, "deviation {dev}");
    }

    #[test]
    fn best_approach_detection() {
        let outcome = smoke_outcome();
        for row in &table1(&outcome).rows {
            let best = row.best_approach();
            for i in 0..4 {
                assert!(row.cells[best].mean >= row.cells[i].mean);
            }
        }
    }
}
