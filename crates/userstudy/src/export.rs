//! Export of study outcomes for external analysis.
//!
//! The paper's raw data would be a response table; this module produces
//! the equivalent CSV (one row per response, ratings in approach order,
//! residency, bin, fastest time and the perception features each rating
//! was based on) plus a loader so downstream analyses can round-trip.

use crate::participant::RouteSetFeatures;
use crate::sampler::StudyQuery;
use crate::study::{LengthBin, ResponseRecord, StudyOutcome};
use arp_roadnet::ids::NodeId;

/// CSV header of the response table.
pub const CSV_HEADER: &str = "resident,bin,source,target,fastest_ms,\
rating_google,rating_plateaus,rating_dissimilarity,rating_penalty,\
g_count,g_stretch,g_diversity,p_count,p_stretch,p_diversity,\
d_count,d_stretch,d_diversity,n_count,n_stretch,n_diversity";

fn bin_code(bin: LengthBin) -> &'static str {
    match bin {
        LengthBin::Small => "small",
        LengthBin::Medium => "medium",
        LengthBin::Long => "long",
    }
}

fn bin_from_code(code: &str) -> Option<LengthBin> {
    match code {
        "small" => Some(LengthBin::Small),
        "medium" => Some(LengthBin::Medium),
        "long" => Some(LengthBin::Long),
        _ => None,
    }
}

/// Serializes an outcome to CSV.
pub fn to_csv(outcome: &StudyOutcome) -> String {
    let mut out = String::with_capacity(outcome.responses.len() * 128 + CSV_HEADER.len());
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in &outcome.responses {
        out.push_str(&format!(
            "{},{},{},{},{}",
            r.resident,
            bin_code(r.bin),
            r.query.source.0,
            r.query.target.0,
            r.query.fastest_ms
        ));
        for rating in r.ratings {
            out.push_str(&format!(",{rating}"));
        }
        for f in &r.features {
            out.push_str(&format!(
                ",{},{:.4},{:.4}",
                f.count, f.mean_stretch, f.diversity
            ));
        }
        out.push('\n');
    }
    out
}

/// Parses a CSV produced by [`to_csv`]. Feature columns beyond count /
/// stretch / diversity are not stored in the file, so the re-imported
/// features carry zeros there.
pub fn from_csv(text: &str) -> Result<StudyOutcome, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty csv")?;
    if header != CSV_HEADER {
        return Err(format!("unexpected header: {header}"));
    }
    let mut outcome = StudyOutcome::default();
    for (no, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 21 {
            return Err(format!(
                "line {}: {} fields, expected 21",
                no + 2,
                fields.len()
            ));
        }
        let parse_f64 = |s: &str| {
            s.parse::<f64>()
                .map_err(|e| format!("line {}: {e}", no + 2))
        };
        let parse_u8 = |s: &str| s.parse::<u8>().map_err(|e| format!("line {}: {e}", no + 2));
        let resident = fields[0] == "true";
        let bin = bin_from_code(fields[1]).ok_or_else(|| format!("line {}: bad bin", no + 2))?;
        let query = StudyQuery {
            source: NodeId(fields[2].parse().map_err(|_| "bad source")?),
            target: NodeId(fields[3].parse().map_err(|_| "bad target")?),
            fastest_ms: fields[4].parse().map_err(|_| "bad fastest_ms")?,
            bin,
        };
        let ratings = [
            parse_u8(fields[5])?,
            parse_u8(fields[6])?,
            parse_u8(fields[7])?,
            parse_u8(fields[8])?,
        ];
        let mut features = [RouteSetFeatures::default(); 4];
        for (a, f) in features.iter_mut().enumerate() {
            let base = 9 + a * 3;
            f.count = fields[base].parse().map_err(|_| "bad count")?;
            f.mean_stretch = parse_f64(fields[base + 1])?;
            f.diversity = parse_f64(fields[base + 2])?;
        }
        outcome.responses.push(ResponseRecord {
            resident,
            bin,
            query,
            ratings,
            features,
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Calibration;
    use crate::study::{run_study, StudyConfig};
    use arp_citygen::{City, Scale};
    use arp_core::provider::standard_providers;

    fn outcome() -> StudyOutcome {
        let g = arp_citygen::generate(City::Melbourne, Scale::Tiny, 6);
        let providers = standard_providers(&g.network, 6);
        let config = StudyConfig {
            seed: 6,
            query: arp_core::AltQuery::paper(),
            resident_bins: [5, 0, 0],
            nonresident_bins: [4, 0, 0],
        };
        run_study(
            &g.network,
            &providers,
            &config,
            &Calibration::from_paper_targets(),
        )
    }

    #[test]
    fn csv_roundtrip_preserves_ratings_and_queries() {
        let o = outcome();
        let csv = to_csv(&o);
        assert!(csv.starts_with(CSV_HEADER));
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.responses.len(), o.responses.len());
        for (a, b) in o.responses.iter().zip(&back.responses) {
            assert_eq!(a.ratings, b.ratings);
            assert_eq!(a.resident, b.resident);
            assert_eq!(a.bin, b.bin);
            assert_eq!(a.query, b.query);
            for (fa, fb) in a.features.iter().zip(&b.features) {
                assert_eq!(fa.count, fb.count);
                assert!((fa.mean_stretch - fb.mean_stretch).abs() < 1e-3);
                assert!((fa.diversity - fb.diversity).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn tables_from_reimported_outcome_match() {
        let o = outcome();
        let back = from_csv(&to_csv(&o)).unwrap();
        let t1a = crate::tables::table1(&o);
        let t1b = crate::tables::table1(&back);
        for (ra, rb) in t1a.rows.iter().zip(&t1b.rows) {
            for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
                assert_eq!(ca.n, cb.n);
                assert!((ca.mean - cb.mean).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(from_csv("").is_err());
        assert!(from_csv("wrong header\n").is_err());
        let bad_fields = format!("{CSV_HEADER}\ntrue,small,1,2\n");
        assert!(from_csv(&bad_fields).is_err());
        let bad_bin =
            format!("{CSV_HEADER}\ntrue,gigantic,1,2,60000,3,3,3,3,3,1,1,3,1,1,3,1,1,3,1,1\n");
        assert!(from_csv(&bad_bin).is_err());
    }
}
