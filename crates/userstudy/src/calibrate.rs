//! Calibration of the rating model to the published group means.
//!
//! Human rating levels are not derivable from first principles — they are
//! the irreproducible ingredient of a user study. The calibration layer
//! pins one intercept per `(approach, residency, length-bin)` cell so the
//! simulated group means land near the published Tables 2–3; everything
//! else (variances, the Table 1 mixture, the ANOVA outcome) emerges from
//! the perception model.
//!
//! Fitting is empirical: run the study, compare cell means to targets,
//! move each intercept by the damped residual, repeat. Because
//! [`crate::participant::to_rating`] clamps to 1–5, the mapping from
//! intercept to mean is nonlinear; a few damped iterations converge well.

use arp_core::provider::AlternativesProvider;
use arp_roadnet::csr::RoadNetwork;

use crate::paper;
use crate::stats::Welford;
use crate::study::{run_study, LengthBin, StudyConfig, StudyOutcome};

/// Per-cell intercepts of the rating model, indexed
/// `[approach][resident as usize][bin]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    intercepts: [[[f64; 3]; 2]; 4],
}

impl Calibration {
    /// Starts every intercept at the corresponding published mean — a good
    /// initial guess because the perception model is centered near zero
    /// for a typical route set.
    pub fn from_paper_targets() -> Calibration {
        let mut intercepts = [[[0.0; 3]; 2]; 4];
        for (a, row) in intercepts.iter_mut().enumerate() {
            for (res_idx, by_bin) in row.iter_mut().enumerate() {
                let resident = res_idx == 1;
                for bin in LengthBin::ALL {
                    by_bin[bin.index()] = paper::target_mean(a, resident, bin);
                }
            }
        }
        Calibration { intercepts }
    }

    /// A flat calibration (every cell the same) — used by ablations that
    /// want the perception model alone to differentiate approaches.
    pub fn flat(value: f64) -> Calibration {
        Calibration {
            intercepts: [[[value; 3]; 2]; 4],
        }
    }

    /// The intercept for a cell.
    pub fn intercept(&self, approach: usize, resident: bool, bin: LengthBin) -> f64 {
        self.intercepts[approach][resident as usize][bin.index()]
    }

    /// Mutable access for fitting.
    fn intercept_mut(&mut self, approach: usize, resident: bool, bin: LengthBin) -> &mut f64 {
        &mut self.intercepts[approach][resident as usize][bin.index()]
    }

    /// Observed cell means of a study outcome (NaN for empty cells).
    pub fn observed_means(outcome: &StudyOutcome) -> [[[f64; 3]; 2]; 4] {
        let mut out = [[[f64::NAN; 3]; 2]; 4];
        for (a, by_approach) in out.iter_mut().enumerate() {
            for (res_idx, by_bin) in by_approach.iter_mut().enumerate() {
                let resident = res_idx == 1;
                for bin in LengthBin::ALL {
                    let mut w = Welford::new();
                    for r in outcome.ratings_of(a, Some(resident), Some(bin)) {
                        w.push(r);
                    }
                    if w.count() > 0 {
                        by_bin[bin.index()] = w.mean();
                    }
                }
            }
        }
        out
    }

    /// Fits the calibration against the paper targets by iterating the
    /// study `rounds` times with damping factor `damping` (≈ 0.8 works
    /// well). Returns the worst absolute cell residual of the final round.
    pub fn fit(
        &mut self,
        net: &RoadNetwork,
        providers: &[Box<dyn AlternativesProvider>],
        config: &StudyConfig,
        rounds: usize,
        damping: f64,
    ) -> f64 {
        let mut worst = f64::NAN;
        for _round in 0..rounds {
            // Fit on the exact study draw (same seed as the final run):
            // the iteration is then a deterministic fixed-point solve of
            // the clamp nonlinearity rather than a noisy regression.
            let outcome = run_study(net, providers, config, self);
            let observed = Self::observed_means(&outcome);
            worst = 0.0;
            for (a, observed_a) in observed.iter().enumerate() {
                for resident in [false, true] {
                    for bin in LengthBin::ALL {
                        let obs = observed_a[resident as usize][bin.index()];
                        if obs.is_nan() {
                            continue;
                        }
                        let target = paper::target_mean(a, resident, bin);
                        let residual = target - obs;
                        worst = worst.max(residual.abs());
                        *self.intercept_mut(a, resident, bin) += damping * residual;
                    }
                }
            }
        }
        worst
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::from_paper_targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};
    use arp_core::provider::standard_providers;

    #[test]
    fn paper_targets_populate_all_cells() {
        let c = Calibration::from_paper_targets();
        for a in 0..4 {
            for resident in [false, true] {
                for bin in LengthBin::ALL {
                    let v = c.intercept(a, resident, bin);
                    assert!(
                        (2.0..=4.5).contains(&v),
                        "cell ({a},{resident},{bin:?}) = {v}"
                    );
                }
            }
        }
        // Spot checks against the tables.
        assert_eq!(c.intercept(3, true, LengthBin::Small), 3.97);
        assert_eq!(c.intercept(0, false, LengthBin::Long), 2.74);
    }

    #[test]
    fn flat_calibration_is_uniform() {
        let c = Calibration::flat(3.0);
        for a in 0..4 {
            assert_eq!(c.intercept(a, true, LengthBin::Medium), 3.0);
        }
    }

    #[test]
    fn fitting_reduces_residuals() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 4);
        let providers = standard_providers(&g.network, 4);
        // Small/medium bins only (a Small-scale city has no 25+ min routes).
        let config = StudyConfig {
            seed: 77,
            query: arp_core::AltQuery::paper(),
            resident_bins: [20, 20, 0],
            nonresident_bins: [15, 15, 0],
        };
        // Start from a deliberately bad calibration.
        let mut cal = Calibration::flat(2.0);
        let outcome_before = run_study(&g.network, &providers, &config, &cal);
        let before = Calibration::observed_means(&outcome_before);

        cal.fit(&g.network, &providers, &config, 4, 0.8);
        let outcome_after = run_study(&g.network, &providers, &config, &cal);
        let after = Calibration::observed_means(&outcome_after);

        // Residuals against targets must shrink for populated cells.
        let mut before_err = 0.0f64;
        let mut after_err = 0.0f64;
        let mut cells = 0;
        for a in 0..4 {
            for resident in [false, true] {
                for bin in [LengthBin::Small, LengthBin::Medium] {
                    let target = paper::target_mean(a, resident, bin);
                    let b = before[a][resident as usize][bin.index()];
                    let f = after[a][resident as usize][bin.index()];
                    if b.is_nan() || f.is_nan() {
                        continue;
                    }
                    before_err += (target - b).abs();
                    after_err += (target - f).abs();
                    cells += 1;
                }
            }
        }
        assert!(cells >= 8, "too few populated cells");
        assert!(
            after_err < before_err * 0.5,
            "fit did not converge: before {before_err}, after {after_err}"
        );
    }
}
