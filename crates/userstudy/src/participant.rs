//! Simulated study participants.
//!
//! A participant perceives the quality of a route set through the factors
//! the paper's §4.2 documents and maps perceived utility onto the 1–5
//! rating scale. The model's components:
//!
//! * **route-quality features** (diversity, stretch, apparent detours,
//!   zig-zag, wide roads) weighted by mild personal preferences,
//! * **familiarity**: residents discount "apparent detours that are not"
//!   (they know the tunnels); non-residents penalize them harder,
//! * **favorite-route bias**: a per-response random effect shared by all
//!   four approaches (a participant whose favorite street is missing rates
//!   *everything* lower — the "no route using Blackburn rd" comment),
//! * **idiosyncratic noise** with participant-specific spread.

use rand::rngs::StdRng;
use rand::RngExt;

/// A simulated participant.
#[derive(Clone, Copy, Debug)]
pub struct Participant {
    /// Lives (or has lived) in the study city.
    pub resident: bool,
    /// Std-dev of the per-rating noise (people differ in decisiveness).
    pub noise_sd: f64,
    /// Multiplier on the apparent-detour penalty (residents < 1,
    /// non-residents > 1).
    pub misperception: f64,
    /// Personal weight on comfort features (turns, wide roads).
    pub comfort_pref: f64,
    /// Per-response random effect (favorite-route bias); drawn once per
    /// response and applied to all four approaches.
    pub response_effect: f64,
}

impl Participant {
    /// Draws a participant with the given residency from `rng`.
    pub fn draw(resident: bool, rng: &mut StdRng) -> Participant {
        let noise_sd = rng.random_range(0.95..1.45);
        let misperception = if resident {
            rng.random_range(0.3..0.8)
        } else {
            rng.random_range(0.9..1.6)
        };
        let comfort_pref = rng.random_range(0.5..1.5);
        // Favorite-route bias: usually near zero, occasionally strongly
        // negative ("none of these use my street").
        let response_effect = if rng.random_bool(0.2) {
            -rng.random_range(0.3..1.0)
        } else {
            rng.random_range(-0.2..0.2)
        };
        Participant {
            resident,
            noise_sd,
            misperception,
            comfort_pref,
            response_effect,
        }
    }
}

/// Standard-normal sample via Box–Muller.
pub fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Route-set features entering the perception model, all computed on the
/// public (OSM) weights.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RouteSetFeatures {
    /// Number of routes shown (fewer than requested reads as a failure).
    pub count: usize,
    /// Requested number of routes.
    pub requested: usize,
    /// Mean stretch of the set relative to the public optimum.
    pub mean_stretch: f64,
    /// Mean pairwise dissimilarity.
    pub diversity: f64,
    /// Worst wiggliness (route length / great-circle), the apparent-detour
    /// signal.
    pub max_wiggliness: f64,
    /// Mean turns per km.
    pub turns_per_km: f64,
    /// Mean wide-road share.
    pub wide_share: f64,
    /// Stretch of the *first* (recommended) route — captures the data
    /// mismatch: a provider optimizing on other data recommends a route
    /// that is not the public optimum.
    pub first_stretch: f64,
}

/// Perceived utility of a route set for this participant, before the
/// calibration intercept and noise. Centered so a typical good route set
/// contributes ≈ 0.
pub fn perceived_utility(p: &Participant, f: &RouteSetFeatures) -> f64 {
    let missing = f.requested.saturating_sub(f.count) as f64;
    let stretch_excess = (f.mean_stretch - 1.15).max(-0.15);
    let first_excess = (f.first_stretch - 1.0).max(0.0);
    let wiggle_excess = (f.max_wiggliness - 1.35).max(-0.35);
    let diversity_signal = f.diversity - 0.55;
    let turns_signal = f.turns_per_km - 2.0;
    let wide_signal = f.wide_share - 0.5;

    0.55 * diversity_signal
        - 0.9 * stretch_excess
        - 1.1 * first_excess
        - 0.5 * p.misperception * wiggle_excess
        + p.comfort_pref * (0.25 * wide_signal - 0.05 * turns_signal)
        - 0.35 * missing
}

/// Maps utility to the discrete 1–5 rating.
pub fn to_rating(utility: f64) -> u8 {
    utility.round().clamp(1.0, 5.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn baseline_features() -> RouteSetFeatures {
        RouteSetFeatures {
            count: 3,
            requested: 3,
            mean_stretch: 1.15,
            diversity: 0.55,
            max_wiggliness: 1.35,
            turns_per_km: 2.0,
            wide_share: 0.5,
            first_stretch: 1.0,
        }
    }

    #[test]
    fn baseline_utility_is_near_zero() {
        let mut r = rng(1);
        let p = Participant::draw(true, &mut r);
        let u = perceived_utility(&p, &baseline_features());
        assert!(u.abs() < 0.05, "u = {u}");
    }

    #[test]
    fn diversity_improves_utility() {
        let mut r = rng(2);
        let p = Participant::draw(true, &mut r);
        let mut good = baseline_features();
        good.diversity = 0.9;
        assert!(perceived_utility(&p, &good) > perceived_utility(&p, &baseline_features()));
    }

    #[test]
    fn stretch_and_missing_routes_hurt() {
        let mut r = rng(3);
        let p = Participant::draw(false, &mut r);
        let mut stretched = baseline_features();
        stretched.mean_stretch = 1.4;
        assert!(perceived_utility(&p, &stretched) < perceived_utility(&p, &baseline_features()));
        let mut missing = baseline_features();
        missing.count = 1;
        assert!(
            perceived_utility(&p, &missing) < perceived_utility(&p, &baseline_features()) - 0.5
        );
    }

    #[test]
    fn non_residents_penalize_apparent_detours_more() {
        // Average over many draws: misperception ranges don't overlap.
        let mut r = rng(4);
        let mut wiggly = baseline_features();
        wiggly.max_wiggliness = 2.0;
        let mut res_sum = 0.0;
        let mut non_sum = 0.0;
        for _ in 0..200 {
            let res = Participant::draw(true, &mut r);
            let non = Participant::draw(false, &mut r);
            res_sum += perceived_utility(&res, &wiggly);
            non_sum += perceived_utility(&non, &wiggly);
        }
        assert!(non_sum / 200.0 < res_sum / 200.0 - 0.1);
    }

    #[test]
    fn first_route_mismatch_hurts() {
        let mut r = rng(5);
        let p = Participant::draw(true, &mut r);
        let mut mismatch = baseline_features();
        mismatch.first_stretch = 1.2; // recommended route 20% slower publicly
        assert!(
            perceived_utility(&p, &mismatch) < perceived_utility(&p, &baseline_features()) - 0.1
        );
    }

    #[test]
    fn rating_clamps() {
        assert_eq!(to_rating(-3.0), 1);
        assert_eq!(to_rating(3.4), 3);
        assert_eq!(to_rating(3.6), 4);
        assert_eq!(to_rating(9.0), 5);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut r = rng(6);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = sample_normal(&mut r);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn participants_vary_but_deterministically() {
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let a = Participant::draw(true, &mut r1);
        let b = Participant::draw(true, &mut r2);
        assert_eq!(a.noise_sd, b.noise_sd);
        assert_eq!(a.response_effect, b.response_effect);
    }
}
