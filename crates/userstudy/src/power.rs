//! Monte-Carlo power analysis of the study design.
//!
//! The paper reports a non-significant ANOVA (p = 0.16, n = 237) and asks
//! readers to interpret the results with caution. The natural follow-up —
//! *could this study ever have detected the difference it observed?* — is
//! a power question. This module estimates the power of the one-way
//! ANOVA design by simulation, using the same discretized 1–5 rating
//! process as the study (normal perception noise, rounded and clamped),
//! and searches for the group size needed to reach a target power.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::anova::one_way_anova;
use crate::participant::sample_normal;

/// Power-analysis parameters.
#[derive(Clone, Debug)]
pub struct PowerDesign {
    /// True group means on the rating scale (the effect to detect).
    pub means: Vec<f64>,
    /// Common perception-noise standard deviation (pre-discretization).
    pub sd: f64,
    /// Significance threshold.
    pub alpha: f64,
    /// Monte-Carlo replications per power estimate.
    pub simulations: usize,
}

impl PowerDesign {
    /// The paper's observed configuration: overall means of Table 1 and a
    /// pooled sd ≈ 1.26.
    pub fn paper_observed() -> PowerDesign {
        PowerDesign {
            means: vec![3.37, 3.63, 3.58, 3.56],
            sd: 1.26,
            alpha: 0.05,
            simulations: 400,
        }
    }
}

/// Draws one simulated study (n responses per group) and tests it.
fn one_rejection(design: &PowerDesign, n: usize, rng: &mut StdRng) -> bool {
    let groups: Vec<Vec<f64>> = design
        .means
        .iter()
        .map(|&mean| {
            (0..n)
                .map(|_| {
                    let raw = mean + sample_normal(rng) * design.sd;
                    raw.round().clamp(1.0, 5.0)
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
    one_way_anova(&refs)
        .map(|r| r.p_value < design.alpha)
        .unwrap_or(false)
}

/// Estimated power (rejection rate) at `n` responses per group.
pub fn simulate_power(design: &PowerDesign, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rejections = 0usize;
    for _ in 0..design.simulations {
        if one_rejection(design, n, &mut rng) {
            rejections += 1;
        }
    }
    rejections as f64 / design.simulations as f64
}

/// Smallest per-group `n` (by doubling + bisection) achieving
/// `target_power`; `None` if not reached within `max_n`.
pub fn required_n(
    design: &PowerDesign,
    target_power: f64,
    max_n: usize,
    seed: u64,
) -> Option<usize> {
    // Doubling phase.
    let mut lo = 10usize;
    let mut hi = lo;
    loop {
        if simulate_power(design, hi, seed) >= target_power {
            break;
        }
        if hi >= max_n {
            return None;
        }
        lo = hi;
        hi = (hi * 2).min(max_n);
    }
    // Bisection phase (coarse: power estimates are noisy).
    while hi - lo > (lo / 10).max(5) {
        let mid = (lo + hi) / 2;
        if simulate_power(design, mid, seed) >= target_power {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(means: Vec<f64>, sd: f64) -> PowerDesign {
        PowerDesign {
            means,
            sd,
            alpha: 0.05,
            simulations: 120,
        }
    }

    #[test]
    fn null_effect_power_is_alpha() {
        // Equal means: rejection rate ~ alpha.
        let d = quick(vec![3.5, 3.5, 3.5, 3.5], 1.2);
        let p = simulate_power(&d, 100, 1);
        assert!(p < 0.15, "type-I rate {p}");
    }

    #[test]
    fn huge_effect_power_is_high() {
        let d = quick(vec![2.0, 4.0], 0.8);
        let p = simulate_power(&d, 40, 2);
        assert!(p > 0.95, "power {p}");
    }

    #[test]
    fn power_increases_with_n() {
        let d = quick(vec![3.3, 3.6, 3.55, 3.5], 1.25);
        let small = simulate_power(&d, 40, 3);
        let large = simulate_power(&d, 800, 3);
        assert!(large > small, "small {small} large {large}");
        assert!(large > 0.7, "large-n power {large}");
    }

    #[test]
    fn required_n_brackets_the_effect() {
        let d = quick(vec![3.0, 3.5], 1.0);
        let n = required_n(&d, 0.8, 4_000, 4).expect("effect is detectable");
        // Two-group 0.5/1.0 effect needs roughly n≈60-90 per group at 80%.
        assert!((30..300).contains(&n), "required n = {n}");
        // Power at the found n really is above target (same seed family).
        assert!(simulate_power(&d, n, 5) > 0.7);
    }

    #[test]
    fn undetectable_effect_returns_none() {
        let d = quick(vec![3.5, 3.501], 1.3);
        assert_eq!(required_n(&d, 0.8, 2_000, 6), None);
    }

    #[test]
    fn paper_design_is_underpowered() {
        // The central methodological finding: at the paper's observed
        // effect sizes and n = 237, power is well below the conventional
        // 80% bar.
        let d = PowerDesign {
            simulations: 200,
            ..PowerDesign::paper_observed()
        };
        let p = simulate_power(&d, 237, 7);
        assert!(p < 0.8, "paper design power {p}");
        assert!(p > 0.05, "but more than the type-I floor");
    }
}
