//! Post-hoc analyses beyond the paper's single one-way ANOVA.
//!
//! The paper stops at "not statistically significant"; a careful reviewer
//! would ask two follow-ups this module answers:
//!
//! * **Kruskal–Wallis H** — the rank-based analogue of one-way ANOVA,
//!   strictly more appropriate for ordinal 1–5 Likert ratings (no
//!   normality assumption). Ties are handled with the standard
//!   correction; the p-value uses the chi-square approximation.
//! * **Pairwise Welch t-tests with Bonferroni correction** — which pair,
//!   if any, drives a difference (none should, per the paper).

use crate::dist::{chi2_sf, t_sf};
use crate::stats::Welford;

/// Result of a Kruskal–Wallis test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KruskalWallisResult {
    /// The H statistic (tie-corrected).
    pub h: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: f64,
    /// p-value (chi-square approximation).
    pub p_value: f64,
}

/// Runs a Kruskal–Wallis test over the groups. Returns `None` with fewer
/// than two non-empty groups.
pub fn kruskal_wallis(groups: &[&[f64]]) -> Option<KruskalWallisResult> {
    let k = groups.iter().filter(|g| !g.is_empty()).count();
    if k < 2 {
        return None;
    }
    // Pool and rank with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        for &x in *g {
            pooled.push((x, gi));
        }
    }
    let n = pooled.len();
    if n <= k {
        return None;
    }
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        // Midrank for the tie run [i, j].
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }

    // Rank sums per group.
    let mut rank_sum = vec![0.0f64; groups.len()];
    let mut sizes = vec![0usize; groups.len()];
    for (idx, &(_, gi)) in pooled.iter().enumerate() {
        rank_sum[gi] += ranks[idx];
        sizes[gi] += 1;
    }

    let nf = n as f64;
    let mut h = 0.0;
    for gi in 0..groups.len() {
        if sizes[gi] == 0 {
            continue;
        }
        h += rank_sum[gi] * rank_sum[gi] / sizes[gi] as f64;
    }
    h = 12.0 / (nf * (nf + 1.0)) * h - 3.0 * (nf + 1.0);

    // Tie correction.
    let correction = 1.0 - tie_correction / (nf * nf * nf - nf);
    if correction <= 0.0 {
        // All observations identical.
        return Some(KruskalWallisResult {
            h: 0.0,
            df: (k - 1) as f64,
            p_value: 1.0,
        });
    }
    h /= correction;

    let df = (k - 1) as f64;
    Some(KruskalWallisResult {
        h,
        df,
        p_value: chi2_sf(h, df),
    })
}

/// One pairwise comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairwiseComparison {
    /// Index of the first group.
    pub a: usize,
    /// Index of the second group.
    pub b: usize,
    /// Mean difference (`mean_a − mean_b`).
    pub mean_diff: f64,
    /// Welch t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided raw p-value.
    pub p_value: f64,
    /// Bonferroni-adjusted p-value (`min(1, p × #pairs)`).
    pub p_adjusted: f64,
}

/// All pairwise Welch t-tests with Bonferroni adjustment.
pub fn pairwise_welch(groups: &[&[f64]]) -> Vec<PairwiseComparison> {
    let summaries: Vec<Welford> = groups
        .iter()
        .map(|g| {
            let mut w = Welford::new();
            for &x in *g {
                w.push(x);
            }
            w
        })
        .collect();

    let mut out = Vec::new();
    let k = groups.len();
    let pairs = (k * (k - 1) / 2) as f64;
    for a in 0..k {
        for b in a + 1..k {
            let (wa, wb) = (&summaries[a], &summaries[b]);
            if wa.count() < 2 || wb.count() < 2 {
                continue;
            }
            let (na, nb) = (wa.count() as f64, wb.count() as f64);
            let (va, vb) = (wa.variance(), wb.variance());
            let se2 = va / na + vb / nb;
            if se2 <= 0.0 {
                continue;
            }
            let mean_diff = wa.mean() - wb.mean();
            let t = mean_diff / se2.sqrt();
            // Welch–Satterthwaite.
            let df = se2 * se2
                / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
            let p = 2.0 * t_sf(t.abs(), df);
            out.push(PairwiseComparison {
                a,
                b,
                mean_diff,
                t,
                df,
                p_value: p.min(1.0),
                p_adjusted: (p * pairs).min(1.0),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kruskal_wallis_identical_groups() {
        let g = [1.0, 2.0, 3.0, 4.0, 5.0, 3.0];
        let r = kruskal_wallis(&[&g, &g, &g]).unwrap();
        assert!(r.h < 1e-9, "H = {}", r.h);
        assert!((r.p_value - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kruskal_wallis_detects_shift() {
        let a: Vec<f64> = (0..40).map(|i| 1.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 4.0 + (i % 3) as f64).collect();
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert_eq!(r.df, 1.0);
    }

    #[test]
    fn kruskal_wallis_textbook_example() {
        // Three groups, known H ≈ 7.0 (classic example without ties).
        let g1 = [23.0, 41.0, 54.0, 66.0, 90.0];
        let g2 = [45.0, 55.0, 60.0, 70.0, 72.0];
        let g3 = [18.0, 30.0, 34.0, 40.0, 44.0];
        let r = kruskal_wallis(&[&g1, &g2, &g3]).unwrap();
        assert_eq!(r.df, 2.0);
        // Rank sums are 44/56/20, so H = 12/240 * 1094.4 - 48 = 6.72.
        assert!((r.h - 6.72).abs() < 1e-9, "H = {}", r.h);
        assert!(r.p_value < 0.05);
    }

    #[test]
    fn kruskal_wallis_all_constant() {
        let g = [3.0, 3.0, 3.0];
        let r = kruskal_wallis(&[&g, &g]).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn kruskal_wallis_too_few_groups() {
        let g = [1.0, 2.0];
        assert!(kruskal_wallis(&[&g]).is_none());
        assert!(kruskal_wallis(&[&g, &[]]).is_none());
    }

    #[test]
    fn likert_ties_are_handled() {
        // Heavily tied 1-5 data like the study's ratings.
        let a: Vec<f64> = (0..100).map(|i| (1 + i % 5) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| (1 + (i + 1) % 5) as f64).collect();
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(
            r.p_value > 0.5,
            "identical distributions: p = {}",
            r.p_value
        );
    }

    #[test]
    fn pairwise_welch_shapes() {
        let a: Vec<f64> = (0..50).map(|i| 3.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 3.05 + (i % 5) as f64 * 0.1).collect();
        let c: Vec<f64> = (0..50).map(|i| 4.5 + (i % 5) as f64 * 0.1).collect();
        let comps = pairwise_welch(&[&a, &b, &c]);
        assert_eq!(comps.len(), 3);
        // a vs b: tiny difference, not significant after adjustment.
        let ab = comps.iter().find(|c| c.a == 0 && c.b == 1).unwrap();
        assert!(ab.p_adjusted > 0.05);
        // a vs c: huge difference.
        let ac = comps.iter().find(|c| c.a == 0 && c.b == 2).unwrap();
        assert!(ac.p_adjusted < 1e-6);
        assert!(ac.mean_diff < 0.0);
        // Adjustment never lowers p.
        for c in &comps {
            assert!(c.p_adjusted >= c.p_value - 1e-12);
            assert!(c.p_adjusted <= 1.0);
        }
    }

    #[test]
    fn pairwise_welch_skips_tiny_groups() {
        let a = [1.0];
        let b = [2.0, 3.0, 4.0];
        let comps = pairwise_welch(&[&a, &b]);
        assert!(comps.is_empty());
    }
}
