//! Published numbers from the paper (Tables 1–3 and the §4.1 ANOVA),
//! used as calibration targets and as the reference column in the
//! reproduction reports.

use crate::study::LengthBin;

/// Index of each approach in the paper's column order.
pub const APPROACHES: [&str; 4] = ["Google Maps", "Plateaus", "Dissimilarity", "Penalty"];

/// One row of a published table: mean and sd per approach plus group size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// Mean rating per approach (paper column order).
    pub means: [f64; 4],
    /// Standard deviation per approach.
    pub sds: [f64; 4],
    /// Number of responses in the group.
    pub responses: u32,
}

/// Table 1 — all 237 responses.
pub const TABLE1: [PaperRow; 4] = [
    PaperRow {
        label: "Overall",
        means: [3.37, 3.63, 3.58, 3.56],
        sds: [1.33, 1.25, 1.29, 1.17],
        responses: 237,
    },
    PaperRow {
        label: "Small Routes (0, 10] (mins)",
        means: [3.53, 3.48, 3.69, 3.81],
        sds: [1.17, 1.27, 1.18, 1.08],
        responses: 66,
    },
    PaperRow {
        label: "Medium Routes (10, 25] (mins)",
        means: [3.44, 3.51, 3.58, 3.42],
        sds: [1.39, 1.27, 1.26, 1.23],
        responses: 109,
    },
    PaperRow {
        label: "Long Routes (25, 80] (mins)",
        means: [3.11, 3.98, 3.45, 3.54],
        sds: [1.36, 1.13, 1.44, 1.14],
        responses: 62,
    },
];

/// Table 2 — Melbourne residents only (156 responses).
pub const TABLE2: [PaperRow; 4] = [
    PaperRow {
        label: "Melbourne residents",
        means: [3.55, 3.69, 3.70, 3.66],
        sds: [1.28, 1.17, 1.22, 1.12],
        responses: 156,
    },
    PaperRow {
        label: "Small Routes (0, 10] (mins)",
        means: [3.50, 3.42, 3.68, 3.97],
        sds: [1.16, 1.27, 1.25, 0.99],
        responses: 38,
    },
    PaperRow {
        label: "Medium Routes (10, 25] (mins)",
        means: [3.64, 3.70, 3.78, 3.55],
        sds: [1.28, 1.14, 1.13, 1.17],
        responses: 83,
    },
    PaperRow {
        label: "Long Routes (25, 80] (mins)",
        means: [3.40, 3.97, 3.54, 3.60],
        sds: [1.42, 1.10, 1.44, 1.09],
        responses: 35,
    },
];

/// Table 3 — non-residents only (81 responses).
pub const TABLE3: [PaperRow; 4] = [
    PaperRow {
        label: "Non-residents",
        means: [3.04, 3.51, 3.34, 3.37],
        sds: [1.37, 1.38, 1.37, 1.25],
        responses: 81,
    },
    PaperRow {
        label: "Small Routes (0, 10] (mins)",
        means: [3.57, 3.57, 3.71, 3.61],
        sds: [1.20, 1.29, 1.08, 1.17],
        responses: 28,
    },
    PaperRow {
        label: "Medium Routes (10, 25] (mins)",
        means: [2.81, 2.92, 2.96, 3.00],
        sds: [1.55, 1.47, 1.48, 1.33],
        responses: 26,
    },
    PaperRow {
        label: "Long Routes (25, 80] (mins)",
        means: [2.74, 4.00, 3.33, 3.48],
        sds: [1.23, 1.21, 1.47, 1.22],
        responses: 27,
    },
];

/// Published ANOVA p-values (§4.1): all respondents, residents,
/// non-residents.
pub const ANOVA_P_ALL: f64 = 0.16;
/// Residents-only ANOVA p-value.
pub const ANOVA_P_RESIDENTS: f64 = 0.68;
/// Non-residents-only ANOVA p-value.
pub const ANOVA_P_NON_RESIDENTS: f64 = 0.18;

/// Calibration target: mean rating for `(approach, resident, bin)` from
/// the bin rows of Tables 2 and 3.
pub fn target_mean(approach: usize, resident: bool, bin: LengthBin) -> f64 {
    let table = if resident { &TABLE2 } else { &TABLE3 };
    let row = match bin {
        LengthBin::Small => &table[1],
        LengthBin::Medium => &table[2],
        LengthBin::Long => &table[3],
    };
    row.means[approach]
}

/// Group sizes per `(resident, bin)` from the paper.
pub fn group_size(resident: bool, bin: LengthBin) -> usize {
    let table = if resident { &TABLE2 } else { &TABLE3 };
    let row = match bin {
        LengthBin::Small => &table[1],
        LengthBin::Medium => &table[2],
        LengthBin::Long => &table[3],
    };
    row.responses as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_rows_sum_to_group_totals() {
        assert_eq!(
            TABLE1[1].responses + TABLE1[2].responses + TABLE1[3].responses,
            TABLE1[0].responses
        );
        assert_eq!(
            TABLE2[1].responses + TABLE2[2].responses + TABLE2[3].responses,
            TABLE2[0].responses
        );
        assert_eq!(
            TABLE3[1].responses + TABLE3[2].responses + TABLE3[3].responses,
            TABLE3[0].responses
        );
        assert_eq!(
            TABLE2[0].responses + TABLE3[0].responses,
            TABLE1[0].responses
        );
    }

    #[test]
    fn table1_bins_consistent_with_table2_and_3() {
        // Bin sizes: 38+28=66, 83+26=109, 35+27=62.
        assert_eq!(
            TABLE2[1].responses + TABLE3[1].responses,
            TABLE1[1].responses
        );
        assert_eq!(
            TABLE2[2].responses + TABLE3[2].responses,
            TABLE1[2].responses
        );
        assert_eq!(
            TABLE2[3].responses + TABLE3[3].responses,
            TABLE1[3].responses
        );
    }

    #[test]
    fn headline_observations_hold_in_constants() {
        // Plateaus highest, Google lowest overall.
        let overall = &TABLE1[0];
        let max = overall.means.iter().cloned().fold(f64::MIN, f64::max);
        let min = overall.means.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(overall.means[1], max); // Plateaus
        assert_eq!(overall.means[0], min); // Google Maps
                                           // Penalty best for small routes (all respondents).
        let small = &TABLE1[1];
        assert!(small.means[3] >= small.means.iter().cloned().fold(f64::MIN, f64::max) - 1e-9);
        // Plateaus best for long routes.
        let long = &TABLE1[3];
        assert!(long.means[1] >= long.means.iter().cloned().fold(f64::MIN, f64::max) - 1e-9);
    }

    #[test]
    fn targets_lookup() {
        assert_eq!(target_mean(0, true, LengthBin::Small), 3.50);
        assert_eq!(target_mean(1, false, LengthBin::Long), 4.00);
        assert_eq!(group_size(true, LengthBin::Medium), 83);
        assert_eq!(group_size(false, LengthBin::Small), 28);
    }
}
