//! Stratified query sampling.
//!
//! The paper groups responses by the fastest travel time from source to
//! target: small (0, 10], medium (10, 25] and long (25, 80] minutes
//! (§4.1). The sampler draws random source vertices, grows one forward
//! shortest-path tree per source, and fills per-bin quotas by picking
//! random targets whose fastest time lands in each still-open bin.

use arp_core::search::{Direction, SearchSpace};
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::{minutes_to_ms, Cost, INFINITY};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::study::LengthBin;

/// A sampled study query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StudyQuery {
    /// Query source vertex.
    pub source: NodeId,
    /// Query target vertex.
    pub target: NodeId,
    /// Fastest travel time in ms (on the public weights).
    pub fastest_ms: Cost,
    /// Length bin the query falls into.
    pub bin: LengthBin,
}

/// Samples `quotas[bin]` queries per bin (indexed by [`LengthBin`] order:
/// small, medium, long). Returns the queries it managed to sample; a bin
/// quota may be under-filled if the network simply has no routes of that
/// length (the caller should check [`shortfall`]).
///
/// [`shortfall`]: fn@shortfall
pub fn sample_queries(net: &RoadNetwork, quotas: [usize; 3], seed: u64) -> Vec<StudyQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = quotas;
    let mut out = Vec::with_capacity(quotas.iter().sum());
    let n = net.num_nodes();
    if n < 2 {
        return out;
    }
    let mut ws = SearchSpace::new(net);
    // Generous attempt budget: each source tree can fill several queries.
    let max_sources = (quotas.iter().sum::<usize>() * 4).max(64);

    for _ in 0..max_sources {
        if remaining.iter().all(|&r| r == 0) {
            break;
        }
        let source = NodeId(rng.random_range(0..n as u32));
        let Ok(tree) = ws.shortest_path_tree(net, net.weights(), source, Direction::Forward) else {
            continue;
        };
        // Bucket reachable nodes by bin.
        let mut buckets: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for v in 0..n as u32 {
            if v == source.0 {
                continue;
            }
            let d = tree.dist[v as usize];
            if d == INFINITY {
                continue;
            }
            if let Some(bin) = LengthBin::from_ms(d) {
                buckets[bin.index()].push(v);
            }
        }
        // Take up to 2 queries per open bin from this tree so queries are
        // spread over many sources.
        for bin in LengthBin::ALL {
            let i = bin.index();
            let take = remaining[i].min(2);
            for _ in 0..take {
                if buckets[i].is_empty() {
                    break;
                }
                let j = rng.random_range(0..buckets[i].len());
                let target = buckets[i].swap_remove(j);
                out.push(StudyQuery {
                    source,
                    target: NodeId(target),
                    fastest_ms: tree.dist[target as usize],
                    bin,
                });
                remaining[i] -= 1;
            }
        }
    }
    out
}

/// How many queries per bin are missing from `queries` relative to
/// `quotas`.
pub fn shortfall(queries: &[StudyQuery], quotas: [usize; 3]) -> [usize; 3] {
    let mut have = [0usize; 3];
    for q in queries {
        have[q.bin.index()] += 1;
    }
    [
        quotas[0].saturating_sub(have[0]),
        quotas[1].saturating_sub(have[1]),
        quotas[2].saturating_sub(have[2]),
    ]
}

/// Convenience: the ms bounds of a bin, `(exclusive_low, inclusive_high)`.
pub fn bin_bounds_ms(bin: LengthBin) -> (Cost, Cost) {
    match bin {
        LengthBin::Small => (0, minutes_to_ms(10.0)),
        LengthBin::Medium => (minutes_to_ms(10.0), minutes_to_ms(25.0)),
        LengthBin::Long => (minutes_to_ms(25.0), minutes_to_ms(80.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};

    #[test]
    fn samples_fill_quotas_where_possible() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 3);
        let quotas = [10, 10, 0];
        let queries = sample_queries(&g.network, quotas, 42);
        let missing = shortfall(&queries, quotas);
        assert_eq!(missing, [0, 0, 0], "sampled {} queries", queries.len());
    }

    #[test]
    fn sampled_queries_match_their_bins() {
        let g = arp_citygen::generate(City::Copenhagen, Scale::Small, 5);
        let queries = sample_queries(&g.network, [8, 8, 0], 7);
        for q in &queries {
            let (lo, hi) = bin_bounds_ms(q.bin);
            assert!(q.fastest_ms > lo && q.fastest_ms <= hi, "{:?}", q);
            assert_ne!(q.source, q.target);
            // Verify the fastest time is real.
            let p = arp_core::shortest_path(&g.network, g.network.weights(), q.source, q.target)
                .unwrap();
            assert_eq!(p.cost_ms, q.fastest_ms);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = arp_citygen::generate(City::Dhaka, Scale::Tiny, 1);
        let a = sample_queries(&g.network, [5, 5, 0], 99);
        let b = sample_queries(&g.network, [5, 5, 0], 99);
        assert_eq!(a, b);
        let c = sample_queries(&g.network, [5, 5, 0], 100);
        assert_ne!(a, c);
    }

    #[test]
    fn impossible_bins_underfill_gracefully() {
        // A tiny city has no (25, 80]-minute routes.
        let g = arp_citygen::generate(City::Melbourne, Scale::Tiny, 2);
        let quotas = [2, 2, 5];
        let queries = sample_queries(&g.network, quotas, 11);
        let missing = shortfall(&queries, quotas);
        assert_eq!(missing[0], 0);
        assert!(missing[2] > 0, "a tiny city cannot host 25+ minute routes");
    }

    #[test]
    fn bin_bounds_are_contiguous() {
        let (lo_s, hi_s) = bin_bounds_ms(LengthBin::Small);
        let (lo_m, hi_m) = bin_bounds_ms(LengthBin::Medium);
        let (lo_l, hi_l) = bin_bounds_ms(LengthBin::Long);
        assert_eq!(lo_s, 0);
        assert_eq!(hi_s, lo_m);
        assert_eq!(hi_m, lo_l);
        assert!(hi_l > lo_l);
    }
}
