//! One-way analysis of variance (ANOVA) — the significance test the paper
//! applies to the four approaches' ratings (§4.1).

use crate::dist::f_sf;
use crate::stats::Welford;

/// Result of a one-way ANOVA.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnovaResult {
    /// F statistic (between-group MS / within-group MS).
    pub f: f64,
    /// Between-group degrees of freedom (`k − 1`).
    pub df_between: f64,
    /// Within-group degrees of freedom (`N − k`).
    pub df_within: f64,
    /// p-value under the null of equal group means.
    pub p_value: f64,
}

impl AnovaResult {
    /// True when the null hypothesis is rejected at `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a one-way ANOVA over `groups` (one slice of observations each).
///
/// Returns `None` when fewer than two groups have data or every group is
/// constant and identical (F undefined).
pub fn one_way_anova(groups: &[&[f64]]) -> Option<AnovaResult> {
    let k = groups.iter().filter(|g| !g.is_empty()).count();
    if k < 2 {
        return None;
    }

    let mut grand = Welford::new();
    let mut group_stats: Vec<Welford> = Vec::with_capacity(groups.len());
    for g in groups {
        let mut w = Welford::new();
        for &x in *g {
            w.push(x);
            grand.push(x);
        }
        group_stats.push(w);
    }
    let n_total = grand.count() as f64;
    if n_total <= k as f64 {
        return None;
    }

    let grand_mean = grand.mean();
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for w in &group_stats {
        if w.count() == 0 {
            continue;
        }
        let diff = w.mean() - grand_mean;
        ss_between += w.count() as f64 * diff * diff;
        ss_within += w.sum_sq();
    }

    let df_between = (k - 1) as f64;
    let df_within = n_total - k as f64;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    if ms_within <= 0.0 {
        // All groups constant: identical means -> F = 0, else infinite.
        return if ss_between <= 1e-12 {
            Some(AnovaResult {
                f: 0.0,
                df_between,
                df_within,
                p_value: 1.0,
            })
        } else {
            Some(AnovaResult {
                f: f64::INFINITY,
                df_between,
                df_within,
                p_value: 0.0,
            })
        };
    }
    let f = ms_between / ms_within;
    Some(AnovaResult {
        f,
        df_between,
        df_within,
        p_value: f_sf(f, df_between, df_within),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_groups_give_p_one() {
        let g = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = one_way_anova(&[&g, &g, &g]).unwrap();
        assert!(r.f.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn clearly_different_groups_significant() {
        let a: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 5.0 + (i % 3) as f64 * 0.1).collect();
        let r = one_way_anova(&[&a, &b]).unwrap();
        assert!(r.p_value < 1e-6);
        assert!(r.significant(0.05));
    }

    #[test]
    fn textbook_example() {
        // Classic 3-group example with known F.
        let g1 = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let g2 = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let g3 = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let r = one_way_anova(&[&g1, &g2, &g3]).unwrap();
        assert_eq!(r.df_between, 2.0);
        assert_eq!(r.df_within, 15.0);
        // Known value: F ≈ 9.3, p ≈ 0.0024.
        assert!((r.f - 9.3).abs() < 0.2, "F = {}", r.f);
        assert!((r.p_value - 0.0024).abs() < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn unbalanced_groups_work() {
        let g1 = [2.0, 3.0, 4.0];
        let g2 = [3.0, 4.0, 5.0, 6.0, 7.0, 3.5];
        let r = one_way_anova(&[&g1, &g2]).unwrap();
        assert!(r.p_value > 0.0 && r.p_value < 1.0);
        assert_eq!(r.df_within, 7.0);
    }

    #[test]
    fn too_few_groups_is_none() {
        let g = [1.0, 2.0];
        assert!(one_way_anova(&[&g]).is_none());
        assert!(one_way_anova(&[&g, &[]]).is_none());
        assert!(one_way_anova(&[]).is_none());
    }

    #[test]
    fn constant_but_different_groups() {
        let a = [2.0, 2.0, 2.0];
        let b = [5.0, 5.0, 5.0];
        let r = one_way_anova(&[&a, &b]).unwrap();
        assert!(r.f.is_infinite());
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn paper_scale_simulation_is_not_significant() {
        // Four groups shaped like the paper's ratings (means 3.37..3.63,
        // sd ~1.2, n = 237): the ANOVA must come out non-significant, like
        // the paper's p = 0.16.
        let make = |mean: f64, phase: u64| -> Vec<f64> {
            (0..237u64)
                .map(|i| {
                    // Deterministic pseudo-noise in [-2, 2], sd ≈ 1.16.
                    let x = ((i.wrapping_mul(2654435761).wrapping_add(phase * 97)) % 1000) as f64
                        / 1000.0;
                    let noise = (x - 0.5) * 4.0;
                    (mean + noise).clamp(1.0, 5.0)
                })
                .collect()
        };
        let a = make(3.37, 1);
        let b = make(3.63, 2);
        let c = make(3.58, 3);
        let d = make(3.56, 4);
        let r = one_way_anova(&[&a, &b, &c, &d]).unwrap();
        assert_eq!(r.df_between, 3.0);
        assert_eq!(r.df_within, 944.0);
        assert!(
            !r.significant(0.05),
            "expected non-significance, got p = {}",
            r.p_value
        );
    }
}
