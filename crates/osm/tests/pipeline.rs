//! End-to-end pipeline test: synthetic city → OSM XML → rectangle filter →
//! road-network constructor (the exact data path the paper's §3 describes).

use arp_citygen::{City, Scale};
use arp_osm::constructor::{build_road_network, ConstructorConfig};
use arp_osm::export::network_to_osm;
use arp_osm::filter::filter_bbox;
use arp_osm::writer::write_osm_xml;
use arp_osm::xml::parse_osm_xml;
use arp_roadnet::scc::strongly_connected_components;

#[test]
fn full_pipeline_melbourne() {
    let city = arp_citygen::generate(City::Melbourne, Scale::Tiny, 42);
    let osm = network_to_osm(&city.network);
    let xml = write_osm_xml(&osm);
    assert!(xml.len() > 10_000);

    let parsed = parse_osm_xml(&xml).expect("generated XML must parse");
    assert_eq!(parsed.num_nodes(), city.network.num_nodes());

    let (net, stats) = build_road_network(&parsed, &ConstructorConfig::default()).unwrap();
    // The import reproduces the original graph.
    assert_eq!(net.num_nodes(), city.network.num_nodes());
    assert_eq!(net.num_edges(), city.network.num_edges());
    assert_eq!(stats.dangling_refs, 0);

    let scc = strongly_connected_components(&net);
    assert_eq!(scc.num_components, 1);
}

#[test]
fn rectangle_filter_clips_pipeline() {
    let city = arp_citygen::generate(City::Copenhagen, Scale::Tiny, 7);
    let osm = network_to_osm(&city.network);

    // Clip to the central quarter of the bounding box.
    let bb = city.network.bbox();
    let cx = (bb.min_lon + bb.max_lon) / 2.0;
    let cy = (bb.min_lat + bb.max_lat) / 2.0;
    let quarter = arp_roadnet::geo::BoundingBox::new(
        cx - bb.width_deg() / 4.0,
        cy - bb.height_deg() / 4.0,
        cx + bb.width_deg() / 4.0,
        cy + bb.height_deg() / 4.0,
    );
    let clipped = filter_bbox(&osm, quarter);
    assert!(clipped.num_nodes() < osm.num_nodes());
    assert!(clipped.num_nodes() > 0);

    let (net, _) = build_road_network(&clipped, &ConstructorConfig::default()).unwrap();
    assert!(net.num_nodes() > 0);
    assert!(net.num_nodes() <= clipped.num_nodes());
    // Everything inside the clip rectangle.
    for n in net.nodes() {
        assert!(quarter.contains(net.point(n)));
    }
    let scc = strongly_connected_components(&net);
    assert_eq!(scc.num_components, 1);
}

#[test]
fn travel_times_survive_roundtrip() {
    let city = arp_citygen::generate(City::Dhaka, Scale::Tiny, 3);
    let osm = network_to_osm(&city.network);
    let xml = write_osm_xml(&osm);
    let parsed = parse_osm_xml(&xml).unwrap();
    let (net, _) = build_road_network(&parsed, &ConstructorConfig::default()).unwrap();

    let orig: u64 = city
        .network
        .edges()
        .map(|e| city.network.weight(e) as u64)
        .sum();
    let back: u64 = net.edges().map(|e| net.weight(e) as u64).sum();
    let rel_err = orig.abs_diff(back) as f64 / orig as f64;
    assert!(rel_err < 1e-3, "relative weight error {rel_err}");
}
