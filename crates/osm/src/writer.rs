//! OSM XML writer for the same subset the parser reads.

use std::fmt::Write as _;

use crate::model::OsmData;

/// Escapes the five predefined XML entities in attribute values.
fn escape(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"', '\'']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Serializes `data` to OSM XML.
pub fn write_osm_xml(data: &OsmData) -> String {
    let mut out = String::with_capacity(data.nodes.len() * 64 + data.ways.len() * 128);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<osm version=\"0.6\" generator=\"arp-osm\">\n");
    if let Some((minlon, minlat, maxlon, maxlat)) = data.bounds {
        let _ = writeln!(
            out,
            "  <bounds minlat=\"{minlat}\" minlon=\"{minlon}\" maxlat=\"{maxlat}\" maxlon=\"{maxlon}\"/>"
        );
    }
    for n in &data.nodes {
        let _ = writeln!(
            out,
            "  <node id=\"{}\" lat=\"{}\" lon=\"{}\"/>",
            n.id, n.lat, n.lon
        );
    }
    for w in &data.ways {
        let _ = writeln!(out, "  <way id=\"{}\">", w.id);
        for r in &w.refs {
            let _ = writeln!(out, "    <nd ref=\"{r}\"/>");
        }
        for (k, v) in &w.tags {
            let _ = writeln!(out, "    <tag k=\"{}\" v=\"{}\"/>", escape(k), escape(v));
        }
        out.push_str("  </way>\n");
    }
    out.push_str("</osm>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OsmNode, OsmWay};
    use crate::xml::parse_osm_xml;

    fn sample() -> OsmData {
        OsmData {
            bounds: Some((144.0, -38.0, 145.0, -37.0)),
            nodes: vec![
                OsmNode {
                    id: 1,
                    lon: 144.5,
                    lat: -37.5,
                },
                OsmNode {
                    id: 2,
                    lon: 144.6,
                    lat: -37.6,
                },
            ],
            ways: vec![OsmWay {
                id: 100,
                refs: vec![1, 2],
                tags: vec![
                    ("highway".into(), "primary".into()),
                    ("name".into(), "A & B \"Road\"".into()),
                ],
            }],
        }
    }

    #[test]
    fn roundtrip_through_parser() {
        let data = sample();
        let xml = write_osm_xml(&data);
        let back = parse_osm_xml(&xml).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn escape_behaviour() {
        assert_eq!(escape("a<b"), "a&lt;b");
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("\"quoted\""), "&quot;quoted&quot;");
    }

    #[test]
    fn empty_data_writes_valid_xml() {
        let xml = write_osm_xml(&OsmData::default());
        let back = parse_osm_xml(&xml).unwrap();
        assert_eq!(back, OsmData::default());
    }
}
