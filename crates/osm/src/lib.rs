#![warn(missing_docs)]
//! # arp-osm
//!
//! The paper's **Road Network Constructor** (§3): parse OpenStreetMap XML,
//! clip it to a rectangular study area, and turn drivable ways into the
//! weighted directed road network the routing techniques run on.
//!
//! The crate is self-contained: [`xml`] is a minimal hand-rolled pull
//! parser for the OSM subset (`<node>`, `<way>`, `<nd>`, `<tag>`,
//! `<bounds>`), [`writer`] emits the same subset, [`filter`] clips to a
//! bounding rectangle, and [`constructor`] applies the paper's rules:
//!
//! * only drivable `highway=*` ways become edges,
//! * `oneway` tags control edge direction,
//! * travel time = length / maxspeed (category default when untagged),
//! * non-freeway edges get the ×1.3 calibration factor,
//! * the largest strongly connected component is kept.
//!
//! Real Geofabrik extracts are not available offline, so `arp-citygen`
//! networks are exported through [`export::network_to_osm`] and re-imported
//! here — exercising the identical code path the paper describes.

pub mod constructor;
pub mod error;
pub mod export;
pub mod filter;
pub mod model;
pub mod writer;
pub mod xml;

pub use constructor::{build_road_network, ConstructorConfig, ConstructorStats};
pub use error::OsmError;
pub use filter::filter_bbox;
pub use model::{OsmData, OsmNode, OsmWay};
pub use writer::write_osm_xml;
pub use xml::parse_osm_xml;
