//! In-memory model of an OSM extract: nodes with coordinates, ways with
//! node references and key/value tags.

use arp_roadnet::geo::{BoundingBox, Point};

/// An OSM node: a point with a signed 64-bit id (OSM ids exceed `u32`).
#[derive(Clone, Debug, PartialEq)]
pub struct OsmNode {
    /// OSM node id.
    pub id: i64,
    /// Longitude in decimal degrees.
    pub lon: f64,
    /// Latitude in decimal degrees.
    pub lat: f64,
}

impl OsmNode {
    /// The node's coordinates as a [`Point`].
    pub fn point(&self) -> Point {
        Point::new(self.lon, self.lat)
    }
}

/// An OSM way: an ordered list of node references plus tags.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OsmWay {
    /// OSM way id.
    pub id: i64,
    /// Ordered node references.
    pub refs: Vec<i64>,
    /// Key/value tags (`highway`, `maxspeed`, `oneway`, …).
    pub tags: Vec<(String, String)>,
}

impl OsmWay {
    /// Looks up a tag value by key.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The `highway=*` value, if any.
    pub fn highway(&self) -> Option<&str> {
        self.tag("highway")
    }

    /// Parses the `maxspeed` tag into km/h. Handles plain numbers,
    /// `NN km/h` and `NN mph`; returns `None` for anything else
    /// (e.g. `signals`, `none`).
    pub fn maxspeed_kmh(&self) -> Option<f32> {
        let raw = self.tag("maxspeed")?.trim();
        if let Some(mph) = raw.strip_suffix("mph") {
            return mph.trim().parse::<f32>().ok().map(|v| v * 1.609_344);
        }
        let digits = raw.strip_suffix("km/h").unwrap_or(raw).trim();
        digits.parse::<f32>().ok()
    }

    /// Direction of travel permitted along the way.
    pub fn oneway(&self) -> OnewayKind {
        match self.tag("oneway") {
            Some("yes") | Some("true") | Some("1") => OnewayKind::Forward,
            Some("-1") | Some("reverse") => OnewayKind::Backward,
            _ => {
                // Motorways are implicitly one-way in OSM.
                if self.highway() == Some("motorway") && self.tag("oneway").is_none() {
                    OnewayKind::Forward
                } else {
                    OnewayKind::Both
                }
            }
        }
    }
}

/// Direction of travel along a way.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OnewayKind {
    /// Travel allowed in both directions.
    Both,
    /// Travel only in node-reference order.
    Forward,
    /// Travel only against node-reference order.
    Backward,
}

/// A parsed OSM extract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OsmData {
    /// Declared bounds, if the extract carried a `<bounds>` element.
    pub bounds: Option<(f64, f64, f64, f64)>,
    /// All nodes.
    pub nodes: Vec<OsmNode>,
    /// All ways.
    pub ways: Vec<OsmWay>,
}

impl OsmData {
    /// Bounding box of all node coordinates.
    pub fn bbox(&self) -> BoundingBox {
        self.nodes
            .iter()
            .fold(BoundingBox::EMPTY, |bb, n| bb.expanded_to(n.point()))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of ways.
    pub fn num_ways(&self) -> usize {
        self.ways.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn way_with(tags: &[(&str, &str)]) -> OsmWay {
        OsmWay {
            id: 1,
            refs: vec![1, 2],
            tags: tags.iter().map(|&(k, v)| (k.into(), v.into())).collect(),
        }
    }

    #[test]
    fn tag_lookup() {
        let w = way_with(&[("highway", "primary"), ("name", "Main St")]);
        assert_eq!(w.tag("highway"), Some("primary"));
        assert_eq!(w.highway(), Some("primary"));
        assert_eq!(w.tag("surface"), None);
    }

    #[test]
    fn maxspeed_plain_number() {
        assert_eq!(way_with(&[("maxspeed", "60")]).maxspeed_kmh(), Some(60.0));
    }

    #[test]
    fn maxspeed_kmh_suffix() {
        assert_eq!(
            way_with(&[("maxspeed", "80 km/h")]).maxspeed_kmh(),
            Some(80.0)
        );
    }

    #[test]
    fn maxspeed_mph() {
        let v = way_with(&[("maxspeed", "30 mph")]).maxspeed_kmh().unwrap();
        assert!((v - 48.28).abs() < 0.01);
    }

    #[test]
    fn maxspeed_garbage_is_none() {
        assert_eq!(way_with(&[("maxspeed", "signals")]).maxspeed_kmh(), None);
        assert_eq!(way_with(&[]).maxspeed_kmh(), None);
    }

    #[test]
    fn oneway_variants() {
        assert_eq!(way_with(&[("oneway", "yes")]).oneway(), OnewayKind::Forward);
        assert_eq!(way_with(&[("oneway", "1")]).oneway(), OnewayKind::Forward);
        assert_eq!(way_with(&[("oneway", "-1")]).oneway(), OnewayKind::Backward);
        assert_eq!(way_with(&[("oneway", "no")]).oneway(), OnewayKind::Both);
        assert_eq!(way_with(&[]).oneway(), OnewayKind::Both);
    }

    #[test]
    fn motorway_implicitly_oneway() {
        assert_eq!(
            way_with(&[("highway", "motorway")]).oneway(),
            OnewayKind::Forward
        );
        assert_eq!(
            way_with(&[("highway", "motorway"), ("oneway", "no")]).oneway(),
            OnewayKind::Both
        );
    }

    #[test]
    fn data_bbox() {
        let data = OsmData {
            bounds: None,
            nodes: vec![
                OsmNode {
                    id: 1,
                    lon: 144.0,
                    lat: -37.0,
                },
                OsmNode {
                    id: 2,
                    lon: 145.0,
                    lat: -38.0,
                },
            ],
            ways: vec![],
        };
        let bb = data.bbox();
        assert_eq!(bb.min_lon, 144.0);
        assert_eq!(bb.min_lat, -38.0);
        assert_eq!(data.num_nodes(), 2);
        assert_eq!(data.num_ways(), 0);
    }
}
