//! Export of an [`arp_roadnet::RoadNetwork`] back to OSM form.
//!
//! Used to exercise the full paper pipeline offline: a synthetic city from
//! `arp-citygen` is exported to OSM XML and re-imported through the
//! constructor, so the code path the paper describes (Geofabrik extract →
//! rectangle filter → parse → weight) runs end to end.

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::EdgeId;

use crate::model::{OsmData, OsmNode, OsmWay};

/// Converts a road network to OSM data.
///
/// Each graph vertex becomes an OSM node with id `index + 1`. Each edge
/// becomes a two-node way tagged `highway`, `maxspeed` and, where no
/// reverse edge with the same attributes exists, `oneway=yes`; symmetric
/// two-way pairs are merged into a single untagged-direction way.
pub fn network_to_osm(net: &RoadNetwork) -> OsmData {
    let nodes: Vec<OsmNode> = net
        .nodes()
        .map(|n| {
            let p = net.point(n);
            OsmNode {
                id: n.index() as i64 + 1,
                lon: p.lon,
                lat: p.lat,
            }
        })
        .collect();

    let mut ways = Vec::with_capacity(net.num_edges());
    let mut emitted = vec![false; net.num_edges()];
    let mut next_way_id: i64 = 1;

    for e in net.edges() {
        if emitted[e.index()] {
            continue;
        }
        emitted[e.index()] = true;
        let tail_id = net.tail(e).index() as i64 + 1;
        let head_id = net.head(e).index() as i64 + 1;
        let mut tags = vec![
            ("highway".to_string(), net.category(e).osm_tag().to_string()),
            ("maxspeed".to_string(), format!("{}", net.speed_kmh(e))),
        ];
        let symmetric_reverse = net.reverse_edge(e).filter(|&r| {
            !emitted[r.index()]
                && net.category(r) == net.category(e)
                && net.speed_kmh(r) == net.speed_kmh(e)
        });
        match symmetric_reverse {
            Some(r) => {
                emitted[r.index()] = true;
                // Explicit two-way marker (motorways default to oneway).
                tags.push(("oneway".to_string(), "no".to_string()));
            }
            None => tags.push(("oneway".to_string(), "yes".to_string())),
        }
        ways.push(OsmWay {
            id: next_way_id,
            refs: vec![tail_id, head_id],
            tags,
        });
        next_way_id += 1;
    }

    let bb = net.bbox();
    OsmData {
        bounds: if bb.is_empty() {
            None
        } else {
            Some((bb.min_lon, bb.min_lat, bb.max_lon, bb.max_lat))
        },
        nodes,
        ways,
    }
}

/// True when `e` has a same-attribute reverse edge (diagnostic helper).
pub fn is_two_way(net: &RoadNetwork, e: EdgeId) -> bool {
    net.reverse_edge(e)
        .is_some_and(|r| net.category(r) == net.category(e) && net.speed_kmh(r) == net.speed_kmh(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructor::{build_road_network, ConstructorConfig};
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn sample_network() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(144.00, -37.00));
        let c = b.add_node(Point::new(144.01, -37.00));
        let d = b.add_node(Point::new(144.01, -37.01));
        b.add_bidirectional(a, c, EdgeSpec::category(RoadCategory::Primary));
        b.add_edge(c, d, EdgeSpec::category(RoadCategory::Residential));
        b.add_edge(d, a, EdgeSpec::category(RoadCategory::Residential));
        b.build()
    }

    #[test]
    fn export_merges_two_way_pairs() {
        let net = sample_network();
        let data = network_to_osm(&net);
        assert_eq!(data.num_nodes(), 3);
        // 4 directed edges -> 1 merged two-way + 2 one-way ways.
        assert_eq!(data.num_ways(), 3);
        let oneways = data
            .ways
            .iter()
            .filter(|w| w.tag("oneway") == Some("yes"))
            .count();
        assert_eq!(oneways, 2);
    }

    #[test]
    fn roundtrip_preserves_structure_and_weights() {
        let net = sample_network();
        let data = network_to_osm(&net);
        let (back, _) = build_road_network(&data, &ConstructorConfig::default()).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_edges(), net.num_edges());
        // Weights recomputed from geometry match the originals.
        let total_orig: u64 = net.edges().map(|e| net.weight(e) as u64).sum();
        let total_back: u64 = back.edges().map(|e| back.weight(e) as u64).sum();
        let diff = total_orig.abs_diff(total_back);
        assert!(diff <= net.num_edges() as u64, "diff {diff}");
    }

    #[test]
    fn is_two_way_detects_pairs() {
        let net = sample_network();
        let two_way = net.edges().filter(|&e| is_two_way(&net, e)).count();
        assert_eq!(two_way, 2);
    }

    #[test]
    fn empty_network_exports_empty_data() {
        let net = GraphBuilder::new().build();
        let data = network_to_osm(&net);
        assert_eq!(data.num_nodes(), 0);
        assert_eq!(data.num_ways(), 0);
        assert!(data.bounds.is_none());
    }
}
