//! Rectangle filtering: clips an OSM extract to a study area.
//!
//! The paper's road-network constructor "takes a rectangular area as input
//! and extracts the road network data … that lies within the input
//! rectangle" (§3). We keep every node inside the rectangle and trim way
//! node-reference lists to their maximal runs of kept nodes, splitting a
//! way that leaves and re-enters the rectangle into separate ways.

use std::collections::HashSet;

use arp_roadnet::geo::BoundingBox;

use crate::model::{OsmData, OsmWay};

/// Clips `data` to `bbox`.
pub fn filter_bbox(data: &OsmData, bbox: BoundingBox) -> OsmData {
    let kept_nodes: Vec<_> = data
        .nodes
        .iter()
        .filter(|n| bbox.contains(n.point()))
        .cloned()
        .collect();
    let kept_ids: HashSet<i64> = kept_nodes.iter().map(|n| n.id).collect();

    let mut ways = Vec::new();
    let mut next_synthetic_id = data.ways.iter().map(|w| w.id).max().unwrap_or(0) + 1;
    for way in &data.ways {
        // Split refs into runs of kept nodes.
        let mut run: Vec<i64> = Vec::new();
        let mut runs: Vec<Vec<i64>> = Vec::new();
        for &r in &way.refs {
            if kept_ids.contains(&r) {
                run.push(r);
            } else if run.len() >= 2 {
                runs.push(std::mem::take(&mut run));
            } else {
                run.clear();
            }
        }
        if run.len() >= 2 {
            runs.push(run);
        }
        for (i, refs) in runs.into_iter().enumerate() {
            let id = if i == 0 {
                way.id
            } else {
                let id = next_synthetic_id;
                next_synthetic_id += 1;
                id
            };
            ways.push(OsmWay {
                id,
                refs,
                tags: way.tags.clone(),
            });
        }
    }

    OsmData {
        bounds: Some((bbox.min_lon, bbox.min_lat, bbox.max_lon, bbox.max_lat)),
        nodes: kept_nodes,
        ways,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OsmNode;

    fn node(id: i64, lon: f64, lat: f64) -> OsmNode {
        OsmNode { id, lon, lat }
    }

    fn data_with_line() -> OsmData {
        // Nodes 1..=5 strung west->east; 3 falls outside the box.
        OsmData {
            bounds: None,
            nodes: vec![
                node(1, 144.1, -37.5),
                node(2, 144.2, -37.5),
                node(3, 146.0, -37.5), // outside
                node(4, 144.4, -37.5),
                node(5, 144.5, -37.5),
            ],
            ways: vec![OsmWay {
                id: 10,
                refs: vec![1, 2, 3, 4, 5],
                tags: vec![("highway".into(), "primary".into())],
            }],
        }
    }

    #[test]
    fn nodes_outside_removed() {
        let bbox = BoundingBox::new(144.0, -38.0, 145.0, -37.0);
        let out = filter_bbox(&data_with_line(), bbox);
        assert_eq!(out.num_nodes(), 4);
        assert!(out.nodes.iter().all(|n| bbox.contains(n.point())));
    }

    #[test]
    fn way_split_when_leaving_rectangle() {
        let bbox = BoundingBox::new(144.0, -38.0, 145.0, -37.0);
        let out = filter_bbox(&data_with_line(), bbox);
        assert_eq!(out.num_ways(), 2);
        assert_eq!(out.ways[0].refs, vec![1, 2]);
        assert_eq!(out.ways[1].refs, vec![4, 5]);
        // Both halves keep tags; the second gets a fresh id.
        assert_eq!(out.ways[0].id, 10);
        assert_ne!(out.ways[1].id, 10);
        assert_eq!(out.ways[1].tag("highway"), Some("primary"));
    }

    #[test]
    fn single_kept_node_runs_dropped() {
        // Way 1-3-2: node 3 outside, runs of length 1 on both sides -> dropped.
        let data = OsmData {
            bounds: None,
            nodes: vec![
                node(1, 144.1, -37.5),
                node(2, 144.2, -37.5),
                node(3, 146.0, -37.5),
            ],
            ways: vec![OsmWay {
                id: 1,
                refs: vec![1, 3, 2],
                tags: vec![],
            }],
        };
        let out = filter_bbox(&data, BoundingBox::new(144.0, -38.0, 145.0, -37.0));
        assert_eq!(out.num_ways(), 0);
    }

    #[test]
    fn fully_inside_way_untouched() {
        let bbox = BoundingBox::new(140.0, -40.0, 150.0, -30.0);
        let out = filter_bbox(&data_with_line(), bbox);
        assert_eq!(out.num_ways(), 1);
        assert_eq!(out.ways[0].refs.len(), 5);
    }

    #[test]
    fn bounds_set_to_filter_rectangle() {
        let bbox = BoundingBox::new(144.0, -38.0, 145.0, -37.0);
        let out = filter_bbox(&data_with_line(), bbox);
        assert_eq!(out.bounds, Some((144.0, -38.0, 145.0, -37.0)));
    }

    #[test]
    fn empty_input_stays_empty() {
        let out = filter_bbox(&OsmData::default(), BoundingBox::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(out.num_nodes(), 0);
        assert_eq!(out.num_ways(), 0);
    }
}
