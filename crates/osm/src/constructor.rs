//! The Road Network Constructor (§3 of the paper).
//!
//! Turns a (possibly clipped) OSM extract into an [`arp_roadnet::RoadNetwork`]:
//! every pair of consecutive node references of a drivable way becomes one
//! directed edge (two for two-way streets), weighted by travel time
//! `length / maxspeed` with the ×1.3 non-freeway calibration, and the
//! largest strongly connected component is kept so all queries are
//! routable.

use std::collections::HashMap;

use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
use arp_roadnet::category::RoadCategory;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::haversine_m;
use arp_roadnet::scc::largest_scc_subnetwork;
use arp_roadnet::weight::WeightConfig;

use crate::error::OsmError;
use crate::model::{OnewayKind, OsmData};

/// Configuration of the constructor.
#[derive(Clone, Copy, Debug)]
pub struct ConstructorConfig {
    /// Travel-time model (the paper's default multiplies non-freeway
    /// segments by 1.3).
    pub weight_config: WeightConfig,
    /// Keep only the largest strongly connected component (paper behaviour).
    pub keep_largest_scc: bool,
}

impl Default for ConstructorConfig {
    fn default() -> Self {
        ConstructorConfig {
            weight_config: WeightConfig::paper(),
            keep_largest_scc: true,
        }
    }
}

/// Statistics reported by the constructor, useful for experiment logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConstructorStats {
    /// Ways in the input.
    pub ways_total: usize,
    /// Ways with a drivable `highway=*` tag.
    pub ways_drivable: usize,
    /// Directed edges created before SCC extraction.
    pub edges_created: usize,
    /// Nodes referenced by drivable ways.
    pub nodes_used: usize,
    /// Nodes dropped by largest-SCC extraction.
    pub nodes_dropped_by_scc: usize,
    /// Way segments skipped because a referenced node was missing.
    pub dangling_refs: usize,
}

/// Builds a road network from OSM data.
///
/// Returns [`OsmError::EmptyNetwork`] when no drivable way survives.
pub fn build_road_network(
    data: &OsmData,
    config: &ConstructorConfig,
) -> Result<(RoadNetwork, ConstructorStats), OsmError> {
    let mut stats = ConstructorStats {
        ways_total: data.ways.len(),
        ..Default::default()
    };

    let coord_of: HashMap<i64, arp_roadnet::geo::Point> =
        data.nodes.iter().map(|n| (n.id, n.point())).collect();

    let mut b = GraphBuilder::with_weight_config(config.weight_config);
    let mut osm_to_node: HashMap<i64, arp_roadnet::ids::NodeId> = HashMap::new();

    for way in &data.ways {
        let Some(highway) = way.highway() else {
            continue;
        };
        let Some(category) = RoadCategory::from_osm_tag(highway) else {
            continue;
        };
        stats.ways_drivable += 1;
        let speed = way
            .maxspeed_kmh()
            .unwrap_or_else(|| category.default_speed_kmh());
        let oneway = way.oneway();

        for pair in way.refs.windows(2) {
            let (ra, rb) = (pair[0], pair[1]);
            let (Some(&pa), Some(&pb)) = (coord_of.get(&ra), coord_of.get(&rb)) else {
                stats.dangling_refs += 1;
                continue;
            };
            let na = *osm_to_node.entry(ra).or_insert_with(|| b.add_node(pa));
            let nb = *osm_to_node.entry(rb).or_insert_with(|| b.add_node(pb));
            let length = haversine_m(pa, pb);
            let spec = EdgeSpec {
                category,
                speed_kmh: Some(speed),
                length_m: Some(length),
                weight_ms: None,
            };
            match oneway {
                OnewayKind::Both => {
                    b.add_edge(na, nb, spec);
                    b.add_edge(nb, na, spec);
                    stats.edges_created += 2;
                }
                OnewayKind::Forward => {
                    b.add_edge(na, nb, spec);
                    stats.edges_created += 1;
                }
                OnewayKind::Backward => {
                    b.add_edge(nb, na, spec);
                    stats.edges_created += 1;
                }
            }
        }
    }

    stats.nodes_used = osm_to_node.len();
    if stats.edges_created == 0 {
        return Err(OsmError::EmptyNetwork);
    }

    let raw = b.build();
    let net = if config.keep_largest_scc {
        let (sub, _) = largest_scc_subnetwork(&raw);
        stats.nodes_dropped_by_scc = raw.num_nodes() - sub.num_nodes();
        sub
    } else {
        raw
    };
    Ok((net, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OsmNode, OsmWay};

    fn node(id: i64, lon: f64, lat: f64) -> OsmNode {
        OsmNode { id, lon, lat }
    }

    fn way(id: i64, refs: Vec<i64>, tags: &[(&str, &str)]) -> OsmWay {
        OsmWay {
            id,
            refs,
            tags: tags.iter().map(|&(k, v)| (k.into(), v.into())).collect(),
        }
    }

    fn square_data() -> OsmData {
        // A two-way square 1-2-3-4-1.
        OsmData {
            bounds: None,
            nodes: vec![
                node(1, 144.00, -37.00),
                node(2, 144.01, -37.00),
                node(3, 144.01, -37.01),
                node(4, 144.00, -37.01),
            ],
            ways: vec![way(10, vec![1, 2, 3, 4, 1], &[("highway", "residential")])],
        }
    }

    #[test]
    fn two_way_square_constructs() {
        let (net, stats) =
            build_road_network(&square_data(), &ConstructorConfig::default()).unwrap();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_edges(), 8);
        assert_eq!(stats.ways_drivable, 1);
        assert_eq!(stats.edges_created, 8);
        assert_eq!(stats.nodes_dropped_by_scc, 0);
    }

    #[test]
    fn oneway_square_is_directed_cycle() {
        let mut data = square_data();
        data.ways[0].tags.push(("oneway".into(), "yes".into()));
        let (net, _) = build_road_network(&data, &ConstructorConfig::default()).unwrap();
        assert_eq!(net.num_edges(), 4);
        // Every node has out-degree 1 in a directed cycle.
        for v in net.nodes() {
            assert_eq!(net.out_degree(v), 1);
        }
    }

    #[test]
    fn reverse_oneway() {
        let data = OsmData {
            bounds: None,
            nodes: vec![
                node(1, 144.0, -37.0),
                node(2, 144.01, -37.0),
                node(3, 144.0, -37.01),
            ],
            ways: vec![
                way(
                    1,
                    vec![1, 2],
                    &[("highway", "residential"), ("oneway", "-1")],
                ),
                // Return edges so the SCC isn't empty.
                way(2, vec![2, 3, 1], &[("highway", "residential")]),
                way(3, vec![1, 2], &[("highway", "service")]),
            ],
        };
        let cfg = ConstructorConfig {
            keep_largest_scc: false,
            ..Default::default()
        };
        let (net, _) = build_road_network(&data, &cfg).unwrap();
        // way 1 contributes 2 -> 1 only (plus ways 2 and 3).
        assert!(net.num_edges() >= 6);
    }

    #[test]
    fn non_drivable_ways_skipped() {
        let mut data = square_data();
        data.ways
            .push(way(11, vec![1, 3], &[("highway", "footway")]));
        data.ways
            .push(way(12, vec![2, 4], &[("waterway", "river")]));
        let (_, stats) = build_road_network(&data, &ConstructorConfig::default()).unwrap();
        assert_eq!(stats.ways_drivable, 1);
        assert_eq!(stats.ways_total, 3);
    }

    #[test]
    fn maxspeed_tag_overrides_default() {
        let mut data = square_data();
        data.ways[0].tags.push(("maxspeed".into(), "80".into()));
        let (net, _) = build_road_network(&data, &ConstructorConfig::default()).unwrap();
        for e in net.edges() {
            assert_eq!(net.speed_kmh(e), 80.0);
        }
    }

    #[test]
    fn calibration_factor_applied() {
        // residential (non-freeway) gets ×1.3: compare against raw time.
        let (net, _) = build_road_network(&square_data(), &ConstructorConfig::default()).unwrap();
        let e = net.edges().next().unwrap();
        let raw_s = net.length_m(e) as f64 / (net.speed_kmh(e) as f64 / 3.6);
        let ratio = net.weight(e) as f64 / (raw_s * 1000.0);
        assert!((ratio - 1.3).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn dangling_refs_counted() {
        let mut data = square_data();
        data.ways[0].refs.push(999); // unknown node
        let (_, stats) = build_road_network(&data, &ConstructorConfig::default()).unwrap();
        assert_eq!(stats.dangling_refs, 1);
    }

    #[test]
    fn dead_end_pruned_by_scc() {
        let mut data = square_data();
        data.nodes.push(node(5, 144.02, -37.0));
        // One-way spur into node 5: unreachable back, pruned by SCC.
        data.ways.push(way(
            11,
            vec![2, 5],
            &[("highway", "residential"), ("oneway", "yes")],
        ));
        let (net, stats) = build_road_network(&data, &ConstructorConfig::default()).unwrap();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(stats.nodes_dropped_by_scc, 1);
    }

    #[test]
    fn empty_input_is_error() {
        let err =
            build_road_network(&OsmData::default(), &ConstructorConfig::default()).unwrap_err();
        assert!(matches!(err, OsmError::EmptyNetwork));
    }

    #[test]
    fn footway_only_input_is_error() {
        let mut data = square_data();
        data.ways[0].tags[0].1 = "footway".into();
        assert!(build_road_network(&data, &ConstructorConfig::default()).is_err());
    }
}
