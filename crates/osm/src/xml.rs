//! A minimal XML pull parser for the OSM subset.
//!
//! OSM XML is machine-generated and highly regular: elements carry all data
//! in attributes, there is no mixed content, namespaces or CDATA. This
//! parser handles exactly that subset — `<?xml?>` declarations, comments,
//! start/end/self-closing tags with double- or single-quoted attributes,
//! and the five standard entities — and rejects everything else with a
//! byte-offset error.

use crate::error::OsmError;
use crate::model::{OsmData, OsmNode, OsmWay};

/// A parsed XML tag event.
#[derive(Debug, PartialEq)]
enum Event<'a> {
    /// `<name attr=...>` — `self_closing` is true for `<name ... />`.
    Start {
        name: &'a str,
        attrs: Vec<(&'a str, String)>,
        self_closing: bool,
    },
    /// `</name>`.
    End { name: &'a str },
    /// End of input.
    Eof,
}

/// Low-level tokenizer over the input bytes.
struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> OsmError {
        OsmError::Xml {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn skip_until_tag(&mut self) {
        while self.pos < self.input.len() && self.bytes()[self.pos] != b'<' {
            self.pos += 1;
        }
    }

    fn next_event(&mut self) -> Result<Event<'a>, OsmError> {
        loop {
            self.skip_until_tag();
            if self.pos >= self.input.len() {
                return Ok(Event::Eof);
            }
            // self.pos is at '<'.
            let rest = &self.input[self.pos..];
            if rest.starts_with("<?") {
                let end = rest
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos += end + 2;
                continue;
            }
            if rest.starts_with("<!--") {
                let end = rest
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos += end + 3;
                continue;
            }
            if rest.starts_with("<!") {
                let end = rest
                    .find('>')
                    .ok_or_else(|| self.err("unterminated declaration"))?;
                self.pos += end + 1;
                continue;
            }
            if rest.starts_with("</") {
                let end = rest
                    .find('>')
                    .ok_or_else(|| self.err("unterminated end tag"))?;
                let name = rest[2..end].trim();
                self.pos += end + 1;
                return Ok(Event::End { name });
            }
            return self.parse_start_tag();
        }
    }

    fn parse_start_tag(&mut self) -> Result<Event<'a>, OsmError> {
        debug_assert_eq!(self.bytes()[self.pos], b'<');
        let start = self.pos;
        let close = self.input[start..]
            .find('>')
            .ok_or_else(|| self.err("unterminated start tag"))?;
        let inner = &self.input[start + 1..start + close];
        self.pos = start + close + 1;

        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(s) => (s, true),
            None => (inner, false),
        };
        let inner = inner.trim();
        let name_end = inner
            .find(|c: char| c.is_whitespace())
            .unwrap_or(inner.len());
        let name = &inner[..name_end];
        if name.is_empty() {
            return Err(self.err("empty tag name"));
        }
        let mut attrs = Vec::new();
        let mut rest = inner[name_end..].trim_start();
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| self.err(format!("attribute without '=' in <{name}>")))?;
            let key = rest[..eq].trim_end();
            let after = rest[eq + 1..].trim_start();
            let quote = after
                .chars()
                .next()
                .ok_or_else(|| self.err("attribute value missing"))?;
            if quote != '"' && quote != '\'' {
                return Err(self.err(format!("unquoted attribute value for {key:?}")));
            }
            let val_end = after[1..]
                .find(quote)
                .ok_or_else(|| self.err(format!("unterminated attribute value for {key:?}")))?;
            let raw_val = &after[1..1 + val_end];
            attrs.push((key, unescape(raw_val)));
            rest = after[val_end + 2..].trim_start();
        }
        Ok(Event::Start {
            name,
            attrs,
            self_closing,
        })
    }
}

/// Decodes the five predefined XML entities.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semis = rest.find(';');
        match semis {
            Some(end) => {
                match &rest[..=end] {
                    "&amp;" => out.push('&'),
                    "&lt;" => out.push('<'),
                    "&gt;" => out.push('>'),
                    "&quot;" => out.push('"'),
                    "&apos;" => out.push('\''),
                    other => out.push_str(other),
                }
                rest = &rest[end + 1..];
            }
            None => {
                out.push_str(rest);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

fn attr<'e>(attrs: &'e [(&str, String)], key: &str) -> Option<&'e str> {
    attrs
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.as_str())
}

/// Parses an OSM XML document into [`OsmData`].
pub fn parse_osm_xml(input: &str) -> Result<OsmData, OsmError> {
    let mut tok = Tokenizer::new(input);
    let mut data = OsmData::default();
    let mut current_way: Option<OsmWay> = None;

    loop {
        let offset = tok.pos;
        match tok.next_event()? {
            Event::Eof => break,
            Event::Start {
                name,
                attrs,
                self_closing,
            } => match name {
                "osm" => {}
                "bounds" => {
                    let get = |k: &str| attr(&attrs, k).and_then(|v| v.parse::<f64>().ok());
                    if let (Some(minlon), Some(minlat), Some(maxlon), Some(maxlat)) =
                        (get("minlon"), get("minlat"), get("maxlon"), get("maxlat"))
                    {
                        data.bounds = Some((minlon, minlat, maxlon, maxlat));
                    }
                }
                "node" => {
                    let id = attr(&attrs, "id")
                        .and_then(|v| v.parse::<i64>().ok())
                        .ok_or(OsmError::Xml {
                            offset,
                            message: "node missing id".into(),
                        })?;
                    let lat = attr(&attrs, "lat")
                        .and_then(|v| v.parse::<f64>().ok())
                        .ok_or(OsmError::Xml {
                            offset,
                            message: "node missing lat".into(),
                        })?;
                    let lon = attr(&attrs, "lon")
                        .and_then(|v| v.parse::<f64>().ok())
                        .ok_or(OsmError::Xml {
                            offset,
                            message: "node missing lon".into(),
                        })?;
                    data.nodes.push(OsmNode { id, lon, lat });
                }
                "way" => {
                    let id = attr(&attrs, "id")
                        .and_then(|v| v.parse::<i64>().ok())
                        .ok_or(OsmError::Xml {
                            offset,
                            message: "way missing id".into(),
                        })?;
                    let way = OsmWay {
                        id,
                        ..OsmWay::default()
                    };
                    if self_closing {
                        data.ways.push(way);
                    } else {
                        current_way = Some(way);
                    }
                }
                "nd" => {
                    if let Some(way) = current_way.as_mut() {
                        let r = attr(&attrs, "ref")
                            .and_then(|v| v.parse::<i64>().ok())
                            .ok_or(OsmError::Xml {
                                offset,
                                message: "nd missing ref".into(),
                            })?;
                        way.refs.push(r);
                    }
                }
                "tag" => {
                    if let Some(way) = current_way.as_mut() {
                        let k = attr(&attrs, "k").unwrap_or("").to_string();
                        let v = attr(&attrs, "v").unwrap_or("").to_string();
                        way.tags.push((k, v));
                    }
                    // Node tags are ignored: the constructor doesn't use them.
                }
                "relation" | "member" => {
                    // Relations are irrelevant to the road network.
                }
                _ => {
                    // Unknown elements are skipped for forward compatibility.
                }
            },
            Event::End { name } => {
                if name == "way" {
                    if let Some(way) = current_way.take() {
                        data.ways.push(way);
                    }
                }
            }
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="arp-test">
  <bounds minlat="-38.0" minlon="144.0" maxlat="-37.0" maxlon="145.0"/>
  <!-- a comment -->
  <node id="1" lat="-37.5" lon="144.5"/>
  <node id="2" lat="-37.6" lon="144.6"/>
  <node id="3" lat="-37.7" lon="144.7"/>
  <way id="100">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="primary"/>
    <tag k="maxspeed" v="60"/>
    <tag k="name" v="Smith &amp; Jones Rd"/>
  </way>
</osm>
"#;

    #[test]
    fn parses_sample() {
        let data = parse_osm_xml(SAMPLE).unwrap();
        assert_eq!(data.num_nodes(), 3);
        assert_eq!(data.num_ways(), 1);
        assert_eq!(data.bounds, Some((144.0, -38.0, 145.0, -37.0)));
        let way = &data.ways[0];
        assert_eq!(way.id, 100);
        assert_eq!(way.refs, vec![1, 2, 3]);
        assert_eq!(way.tag("highway"), Some("primary"));
        assert_eq!(way.tag("name"), Some("Smith & Jones Rd"));
    }

    #[test]
    fn empty_osm_document() {
        let data = parse_osm_xml("<osm></osm>").unwrap();
        assert_eq!(data.num_nodes(), 0);
        assert_eq!(data.num_ways(), 0);
        assert_eq!(data.bounds, None);
    }

    #[test]
    fn single_quoted_attributes() {
        let data = parse_osm_xml("<osm><node id='5' lat='1.0' lon='2.0'/></osm>").unwrap();
        assert_eq!(data.nodes[0].id, 5);
    }

    #[test]
    fn node_missing_coordinates_rejected() {
        let err = parse_osm_xml(r#"<osm><node id="1" lat="1.0"/></osm>"#).unwrap_err();
        assert!(err.to_string().contains("missing lon"), "{err}");
    }

    #[test]
    fn unterminated_tag_rejected() {
        assert!(parse_osm_xml("<osm><node id=\"1\" lat=\"1\" lon=\"2\"").is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(parse_osm_xml("<osm><!-- oops</osm>").is_err());
    }

    #[test]
    fn unquoted_attribute_rejected() {
        assert!(parse_osm_xml("<osm><node id=1 lat=\"1\" lon=\"2\"/></osm>").is_err());
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape("a &lt; b &gt; c &amp; d"), "a < b > c & d");
        assert_eq!(unescape("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
        assert_eq!(unescape("plain"), "plain");
        // Unknown entity passes through.
        assert_eq!(unescape("&copy;"), "&copy;");
        // Dangling ampersand passes through.
        assert_eq!(unescape("a & b"), "a & b");
    }

    #[test]
    fn relations_are_skipped() {
        let xml = r#"<osm>
            <node id="1" lat="1" lon="2"/>
            <relation id="9"><member type="way" ref="100" role=""/><tag k="type" v="route"/></relation>
        </osm>"#;
        let data = parse_osm_xml(xml).unwrap();
        assert_eq!(data.num_nodes(), 1);
        assert_eq!(data.num_ways(), 0);
    }

    #[test]
    fn way_tags_outside_way_ignored() {
        // A <tag> with no enclosing way must not panic.
        let xml = r#"<osm><tag k="stray" v="1"/><node id="1" lat="0" lon="0"/></osm>"#;
        let data = parse_osm_xml(xml).unwrap();
        assert_eq!(data.num_nodes(), 1);
    }

    #[test]
    fn negative_ids_parse() {
        let data = parse_osm_xml(r#"<osm><node id="-10" lat="0.5" lon="0.5"/></osm>"#).unwrap();
        assert_eq!(data.nodes[0].id, -10);
    }
}
