//! Error type for OSM parsing and network construction.

use std::fmt;
use std::io;

/// Errors raised while parsing OSM XML or constructing a road network.
#[derive(Debug)]
pub enum OsmError {
    /// Malformed XML input.
    Xml {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A way references a node id that is absent from the data.
    MissingNode(i64),
    /// No drivable ways survived filtering/construction.
    EmptyNetwork,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for OsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsmError::Xml { offset, message } => {
                write!(f, "xml error at byte {offset}: {message}")
            }
            OsmError::MissingNode(id) => write!(f, "way references missing node {id}"),
            OsmError::EmptyNetwork => write!(f, "no drivable road network in input"),
            OsmError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for OsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for OsmError {
    fn from(e: io::Error) -> Self {
        OsmError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OsmError::Xml {
            offset: 12,
            message: "unexpected eof".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(OsmError::MissingNode(-3).to_string().contains("-3"));
        assert!(OsmError::EmptyNetwork.to_string().contains("no drivable"));
    }
}
