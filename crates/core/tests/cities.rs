//! Integration tests: the four techniques on all three synthetic study
//! cities, checking the structural claims the paper makes about them.

use arp_citygen::{City, Scale};
use arp_core::prelude::*;
use arp_core::quality::route_set_quality;
use arp_core::similarity::diversity;
use arp_roadnet::ids::NodeId;
use arp_roadnet::spatial::SpatialIndex;

/// Deterministic medium-distance query endpoints: pick nodes near opposite
/// corners of the city.
fn corner_query(net: &arp_roadnet::RoadNetwork) -> (NodeId, NodeId) {
    let idx = SpatialIndex::build(net);
    let bb = net.bbox();
    let a = idx
        .nearest_node(
            net,
            arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * 0.25,
                bb.min_lat + bb.height_deg() * 0.25,
            ),
        )
        .unwrap();
    let b = idx
        .nearest_node(
            net,
            arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * 0.75,
                bb.min_lat + bb.height_deg() * 0.75,
            ),
        )
        .unwrap();
    (a, b)
}

#[test]
fn all_techniques_work_on_all_cities() {
    for city in City::ALL {
        let g = arp_citygen::generate(city, Scale::Small, 11);
        let net = &g.network;
        let (s, t) = corner_query(net);
        assert_ne!(s, t);
        let q = AltQuery::paper();
        let best = shortest_path(net, net.weights(), s, t).unwrap().cost_ms;

        for provider in standard_providers(net, 17) {
            let routes = provider
                .alternatives(net, net.weights(), s, t, &q)
                .unwrap_or_else(|e| panic!("{} on {city}: {e}", provider.kind()));
            assert!(
                !routes.is_empty(),
                "{} on {city} returned nothing",
                provider.kind()
            );
            for r in &routes {
                assert!(r.path.validate(net));
                assert_eq!(r.path.source(), s);
                assert_eq!(r.path.target(), t);
            }
            // Local techniques honour the stretch bound; the Google-like
            // provider optimizes on different data so its public-priced
            // stretch may exceed it slightly (the Fig. 4 phenomenon), but
            // never unboundedly.
            for r in &routes {
                let stretch = r.public_cost_ms as f64 / best as f64;
                let limit = if provider.kind() == ProviderKind::GoogleLike {
                    2.2
                } else {
                    q.epsilon + 1e-9
                };
                assert!(
                    stretch <= limit,
                    "{} on {city}: stretch {stretch} > {limit}",
                    provider.kind()
                );
            }
        }
    }
}

/// Deterministic sample of query pairs spread across the city.
fn sample_pairs(net: &arp_roadnet::RoadNetwork, count: u32) -> Vec<(NodeId, NodeId)> {
    let n = net.num_nodes() as u32;
    (0..count)
        .map(|i| (NodeId((i * 37) % n), NodeId((i * 101 + 7) % n)))
        .filter(|(s, t)| s != t)
        .collect()
}

#[test]
fn cch_is_exact_on_all_cities_under_overlays() {
    // The customizable-CH tier must agree with Dijkstra on distances
    // AND on the unpacked edge lists it feeds the techniques, for every
    // city and for every overlay shape live traffic can produce: the
    // identity column, per-edge slowdowns, a category-wide slowdown,
    // and closures. One topology per city, one cheap customization per
    // column.
    use arp_core::{ChTopology, SearchSubstrate};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::weight::CLOSED;

    for city in City::ALL {
        let g = arp_citygen::generate(city, Scale::Tiny, 7);
        let net = &g.network;
        let topo = ChTopology::build(net);

        // Per-edge overlay: every fifth edge slowed 4x.
        let mut per_edge = net.weights().to_vec();
        for (i, w) in per_edge.iter_mut().enumerate() {
            if i % 5 == 0 {
                *w = w.saturating_mul(4).min(u32::MAX - 1);
            }
        }
        // Category overlay: all residential roads slowed 2x, plus a
        // couple of closures on top.
        let mut category = net.weights().to_vec();
        for e in net.edges() {
            if net.category(e) == RoadCategory::Residential {
                category[e.index()] = category[e.index()].saturating_mul(2).min(u32::MAX - 1);
            }
        }
        category[net.num_edges() / 3] = CLOSED;
        category[net.num_edges() / 2] = CLOSED;

        for (label, column) in [
            ("identity", net.weights()),
            ("per-edge", &per_edge[..]),
            ("category+closures", &category[..]),
        ] {
            let metric = topo.customize(net, column).unwrap();
            let mut ws = SearchSpace::new(net);
            for (s, t) in sample_pairs(net, 10) {
                let expect = ws.shortest_distance(net, column, s, t).ok();
                assert_eq!(
                    topo.distance(&metric, s, t),
                    expect,
                    "{city}/{label}: {s} -> {t}"
                );
                let Some(expect) = expect else { continue };
                // Unpacked edge lists: the standalone CH path is exact
                // and valid; the substrate fast path is byte-identical
                // to the Dijkstra-built substrate.
                let unpacked = topo.shortest_path(&metric, net, column, s, t).unwrap();
                assert_eq!(unpacked.cost_ms, expect, "{city}/{label}");
                assert!(unpacked.validate(net), "{city}/{label}");
                for e in &unpacked.edges {
                    assert_ne!(column[e.index()], CLOSED, "{city}/{label}: closed edge");
                }
                let plain =
                    SearchSubstrate::build(net, column, s, t, &SearchBudget::unlimited()).unwrap();
                let fast = SearchSubstrate::build_with_ch(
                    net,
                    column,
                    &topo,
                    &metric,
                    s,
                    t,
                    &SearchBudget::unlimited(),
                )
                .unwrap();
                assert_eq!(
                    fast.base_route().edges,
                    plain.base_route().edges,
                    "{city}/{label}: base route drifted"
                );
                assert_eq!(
                    fast.forward().parent,
                    plain.forward().parent,
                    "{city}/{label}"
                );
                assert_eq!(
                    fast.backward().parent,
                    plain.backward().parent,
                    "{city}/{label}"
                );
            }
        }
    }
}

#[test]
fn alternatives_are_diverse_on_cities() {
    // The whole point of alternative routes: the techniques should produce
    // sets with meaningful pairwise dissimilarity where the topology allows
    // it (bridges and freeway/surface duality guarantee that here).
    let g = arp_citygen::generate(City::Melbourne, Scale::Small, 23);
    let net = &g.network;
    let (s, t) = corner_query(net);
    let q = AltQuery::paper();

    let dis = dissimilarity_alternatives(
        net,
        net.weights(),
        s,
        t,
        &q,
        &DissimilarityOptions::default(),
    )
    .unwrap();
    if dis.len() >= 2 {
        let d = diversity(&dis, net.weights());
        assert!(d > q.theta - 1e-9, "dissimilarity set diversity {d}");
    }

    let pla =
        plateau_alternatives(net, net.weights(), s, t, &q, &PlateauOptions::default()).unwrap();
    if pla.len() >= 2 {
        let d = diversity(&pla, net.weights());
        assert!(d > 0.05, "plateau set diversity {d}");
    }
}

#[test]
fn quality_report_is_sane_on_city() {
    let g = arp_citygen::generate(City::Copenhagen, Scale::Small, 5);
    let net = &g.network;
    let (s, t) = corner_query(net);
    let q = AltQuery::paper();
    let paths =
        penalty_alternatives(net, net.weights(), s, t, &q, &PenaltyOptions::default()).unwrap();
    let best = paths[0].cost_ms;
    let report = route_set_quality(net, net.weights(), &paths, best);
    assert_eq!(report.count, paths.len());
    assert!(report.mean_stretch >= 1.0);
    assert!(report.mean_stretch <= q.epsilon + 1e-9);
    assert!((0.0..=1.0).contains(&report.diversity));
    assert!((0.0..=1.0).contains(&report.mean_wide_share));
    assert!(report.max_wiggliness >= 1.0);
}

#[test]
fn yen_less_diverse_than_dissimilarity_on_city() {
    let g = arp_citygen::generate(City::Dhaka, Scale::Small, 31);
    let net = &g.network;
    let (s, t) = corner_query(net);
    let q = AltQuery::paper();

    let yen = yen_k_shortest_paths(net, net.weights(), s, t, 3).unwrap();
    let dis = dissimilarity_alternatives(
        net,
        net.weights(),
        s,
        t,
        &q,
        &DissimilarityOptions::default(),
    )
    .unwrap();
    if yen.len() >= 2 && dis.len() >= 2 {
        let yen_div = diversity(&yen, net.weights());
        let dis_div = diversity(&dis, net.weights());
        assert!(
            dis_div >= yen_div,
            "dissimilarity ({dis_div}) should beat yen ({yen_div})"
        );
    }
}

#[test]
fn google_like_routes_flip_under_public_pricing_somewhere() {
    // Reproduces the Fig. 4 mechanism on a whole city: for at least one of
    // several queries, the Google-like provider's first route is NOT the
    // public optimum.
    let g = arp_citygen::generate(City::Melbourne, Scale::Small, 2);
    let net = &g.network;
    let idx = SpatialIndex::build(net);
    let provider = GoogleLikeProvider::new(net, 1234);
    let q = AltQuery::paper();
    let bb = net.bbox();

    let mut flips = 0usize;
    let mut total = 0usize;
    for i in 0..12 {
        let fx = 0.1 + 0.8 * ((i * 37 % 12) as f64 / 12.0);
        let fy = 0.1 + 0.8 * ((i * 53 % 12) as f64 / 12.0);
        let s = idx
            .nearest_node(
                net,
                arp_roadnet::geo::Point::new(
                    bb.min_lon + bb.width_deg() * fx,
                    bb.min_lat + bb.height_deg() * 0.15,
                ),
            )
            .unwrap();
        let t = idx
            .nearest_node(
                net,
                arp_roadnet::geo::Point::new(
                    bb.min_lon + bb.width_deg() * (1.0 - fx),
                    bb.min_lat + bb.height_deg() * fy,
                ),
            )
            .unwrap();
        if s == t {
            continue;
        }
        let Ok(routes) = provider.alternatives(net, net.weights(), s, t, &q) else {
            continue;
        };
        let Ok(best) = shortest_path(net, net.weights(), s, t) else {
            continue;
        };
        total += 1;
        if routes[0].public_cost_ms > best.cost_ms {
            flips += 1;
        }
    }
    assert!(total >= 6, "too few valid queries");
    assert!(flips > 0, "no data-mismatch flips in {total} queries");
}
