//! Integration tests: the four techniques on all three synthetic study
//! cities, checking the structural claims the paper makes about them.

use arp_citygen::{City, Scale};
use arp_core::prelude::*;
use arp_core::quality::route_set_quality;
use arp_core::similarity::diversity;
use arp_roadnet::ids::NodeId;
use arp_roadnet::spatial::SpatialIndex;

/// Deterministic medium-distance query endpoints: pick nodes near opposite
/// corners of the city.
fn corner_query(net: &arp_roadnet::RoadNetwork) -> (NodeId, NodeId) {
    let idx = SpatialIndex::build(net);
    let bb = net.bbox();
    let a = idx
        .nearest_node(
            net,
            arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * 0.25,
                bb.min_lat + bb.height_deg() * 0.25,
            ),
        )
        .unwrap();
    let b = idx
        .nearest_node(
            net,
            arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * 0.75,
                bb.min_lat + bb.height_deg() * 0.75,
            ),
        )
        .unwrap();
    (a, b)
}

#[test]
fn all_techniques_work_on_all_cities() {
    for city in City::ALL {
        let g = arp_citygen::generate(city, Scale::Small, 11);
        let net = &g.network;
        let (s, t) = corner_query(net);
        assert_ne!(s, t);
        let q = AltQuery::paper();
        let best = shortest_path(net, net.weights(), s, t).unwrap().cost_ms;

        for provider in standard_providers(net, 17) {
            let routes = provider
                .alternatives(net, net.weights(), s, t, &q)
                .unwrap_or_else(|e| panic!("{} on {city}: {e}", provider.kind()));
            assert!(
                !routes.is_empty(),
                "{} on {city} returned nothing",
                provider.kind()
            );
            for r in &routes {
                assert!(r.path.validate(net));
                assert_eq!(r.path.source(), s);
                assert_eq!(r.path.target(), t);
            }
            // Local techniques honour the stretch bound; the Google-like
            // provider optimizes on different data so its public-priced
            // stretch may exceed it slightly (the Fig. 4 phenomenon), but
            // never unboundedly.
            for r in &routes {
                let stretch = r.public_cost_ms as f64 / best as f64;
                let limit = if provider.kind() == ProviderKind::GoogleLike {
                    2.2
                } else {
                    q.epsilon + 1e-9
                };
                assert!(
                    stretch <= limit,
                    "{} on {city}: stretch {stretch} > {limit}",
                    provider.kind()
                );
            }
        }
    }
}

#[test]
fn alternatives_are_diverse_on_cities() {
    // The whole point of alternative routes: the techniques should produce
    // sets with meaningful pairwise dissimilarity where the topology allows
    // it (bridges and freeway/surface duality guarantee that here).
    let g = arp_citygen::generate(City::Melbourne, Scale::Small, 23);
    let net = &g.network;
    let (s, t) = corner_query(net);
    let q = AltQuery::paper();

    let dis = dissimilarity_alternatives(
        net,
        net.weights(),
        s,
        t,
        &q,
        &DissimilarityOptions::default(),
    )
    .unwrap();
    if dis.len() >= 2 {
        let d = diversity(&dis, net.weights());
        assert!(d > q.theta - 1e-9, "dissimilarity set diversity {d}");
    }

    let pla =
        plateau_alternatives(net, net.weights(), s, t, &q, &PlateauOptions::default()).unwrap();
    if pla.len() >= 2 {
        let d = diversity(&pla, net.weights());
        assert!(d > 0.05, "plateau set diversity {d}");
    }
}

#[test]
fn quality_report_is_sane_on_city() {
    let g = arp_citygen::generate(City::Copenhagen, Scale::Small, 5);
    let net = &g.network;
    let (s, t) = corner_query(net);
    let q = AltQuery::paper();
    let paths =
        penalty_alternatives(net, net.weights(), s, t, &q, &PenaltyOptions::default()).unwrap();
    let best = paths[0].cost_ms;
    let report = route_set_quality(net, net.weights(), &paths, best);
    assert_eq!(report.count, paths.len());
    assert!(report.mean_stretch >= 1.0);
    assert!(report.mean_stretch <= q.epsilon + 1e-9);
    assert!((0.0..=1.0).contains(&report.diversity));
    assert!((0.0..=1.0).contains(&report.mean_wide_share));
    assert!(report.max_wiggliness >= 1.0);
}

#[test]
fn yen_less_diverse_than_dissimilarity_on_city() {
    let g = arp_citygen::generate(City::Dhaka, Scale::Small, 31);
    let net = &g.network;
    let (s, t) = corner_query(net);
    let q = AltQuery::paper();

    let yen = yen_k_shortest_paths(net, net.weights(), s, t, 3).unwrap();
    let dis = dissimilarity_alternatives(
        net,
        net.weights(),
        s,
        t,
        &q,
        &DissimilarityOptions::default(),
    )
    .unwrap();
    if yen.len() >= 2 && dis.len() >= 2 {
        let yen_div = diversity(&yen, net.weights());
        let dis_div = diversity(&dis, net.weights());
        assert!(
            dis_div >= yen_div,
            "dissimilarity ({dis_div}) should beat yen ({yen_div})"
        );
    }
}

#[test]
fn google_like_routes_flip_under_public_pricing_somewhere() {
    // Reproduces the Fig. 4 mechanism on a whole city: for at least one of
    // several queries, the Google-like provider's first route is NOT the
    // public optimum.
    let g = arp_citygen::generate(City::Melbourne, Scale::Small, 2);
    let net = &g.network;
    let idx = SpatialIndex::build(net);
    let provider = GoogleLikeProvider::new(net, 1234);
    let q = AltQuery::paper();
    let bb = net.bbox();

    let mut flips = 0usize;
    let mut total = 0usize;
    for i in 0..12 {
        let fx = 0.1 + 0.8 * ((i * 37 % 12) as f64 / 12.0);
        let fy = 0.1 + 0.8 * ((i * 53 % 12) as f64 / 12.0);
        let s = idx
            .nearest_node(
                net,
                arp_roadnet::geo::Point::new(
                    bb.min_lon + bb.width_deg() * fx,
                    bb.min_lat + bb.height_deg() * 0.15,
                ),
            )
            .unwrap();
        let t = idx
            .nearest_node(
                net,
                arp_roadnet::geo::Point::new(
                    bb.min_lon + bb.width_deg() * (1.0 - fx),
                    bb.min_lat + bb.height_deg() * fy,
                ),
            )
            .unwrap();
        if s == t {
            continue;
        }
        let Ok(routes) = provider.alternatives(net, net.weights(), s, t, &q) else {
            continue;
        };
        let Ok(best) = shortest_path(net, net.weights(), s, t) else {
            continue;
        };
        total += 1;
        if routes[0].public_cost_ms > best.cost_ms {
            flips += 1;
        }
    }
    assert!(total >= 6, "too few valid queries");
    assert!(flips > 0, "no data-mismatch flips in {total} queries");
}
