//! Property-based tests for the routing core on random strongly connected
//! graphs.

use arp_core::prelude::*;
use arp_core::quality;
use arp_core::search::Direction;
use arp_core::similarity;
use arp_core::{DissimilarityStats, PenaltyStats, PlateauStats};
use arp_roadnet::prelude::*;
use proptest::prelude::*;

/// Random strongly connected graph: a Hamiltonian cycle (guaranteeing
/// strong connectivity) plus random chords with random weights.
fn arb_scc_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (4usize..25).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n, 500_000u32..1_000_000), 0..n * 3);
        (Just(n), chords)
    })
}

fn build(n: usize, chords: &[(usize, usize, u32)]) -> RoadNetwork {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            b.add_node(Point::new(
                144.0 + (i % 5) as f64 * 0.01,
                -37.0 - (i / 5) as f64 * 0.01,
            ))
        })
        .collect();
    for i in 0..n {
        b.add_edge(
            ids[i],
            ids[(i + 1) % n],
            EdgeSpec::category(RoadCategory::Primary)
                .with_weight(500_000 + (i as u32 * 7919) % 100_000),
        );
    }
    for &(t, h, w) in chords {
        if t != h {
            b.add_edge(
                ids[t],
                ids[h],
                EdgeSpec::category(RoadCategory::Secondary).with_weight(w),
            );
        }
    }
    b.build()
}

/// Bellman-Ford reference distance.
fn bellman_ford(net: &RoadNetwork, s: NodeId) -> Vec<u64> {
    let mut dist = vec![u64::MAX; net.num_nodes()];
    dist[s.index()] = 0;
    for _ in 0..net.num_nodes() {
        let mut changed = false;
        for e in net.edges() {
            let (t, h) = (net.tail(e), net.head(e));
            if dist[t.index()] != u64::MAX {
                let nd = dist[t.index()] + net.weight(e) as u64;
                if nd < dist[h.index()] {
                    dist[h.index()] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_bellman_ford((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let reference = bellman_ford(&net, NodeId(0));
        let mut ws = SearchSpace::new(&net);
        for t in 1..n as u32 {
            let p = ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(t)).unwrap();
            prop_assert_eq!(p.cost_ms, reference[t as usize]);
            prop_assert!(p.validate(&net));
        }
    }

    #[test]
    fn astar_equals_dijkstra((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let mut ws = SearchSpace::new(&net);
        let t = NodeId((n - 1) as u32);
        let d = ws.shortest_path(&net, net.weights(), NodeId(0), t).unwrap();
        let a = ws.astar(&net, net.weights(), NodeId(0), t).unwrap();
        // Weights are huge (>= 500 s) relative to the geometric lower bound
        // (< 500 s across the whole layout), keeping the heuristic admissible.
        prop_assert_eq!(a.cost_ms, d.cost_ms);
    }

    #[test]
    fn trees_agree_with_point_queries((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let mut ws = SearchSpace::new(&net);
        let fwd = ws.shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Forward).unwrap();
        let bwd = ws.shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Backward).unwrap();
        for v in 1..n as u32 {
            let to_v = ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(v)).unwrap().cost_ms;
            let from_v = ws.shortest_path(&net, net.weights(), NodeId(v), NodeId(0)).unwrap().cost_ms;
            prop_assert_eq!(fwd.distance(NodeId(v)), to_v);
            prop_assert_eq!(bwd.distance(NodeId(v)), from_v);
        }
    }

    #[test]
    fn every_technique_returns_valid_bounded_paths((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let (s, t) = (NodeId(0), NodeId((n / 2) as u32));
        if s == t { return Ok(()); }
        let q = AltQuery::paper();
        let best = shortest_path(&net, net.weights(), s, t).unwrap().cost_ms;

        let pen = penalty_alternatives(&net, net.weights(), s, t, &q, &PenaltyOptions::default()).unwrap();
        let pla = plateau_alternatives(&net, net.weights(), s, t, &q, &PlateauOptions::default()).unwrap();
        let dis = dissimilarity_alternatives(&net, net.weights(), s, t, &q, &DissimilarityOptions::default()).unwrap();

        for (name, paths) in [("penalty", &pen), ("plateau", &pla), ("dissimilarity", &dis)] {
            prop_assert!(!paths.is_empty(), "{} empty", name);
            prop_assert!(paths.len() <= q.k);
            prop_assert_eq!(paths[0].cost_ms, best, "{} first path not optimal", name);
            for p in paths.iter() {
                prop_assert!(p.validate(&net), "{} invalid path", name);
                prop_assert!(p.is_simple(), "{} non-simple path", name);
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.target(), t);
                prop_assert!(p.cost_ms <= q.cost_bound(best), "{} exceeds stretch", name);
            }
        }

        // Dissimilarity guarantee: pairwise similarity below 1 - theta.
        for i in 0..dis.len() {
            for j in i + 1..dis.len() {
                let sim = similarity::similarity(&dis[i], &dis[j], net.weights());
                prop_assert!(sim <= 1.0 - q.theta + 1e-9);
            }
        }
    }

    #[test]
    fn yen_costs_sorted_and_simple((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let t = NodeId((n - 1) as u32);
        let paths = yen_k_shortest_paths(&net, net.weights(), NodeId(0), t, 4).unwrap();
        prop_assert!(!paths.is_empty());
        for w in paths.windows(2) {
            prop_assert!(w[0].cost_ms <= w[1].cost_ms);
        }
        for p in &paths {
            prop_assert!(p.is_simple());
            prop_assert!(p.validate(&net));
        }
        // Yen's second path (when it exists) is the true second-shortest:
        // no technique can produce a non-optimal path cheaper than it.
        if paths.len() >= 2 {
            let second = paths[1].cost_ms;
            prop_assert!(second >= paths[0].cost_ms);
        }
    }

    #[test]
    fn similarity_bounds_hold((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let t = NodeId((n - 1) as u32);
        let paths = yen_k_shortest_paths(&net, net.weights(), NodeId(0), t, 3).unwrap();
        for p in &paths {
            for q in &paths {
                let s = similarity::similarity(p, q, net.weights());
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
        let d = similarity::diversity(&paths, net.weights());
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn local_optimality_of_shortest_path((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let t = NodeId((n - 1) as u32);
        let p = shortest_path(&net, net.weights(), NodeId(0), t).unwrap();
        let lo = quality::local_optimality(&net, net.weights(), &p, 0.4, 8);
        prop_assert!(lo.is_locally_optimal(), "{:?}", lo);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ch_distances_match_dijkstra((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let ch = arp_core::ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        for s in (0..n as u32).step_by(3) {
            for t in (0..n as u32).step_by(4) {
                if s == t { continue; }
                let expect = ws.shortest_distance(&net, net.weights(), NodeId(s), NodeId(t)).ok();
                prop_assert_eq!(ch.distance(NodeId(s), NodeId(t)), expect, "{} -> {}", s, t);
            }
        }
    }

    #[test]
    fn ch_paths_unpack_correctly((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let ch = arp_core::ContractionHierarchy::build(&net, net.weights()).unwrap();
        let t = NodeId((n - 1) as u32);
        let p = ch.shortest_path(&net, net.weights(), NodeId(0), t).unwrap();
        prop_assert!(p.validate(&net));
        let expect = shortest_path(&net, net.weights(), NodeId(0), t).unwrap();
        prop_assert_eq!(p.cost_ms, expect.cost_ms);
    }

    #[test]
    fn cch_distances_match_dijkstra((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let topo = arp_core::ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        for s in (0..n as u32).step_by(3) {
            for t in (0..n as u32).step_by(4) {
                if s == t { continue; }
                let expect = ws.shortest_distance(&net, net.weights(), NodeId(s), NodeId(t)).ok();
                prop_assert_eq!(topo.distance(&metric, NodeId(s), NodeId(t)), expect, "{} -> {}", s, t);
            }
        }
    }

    #[test]
    fn cch_substrate_is_byte_identical_to_dijkstra_substrate((n, chords) in arb_scc_graph()) {
        // The serving tier swaps SearchSubstrate::build for
        // SearchSubstrate::build_with_ch when a customized metric is
        // ready; the two must agree byte-for-byte — distances, parents,
        // and the base route — or CH-served responses would drift from
        // Dijkstra-served ones.
        let net = build(n, &chords);
        let topo = arp_core::ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let budget = SearchBudget::unlimited();
        let plain = arp_core::SearchSubstrate::build(&net, net.weights(), s, t, &budget).unwrap();
        let fast = arp_core::SearchSubstrate::build_with_ch(
            &net, net.weights(), &topo, &metric, s, t, &budget,
        ).unwrap();
        prop_assert_eq!(&fast.forward().dist, &plain.forward().dist);
        prop_assert_eq!(&fast.forward().parent, &plain.forward().parent);
        prop_assert_eq!(&fast.backward().dist, &plain.backward().dist);
        prop_assert_eq!(&fast.backward().parent, &plain.backward().parent);
        prop_assert_eq!(&fast.base_route().edges, &plain.base_route().edges);
        prop_assert_eq!(fast.base_route().cost_ms, plain.base_route().cost_ms);
    }

    #[test]
    fn bidir_matches_unidirectional((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let mut bi = arp_core::BidirSearch::new(&net);
        let mut uni = SearchSpace::new(&net);
        for t in (1..n as u32).step_by(2) {
            let d1 = uni.shortest_distance(&net, net.weights(), NodeId(0), NodeId(t)).unwrap();
            let d2 = bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(t)).unwrap();
            prop_assert_eq!(d1, d2);
            let p = bi.shortest_path(&net, net.weights(), NodeId(0), NodeId(t)).unwrap();
            prop_assert!(p.validate(&net));
            prop_assert_eq!(p.cost_ms, d1);
        }
    }

    #[test]
    fn esx_respects_overlap_bound((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let t = NodeId((n - 1) as u32);
        let q = AltQuery::paper();
        let opts = EsxOptions::default();
        let paths = esx_alternatives(&net, net.weights(), NodeId(0), t, &q, &opts).unwrap();
        prop_assert!(!paths.is_empty());
        for i in 1..paths.len() {
            for j in 0..i {
                let o = arp_core::similarity::overlap_ratio(&paths[i], &paths[j], net.weights());
                prop_assert!(o <= opts.max_overlap + 1e-9);
            }
        }
    }

    #[test]
    fn interrupted_runs_are_prefixes_of_full_runs(
        ((n, chords), cap) in (arb_scc_graph(), 1u64..4096),
    ) {
        // Cooperative cancellation must be *anytime*: a run interrupted at
        // an arbitrary expansion cap returns a prefix of the uninterrupted
        // run's routes — same admission order, byte-identical edges —
        // never a different or reordered set.
        let net = build(n, &chords);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let q = AltQuery::paper();

        let full = penalty_alternatives(
            &net, net.weights(), s, t, &q, &PenaltyOptions::default(),
        ).unwrap();
        let mut ws = SearchSpace::new(&net);
        ws.set_budget(SearchBudget::new().with_expansion_cap(cap));
        let partial = arp_core::penalty::penalty_alternatives_with(
            &mut ws, &net, net.weights(), s, t, &q, &PenaltyOptions::default(),
        ).unwrap();
        prop_assert!(partial.len() <= full.len(), "penalty grew under a budget");
        for (p, f) in partial.iter().zip(full.iter()) {
            prop_assert_eq!(&p.edges, &f.edges, "penalty partial is not a prefix");
        }

        let full = yen_k_shortest_paths(&net, net.weights(), s, t, 4).unwrap();
        let budget = SearchBudget::new().with_expansion_cap(cap);
        let partial = arp_core::yen_k_shortest_paths_budgeted(
            &net, net.weights(), s, t, 4, &budget,
        ).unwrap();
        prop_assert!(partial.len() <= full.len(), "yen grew under a budget");
        for (p, f) in partial.iter().zip(full.iter()) {
            prop_assert_eq!(&p.edges, &f.edges, "yen partial is not a prefix");
        }

        let full = esx_alternatives(
            &net, net.weights(), s, t, &q, &EsxOptions::default(),
        ).unwrap();
        let budget = SearchBudget::new().with_expansion_cap(cap);
        let partial = arp_core::esx_alternatives_budgeted(
            &net, net.weights(), s, t, &q, &EsxOptions::default(), &budget,
        ).unwrap();
        prop_assert!(partial.len() <= full.len(), "esx grew under a budget");
        for (p, f) in partial.iter().zip(full.iter()) {
            prop_assert_eq!(&p.edges, &f.edges, "esx partial is not a prefix");
        }
    }

    #[test]
    fn substrate_fed_techniques_match_self_computed((n, chords) in arb_scc_graph()) {
        // The shared-substrate path must be *byte-identical* to the
        // self-computed path for every consumer: same routes, same edges,
        // same costs, same admission order. This is what lets the serving
        // layer hand one substrate to all lanes without changing a single
        // response byte (DESIGN.md §8).
        let net = build(n, &chords);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let q = AltQuery::paper();
        let budget = SearchBudget::unlimited();
        let sub = arp_core::SearchSubstrate::build(&net, net.weights(), s, t, &budget).unwrap();

        let solo = plateau_alternatives(&net, net.weights(), s, t, &q, &PlateauOptions::default()).unwrap();
        let mut pstats = PlateauStats::default();
        let fed = arp_core::plateau_alternatives_from_trees(
            &net, net.weights(), &q, &PlateauOptions::default(), &mut pstats,
            sub.forward(), sub.backward(), &budget,
        ).unwrap();
        prop_assert_eq!(solo.len(), fed.len(), "plateau count differs");
        for (a, b) in solo.iter().zip(fed.iter()) {
            prop_assert_eq!(&a.edges, &b.edges, "plateau edges differ");
            prop_assert_eq!(a.cost_ms, b.cost_ms, "plateau cost differs");
        }

        let solo = dissimilarity_alternatives(&net, net.weights(), s, t, &q, &DissimilarityOptions::default()).unwrap();
        let mut dstats = DissimilarityStats::default();
        let fed = arp_core::dissimilarity_alternatives_from_trees(
            &net, net.weights(), &q, &DissimilarityOptions::default(), &mut dstats,
            sub.forward(), sub.backward(), &budget,
        ).unwrap();
        prop_assert_eq!(solo.len(), fed.len(), "dissimilarity count differs");
        for (a, b) in solo.iter().zip(fed.iter()) {
            prop_assert_eq!(&a.edges, &b.edges, "dissimilarity edges differ");
            prop_assert_eq!(a.cost_ms, b.cost_ms, "dissimilarity cost differs");
        }

        let solo = penalty_alternatives(&net, net.weights(), s, t, &q, &PenaltyOptions::default()).unwrap();
        let mut ws = SearchSpace::new(&net);
        let mut nstats = PenaltyStats::default();
        let fed = arp_core::penalty_alternatives_from_base(
            &mut ws, &net, net.weights(), s, t, &q, &PenaltyOptions::default(),
            &mut nstats, sub.base_route(),
        ).unwrap();
        prop_assert_eq!(solo.len(), fed.len(), "penalty count differs");
        for (a, b) in solo.iter().zip(fed.iter()) {
            prop_assert_eq!(&a.edges, &b.edges, "penalty edges differ");
            prop_assert_eq!(a.cost_ms, b.cost_ms, "penalty cost differs");
        }

        let solo = esx_alternatives(&net, net.weights(), s, t, &q, &EsxOptions::default()).unwrap();
        let fed = arp_core::esx_alternatives_from_base(
            &net, net.weights(), s, t, &q, &EsxOptions::default(), &budget, sub.base_route(),
        ).unwrap();
        prop_assert_eq!(solo.len(), fed.len(), "esx count differs");
        for (a, b) in solo.iter().zip(fed.iter()) {
            prop_assert_eq!(&a.edges, &b.edges, "esx edges differ");
            prop_assert_eq!(a.cost_ms, b.cost_ms, "esx cost differs");
        }
    }

    #[test]
    fn pareto_frontier_contains_optimum((n, chords) in arb_scc_graph()) {
        let net = build(n, &chords);
        let t = NodeId((n - 1) as u32);
        let routes = pareto_paths(&net, net.weights(), NodeId(0), t, &ParetoOptions::default()).unwrap();
        let best = shortest_path(&net, net.weights(), NodeId(0), t).unwrap().cost_ms;
        prop_assert_eq!(routes[0].time_ms, best);
        // Frontier is sorted by time and strictly improving in distance.
        for w in routes.windows(2) {
            prop_assert!(w[0].time_ms <= w[1].time_ms);
            prop_assert!(w[0].dist_m >= w[1].dist_m);
        }
        for r in &routes {
            prop_assert!(r.path.validate(&net));
        }
    }
}
