//! Yen's k-shortest loopless paths (§2.4 of the paper).
//!
//! Included as the classic baseline: applied trivially its k paths are
//! nearly identical to each other, which is exactly why alternative-route
//! techniques exist. The experiments use it (a) to validate the other
//! algorithms' shortest paths and (b) to demonstrate the low diversity of
//! naive k-shortest-path sets.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight};

use crate::budget::SearchBudget;
use crate::error::CoreError;
use crate::path::Path;
use crate::search::SearchSpace;

/// Computes the `k` shortest loopless paths from `source` to `target`
/// in ascending cost order. Returns fewer than `k` when the graph does not
/// contain that many simple paths.
pub fn yen_k_shortest_paths(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    k: usize,
) -> Result<Vec<Path>, CoreError> {
    yen_k_shortest_paths_budgeted(net, weights, source, target, k, &SearchBudget::unlimited())
}

/// [`yen_k_shortest_paths`] under a cooperative [`SearchBudget`].
///
/// A trip mid-call returns the paths found so far (still in ascending
/// cost order); inspect `budget.is_cancelled()` to tell a partial set
/// apart from a converged one. A trip before the first path is found
/// returns `Ok` with an empty set.
pub fn yen_k_shortest_paths_budgeted(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    k: usize,
    budget: &SearchBudget,
) -> Result<Vec<Path>, CoreError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut ws = SearchSpace::new(net);
    ws.set_budget(budget.clone());
    let best = match ws.shortest_path(net, weights, source, target) {
        Ok(p) => p,
        Err(CoreError::Interrupted) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };

    let mut result: Vec<Path> = vec![best];
    // Candidate heap keyed by cost; set for dedup.
    let mut heap: BinaryHeap<Reverse<(Cost, Vec<u32>)>> = BinaryHeap::new();
    let mut in_heap: HashSet<Vec<u32>> = HashSet::new();

    // Mutable overlay used to "remove" edges by making them unaffordable.
    let mut overlay = weights.to_vec();
    const BLOCKED: Weight = u32::MAX - 1;

    'rounds: while result.len() < k {
        // Poll between candidate generations: each round runs up to
        // |prev| spur searches, so this is where a tripped budget stops
        // the algorithm with the paths found so far.
        if budget.interrupted() {
            break;
        }
        let prev = result.last().unwrap().clone();
        // Spur from every vertex of the previous path except the target.
        for i in 0..prev.edges.len() {
            let spur_node = prev.nodes[i];
            let root_edges = &prev.edges[..i];

            // Block edges that would recreate an already-found path with
            // the same root.
            let mut blocked_edges: Vec<EdgeId> = Vec::new();
            for p in &result {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    blocked_edges.push(p.edges[i]);
                }
            }
            // Block the root's vertices (loopless requirement) by blocking
            // all their incident edges.
            let mut blocked_nodes: Vec<NodeId> = prev.nodes[..i].to_vec();
            blocked_nodes.retain(|&n| n != spur_node);

            for &e in &blocked_edges {
                overlay[e.index()] = BLOCKED;
            }
            let mut blocked_node_edges: Vec<EdgeId> = Vec::new();
            for &n in &blocked_nodes {
                for e in net.out_edges(n) {
                    blocked_node_edges.push(e);
                }
                for e in net.in_edges(n) {
                    blocked_node_edges.push(e);
                }
            }
            for &e in &blocked_node_edges {
                overlay[e.index()] = BLOCKED;
            }

            let spur = ws.shortest_path(net, &overlay, spur_node, target);

            // Restore the overlay.
            for &e in &blocked_edges {
                overlay[e.index()] = weights[e.index()];
            }
            for &e in &blocked_node_edges {
                overlay[e.index()] = weights[e.index()];
            }

            let spur_path = match spur {
                Ok(p) => p,
                // An interrupted spur search would silently bias the
                // candidate set; stop the whole round instead.
                Err(CoreError::Interrupted) => break 'rounds,
                Err(_) => continue,
            };
            // Reject spur paths that used a blocked edge (possible when no
            // alternative existed and the search paid the huge weight).
            if spur_path.cost_ms >= BLOCKED as Cost {
                continue;
            }

            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(&spur_path.edges);
            let total = Path::from_edges(net, weights, edges);
            if !total.is_simple() {
                continue;
            }
            let key = total.key();
            if in_heap.contains(&key) || result.iter().any(|p| p.key() == key) {
                continue;
            }
            in_heap.insert(key.clone());
            heap.push(Reverse((total.cost_ms, key)));
            // Keep the path body alongside: store in map keyed by edge ids.
            // To avoid a second map we reconstruct from the key below.
        }

        let Some(Reverse((cost, key))) = heap.pop() else {
            break;
        };
        let edges: Vec<EdgeId> = key.iter().map(|&e| EdgeId(e)).collect();
        let path = Path::from_edges(net, weights, edges);
        debug_assert_eq!(path.cost_ms, cost);
        result.push(path);
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn costs_non_decreasing_and_paths_distinct() {
        let net = grid(5);
        let paths = yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(24), 6).unwrap();
        assert_eq!(paths.len(), 6);
        for w in paths.windows(2) {
            assert!(w[0].cost_ms <= w[1].cost_ms);
        }
        for i in 0..paths.len() {
            assert!(paths[i].is_simple());
            assert!(paths[i].validate(&net));
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].edges, paths[j].edges);
            }
        }
    }

    #[test]
    fn first_is_shortest() {
        let net = grid(4);
        let paths = yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(15), 3).unwrap();
        let direct =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(15)).unwrap();
        assert_eq!(paths[0].cost_ms, direct.cost_ms);
    }

    #[test]
    fn line_graph_has_one_path() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(144.0 + i as f64 * 0.01, -37.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Primary));
        }
        let net = b.build();
        let paths = yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(3), 5).unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn second_shortest_on_asymmetric_triangle() {
        // s -> t direct (fast), s -> m -> t (slower): exactly two simple paths.
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.0, 0.0));
        let m = b.add_node(Point::new(0.01, 0.01));
        let t = b.add_node(Point::new(0.02, 0.0));
        b.add_edge(s, t, EdgeSpec::default().with_weight(100));
        b.add_edge(s, m, EdgeSpec::default().with_weight(80));
        b.add_edge(m, t, EdgeSpec::default().with_weight(80));
        let net = b.build();
        let paths = yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(2), 5).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost_ms, 100);
        assert_eq!(paths[1].cost_ms, 160);
    }

    #[test]
    fn yen_paths_are_highly_similar() {
        // The motivating observation from §2.4: naive k-shortest paths have
        // low diversity compared to a dedicated alternative-route method.
        let net = grid(6);
        let yen = yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(35), 3).unwrap();
        let yen_div = crate::similarity::diversity(&yen, net.weights());
        let plat = crate::plateau::plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(35),
            &crate::query::AltQuery::paper(),
            &crate::plateau::PlateauOptions::default(),
        )
        .unwrap();
        if plat.len() >= 2 {
            let plat_div = crate::similarity::diversity(&plat, net.weights());
            assert!(plat_div >= yen_div, "plateau {plat_div} vs yen {yen_div}");
        }
    }

    #[test]
    fn budgeted_call_returns_ascending_partial() {
        let net = grid(5);
        let full = yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(24), 6).unwrap();
        assert_eq!(full.len(), 6);
        // Cap of one pop: the first search completes (residual charge),
        // the sticky trip stops the round loop before any spur search.
        let budget = SearchBudget::new().with_expansion_cap(1);
        let partial =
            yen_k_shortest_paths_budgeted(&net, net.weights(), NodeId(0), NodeId(24), 6, &budget)
                .unwrap();
        assert!(budget.is_cancelled());
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].edges, full[0].edges);
    }

    #[test]
    fn k_zero_empty() {
        let net = grid(3);
        assert!(
            yen_k_shortest_paths(&net, net.weights(), NodeId(0), NodeId(8), 0)
                .unwrap()
                .is_empty()
        );
    }
}
