//! Alternative graphs and their quality metrics — Bader, Dees, Geisberger
//! & Sanders, *Alternative Route Graphs in Road Networks* (the paper's
//! reference \[4\], the source of its penalty factor 1.4).
//!
//! Instead of judging alternatives one path at a time, \[4\] evaluates the
//! **alternative graph** (AG): the union of all presented routes. Three
//! target functions summarize an AG `H` for a query `(s, t)` with optimal
//! distance `d(s,t)`:
//!
//! * `totalDistance` — how much *useful* road the AG offers:
//!   `Σ_{e∈H} w(e) / d(s,t)`. Higher = more alternatives, but padding the
//!   AG with useless edges inflates it, hence:
//! * `averageDistance` — how long the AG's routes are on average:
//!   the expected s–t cost over the AG's paths, normalized by `d(s,t)`
//!   (1.0 = every AG route is optimal). Lower is better.
//! * `decisionEdges` — how often a driver must decide:
//!   `Σ_{v∈H} (outdeg_H(v) − 1)`. Small values keep the choice set
//!   cognitively manageable.
//!
//! The penalty-factor recommendation the study adopts (×1.4) is the value
//! \[4\] found to balance these three metrics; `repro_penalty_factor`
//! sweeps the factor against them to reproduce that choice.

use std::collections::{BTreeMap, BTreeSet};

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight};

use crate::path::Path;

/// The union of a set of s–t routes, with the paper-\[4\] metrics.
#[derive(Clone, Debug)]
pub struct AlternativeGraph {
    /// Query source.
    pub source: NodeId,
    /// Query target.
    pub target: NodeId,
    /// Distinct edges of the union.
    pub edges: BTreeSet<EdgeId>,
    /// Adjacency within the AG: node -> outgoing AG edges.
    adjacency: BTreeMap<NodeId, Vec<EdgeId>>,
}

impl AlternativeGraph {
    /// Builds the AG from a route set. All paths must share the same
    /// endpoints.
    ///
    /// # Panics
    /// Panics if `paths` is empty or endpoints disagree.
    pub fn build(paths: &[Path]) -> AlternativeGraph {
        assert!(!paths.is_empty(), "an AG needs at least one route");
        let source = paths[0].source();
        let target = paths[0].target();
        let mut edges = BTreeSet::new();
        let mut adjacency: BTreeMap<NodeId, Vec<EdgeId>> = BTreeMap::new();
        for p in paths {
            assert_eq!(p.source(), source, "AG paths must share a source");
            assert_eq!(p.target(), target, "AG paths must share a target");
            for (i, &e) in p.edges.iter().enumerate() {
                if edges.insert(e) {
                    adjacency.entry(p.nodes[i]).or_default().push(e);
                }
            }
        }
        AlternativeGraph {
            source,
            target,
            edges,
            adjacency,
        }
    }

    /// `totalDistance`: AG road volume over the optimal distance.
    pub fn total_distance(&self, weights: &[Weight], optimal: Cost) -> f64 {
        if optimal == 0 {
            return 0.0;
        }
        let sum: Cost = self.edges.iter().map(|e| weights[e.index()] as Cost).sum();
        sum as f64 / optimal as f64
    }

    /// `decisionEdges`: Σ over AG nodes of `outdeg − 1`.
    pub fn decision_edges(&self) -> usize {
        self.adjacency
            .values()
            .map(|out| out.len().saturating_sub(1))
            .sum()
    }

    /// `averageDistance`: expected s–t cost of a random walk through the
    /// AG that picks uniformly among outgoing AG edges at every decision
    /// node, normalized by the optimal distance. Because every AG edge
    /// belongs to some s–t route and routes are loop-free, the walk is
    /// evaluated by dynamic programming over the AG's DAG structure; if
    /// the union happens to contain a cycle (two routes crossing in
    /// opposite directions), edges closing the cycle are skipped.
    pub fn average_distance(&self, net: &RoadNetwork, weights: &[Weight], optimal: Cost) -> f64 {
        if optimal == 0 {
            return 1.0;
        }
        // Memoized expected cost-to-target per node; detect cycles with an
        // on-stack marker.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            OnStack,
            Done(f64),
        }
        let mut state: BTreeMap<NodeId, State> = BTreeMap::new();

        fn expected(
            v: NodeId,
            target: NodeId,
            net: &RoadNetwork,
            weights: &[Weight],
            adjacency: &BTreeMap<NodeId, Vec<EdgeId>>,
            state: &mut BTreeMap<NodeId, State>,
        ) -> Option<f64> {
            if v == target {
                return Some(0.0);
            }
            match state.get(&v) {
                Some(State::Done(x)) => return Some(*x),
                Some(State::OnStack) => return None, // cycle edge: skip
                _ => {}
            }
            state.insert(v, State::OnStack);
            let mut total = 0.0;
            let mut used = 0usize;
            if let Some(out) = adjacency.get(&v) {
                for &e in out {
                    let head = net.head(e);
                    if let Some(rest) = expected(head, target, net, weights, adjacency, state) {
                        total += weights[e.index()] as f64 + rest;
                        used += 1;
                    }
                }
            }
            let value = if used == 0 {
                // Dead end inside the AG (cannot happen for well-formed
                // route unions, but stay total): treat as unusable.
                f64::INFINITY
            } else {
                total / used as f64
            };
            state.insert(v, State::Done(value));
            Some(value)
        }

        let e = expected(
            self.source,
            self.target,
            net,
            weights,
            &self.adjacency,
            &mut state,
        )
        .unwrap_or(f64::INFINITY);
        if e.is_finite() {
            e / optimal as f64
        } else {
            f64::INFINITY
        }
    }
}

/// The three \[4\] metrics of a route set in one struct.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AltGraphMetrics {
    /// `totalDistance` (≥ 1; higher = more alternative road offered).
    pub total_distance: f64,
    /// `averageDistance` (≥ 1; lower = routes closer to optimal).
    pub average_distance: f64,
    /// `decisionEdges` (lower = cognitively simpler).
    pub decision_edges: usize,
}

/// Computes the \[4\] metrics for a route set.
pub fn alt_graph_metrics(
    net: &RoadNetwork,
    weights: &[Weight],
    paths: &[Path],
    optimal: Cost,
) -> AltGraphMetrics {
    let ag = AlternativeGraph::build(paths);
    AltGraphMetrics {
        total_distance: ag.total_distance(weights, optimal),
        average_distance: ag.average_distance(net, weights, optimal),
        decision_edges: ag.decision_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::shortest_path;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    /// Two fully disjoint corridors of equal cost.
    fn two_corridors() -> (RoadNetwork, Path, Path) {
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.00, 0.0));
        let a1 = b.add_node(Point::new(0.01, 0.001));
        let b1 = b.add_node(Point::new(0.01, -0.001));
        let t = b.add_node(Point::new(0.02, 0.0));
        for (x, y) in [(s, a1), (a1, t), (s, b1), (b1, t)] {
            b.add_edge(
                x,
                y,
                EdgeSpec::category(RoadCategory::Primary).with_weight(10_000),
            );
        }
        let net = b.build();
        let top = Path::from_edges(
            &net,
            net.weights(),
            vec![net.find_edge(s, a1).unwrap(), net.find_edge(a1, t).unwrap()],
        );
        let bottom = Path::from_edges(
            &net,
            net.weights(),
            vec![net.find_edge(s, b1).unwrap(), net.find_edge(b1, t).unwrap()],
        );
        (net, top, bottom)
    }

    #[test]
    fn single_optimal_route_is_the_identity_ag() {
        let (net, top, _) = two_corridors();
        let m = alt_graph_metrics(&net, net.weights(), std::slice::from_ref(&top), top.cost_ms);
        assert!((m.total_distance - 1.0).abs() < 1e-9);
        assert!((m.average_distance - 1.0).abs() < 1e-9);
        assert_eq!(m.decision_edges, 0);
    }

    #[test]
    fn two_disjoint_equal_routes() {
        let (net, top, bottom) = two_corridors();
        let opt = top.cost_ms;
        let m = alt_graph_metrics(&net, net.weights(), &[top, bottom], opt);
        // Twice the road volume, same average, one decision point (at s).
        assert!((m.total_distance - 2.0).abs() < 1e-9);
        assert!((m.average_distance - 1.0).abs() < 1e-9);
        assert_eq!(m.decision_edges, 1);
    }

    #[test]
    fn longer_alternative_raises_average_distance() {
        // Corridor B is 50% slower.
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.00, 0.0));
        let a1 = b.add_node(Point::new(0.01, 0.001));
        let b1 = b.add_node(Point::new(0.01, -0.001));
        let t = b.add_node(Point::new(0.02, 0.0));
        b.add_edge(s, a1, EdgeSpec::default().with_weight(10_000));
        b.add_edge(a1, t, EdgeSpec::default().with_weight(10_000));
        b.add_edge(s, b1, EdgeSpec::default().with_weight(15_000));
        b.add_edge(b1, t, EdgeSpec::default().with_weight(15_000));
        let net = b.build();
        let top = shortest_path(&net, net.weights(), s, t).unwrap();
        let bottom = Path::from_edges(
            &net,
            net.weights(),
            vec![net.find_edge(s, b1).unwrap(), net.find_edge(b1, t).unwrap()],
        );
        let m = alt_graph_metrics(&net, net.weights(), &[top.clone(), bottom], top.cost_ms);
        // Expected cost = (20k + 30k)/2 = 25k over 20k optimal.
        assert!((m.average_distance - 1.25).abs() < 1e-9, "{m:?}");
        assert!((m.total_distance - 2.5).abs() < 1e-9);
    }

    #[test]
    fn shared_prefix_counts_once() {
        // Routes share the first edge then split: totalDistance must not
        // double-count the shared edge.
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.00, 0.0));
        let m0 = b.add_node(Point::new(0.01, 0.0));
        let a1 = b.add_node(Point::new(0.02, 0.001));
        let b1 = b.add_node(Point::new(0.02, -0.001));
        let t = b.add_node(Point::new(0.03, 0.0));
        b.add_edge(s, m0, EdgeSpec::default().with_weight(10_000));
        b.add_edge(m0, a1, EdgeSpec::default().with_weight(10_000));
        b.add_edge(a1, t, EdgeSpec::default().with_weight(10_000));
        b.add_edge(m0, b1, EdgeSpec::default().with_weight(10_000));
        b.add_edge(b1, t, EdgeSpec::default().with_weight(10_000));
        let net = b.build();
        let p1 = Path::from_edges(
            &net,
            net.weights(),
            vec![
                net.find_edge(s, m0).unwrap(),
                net.find_edge(m0, a1).unwrap(),
                net.find_edge(a1, t).unwrap(),
            ],
        );
        let p2 = Path::from_edges(
            &net,
            net.weights(),
            vec![
                net.find_edge(s, m0).unwrap(),
                net.find_edge(m0, b1).unwrap(),
                net.find_edge(b1, t).unwrap(),
            ],
        );
        let m = alt_graph_metrics(&net, net.weights(), &[p1.clone(), p2], p1.cost_ms);
        // 5 distinct edges × 10k over 30k optimal.
        assert!((m.total_distance - 5.0 / 3.0).abs() < 1e-9);
        // Decision point at m0 only.
        assert_eq!(m.decision_edges, 1);
    }

    #[test]
    #[should_panic(expected = "share a source")]
    fn mismatched_endpoints_panic() {
        let (net, top, _) = two_corridors();
        let rogue = Path::from_edges(
            &net,
            net.weights(),
            vec![net.find_edge(NodeId(1), NodeId(3)).unwrap()],
        );
        let _ = AlternativeGraph::build(&[top, rogue]);
    }
}
