//! Dijkstra searches and shortest-path trees.
//!
//! All searches are generic over a **weight overlay** (`&[Weight]` indexed
//! by `EdgeId`): the Penalty technique and the Google-like provider run the
//! same machinery over modified copies of the weight column.
//!
//! [`SearchSpace`] is a reusable workspace with generation-stamped labels,
//! so repeated queries (the alternative-route algorithms run many) pay no
//! per-query clearing cost.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight, WeightView, CLOSED, INFINITY};

use crate::budget::{SearchBudget, CHECK_INTERVAL};
use crate::error::CoreError;
use crate::metrics::{SearchMetrics, SearchStats};
use crate::path::Path;

/// Search direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Relax out-edges: distances are `d(root → v)`.
    Forward,
    /// Relax in-edges: distances are `d(v → root)`.
    Backward,
}

/// A complete shortest-path tree rooted at `root`.
///
/// For a forward tree, `parent[v]` is the last edge of a shortest path
/// `root → v` (its head is `v`). For a backward tree, `parent[v]` is the
/// first edge of a shortest path `v → root` (its tail is `v`).
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    /// Tree root.
    pub root: NodeId,
    /// Search direction the tree was grown in.
    pub direction: Direction,
    /// Distance label per vertex ([`INFINITY`] = unreachable).
    pub dist: Vec<Cost>,
    /// Parent edge per vertex ([`EdgeId::INVALID`] at the root/unreached).
    pub parent: Vec<EdgeId>,
}

impl ShortestPathTree {
    /// Distance of `v` from/to the root.
    pub fn distance(&self, v: NodeId) -> Cost {
        self.dist[v.index()]
    }

    /// True if `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()] != INFINITY
    }

    /// Edge sequence of the tree path between `root` and `v`.
    ///
    /// Forward tree: edges of `root → v`, in travel order.
    /// Backward tree: edges of `v → root`, in travel order.
    /// Returns `None` if `v` is unreached. For `v == root` returns an empty
    /// edge list.
    pub fn path_edges(&self, net: &RoadNetwork, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.reached(v) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while cur != self.root {
            let e = self.parent[cur.index()];
            debug_assert!(!e.is_invalid());
            edges.push(e);
            cur = match self.direction {
                Direction::Forward => net.tail(e),
                Direction::Backward => net.head(e),
            };
        }
        if self.direction == Direction::Forward {
            edges.reverse();
        }
        Some(edges)
    }
}

/// The **canonical** parent edge of `v` given final distance labels:
/// among all tight edges (forward: in-edges `e` with
/// `dist[tail(e)] + w(e) == dist[v]`; backward: out-edges with
/// `dist[head(e)] + w(e) == dist[v]`), the one with the smallest
/// [`EdgeId`]. Closed and unreached-endpoint edges never qualify.
///
/// Dijkstra's stored parents depend on heap pop order, so two engines
/// producing the same (exact) distance labels can disagree on parents
/// wherever shortest paths tie. Every tree handed to a technique is
/// therefore re-parented with this rule — it is a pure function of the
/// distance labels, so the plain Dijkstra build and the CH/PHAST fast
/// path (`cch`) reconstruct byte-identical trees and base routes.
///
/// Sound for early-terminated searches too: a tight predecessor has a
/// strictly smaller final distance (weights are clamped ≥ 1 ms), hence
/// was settled — and carries its final label — before the target popped.
pub(crate) fn canonical_parent_edge<F: Fn(u32) -> Cost>(
    net: &RoadNetwork,
    weights: &[Weight],
    v: u32,
    dv: Cost,
    direction: Direction,
    dist: F,
) -> EdgeId {
    let mut best = EdgeId::INVALID;
    match direction {
        Direction::Forward => {
            for e in net.in_edges(NodeId(v)) {
                let w = weights[e.index()];
                if w == CLOSED || e >= best {
                    continue;
                }
                let du = dist(net.tail(e).0);
                if du != INFINITY && du + w as Cost == dv {
                    best = e;
                }
            }
        }
        Direction::Backward => {
            for e in net.out_edges(NodeId(v)) {
                let w = weights[e.index()];
                if w == CLOSED || e >= best {
                    continue;
                }
                let du = dist(net.head(e).0);
                if du != INFINITY && du + w as Cost == dv {
                    best = e;
                }
            }
        }
    }
    best
}

/// Builds a [`ShortestPathTree`] from a finished, exact distance array by
/// recomputing every parent with [`canonical_parent_edge`]. Shared by the
/// Dijkstra tree build and the CH/PHAST one-to-all fast path, which makes
/// "same distances in → same tree out" hold by construction.
pub(crate) fn canonical_tree_from_dists(
    net: &RoadNetwork,
    weights: &[Weight],
    root: NodeId,
    direction: Direction,
    dist: Vec<Cost>,
) -> ShortestPathTree {
    let mut parent = vec![EdgeId::INVALID; net.num_nodes()];
    for v in 0..net.num_nodes() {
        if v == root.index() || dist[v] == INFINITY {
            continue;
        }
        parent[v] = canonical_parent_edge(net, weights, v as u32, dist[v], direction, |u| {
            dist[u as usize]
        });
        debug_assert!(!parent[v].is_invalid(), "reached node without a tight edge");
    }
    ShortestPathTree {
        root,
        direction,
        dist,
        parent,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry(Cost, u32);

/// Reusable Dijkstra workspace.
///
/// Label arrays are generation-stamped: starting a new query bumps the
/// generation instead of clearing, so a query on a large network touches
/// only the vertices it actually settles.
pub struct SearchSpace {
    dist: Vec<Cost>,
    parent: Vec<EdgeId>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    stats: SearchStats,
    metrics: SearchMetrics,
    budget: SearchBudget,
}

impl SearchSpace {
    /// A workspace sized for `net`.
    pub fn new(net: &RoadNetwork) -> SearchSpace {
        SearchSpace {
            dist: vec![INFINITY; net.num_nodes()],
            parent: vec![EdgeId::INVALID; net.num_nodes()],
            stamp: vec![0; net.num_nodes()],
            generation: 0,
            heap: BinaryHeap::new(),
            stats: SearchStats::default(),
            metrics: SearchMetrics::default(),
            budget: SearchBudget::unlimited(),
        }
    }

    /// Attaches pre-resolved counters; every subsequent query flushes its
    /// [`SearchStats`] into them. The default (detached) bundle is free.
    pub fn set_metrics(&mut self, metrics: SearchMetrics) {
        self.metrics = metrics;
    }

    /// Attaches a cooperative [`SearchBudget`]; every subsequent query
    /// polls it each [`CHECK_INTERVAL`] heap pops and returns
    /// [`CoreError::Interrupted`] once it trips. The default
    /// ([`SearchBudget::unlimited`]) never trips and costs nothing.
    pub fn set_budget(&mut self, budget: SearchBudget) {
        self.budget = budget;
    }

    /// The workspace's current budget (shared; cancelling it from another
    /// clone interrupts searches running here).
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Work counters of the most recently completed query.
    pub fn last_stats(&self) -> SearchStats {
        self.stats
    }

    /// Polls the budget, charging `pops` heap pops. On a trip the current
    /// stats are flushed and the query aborts with
    /// [`CoreError::Interrupted`]. Free for unlimited budgets.
    #[inline]
    fn poll_budget(&mut self, pops: u64) -> Result<(), CoreError> {
        if self.budget.is_limited() {
            self.stats.budget_checks += 1;
            if self.budget.charge(pops) {
                self.metrics.record(&self.stats);
                return Err(CoreError::Interrupted);
            }
        }
        Ok(())
    }

    fn begin(&mut self, net: &RoadNetwork) {
        self.stats = SearchStats::default();
        if self.dist.len() != net.num_nodes() {
            self.dist = vec![INFINITY; net.num_nodes()];
            self.parent = vec![EdgeId::INVALID; net.num_nodes()];
            self.stamp = vec![0; net.num_nodes()];
            self.generation = 0;
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: reset everything once every 2^32 queries.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn get_dist(&self, v: u32) -> Cost {
        if self.stamp[v as usize] == self.generation {
            self.dist[v as usize]
        } else {
            INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: u32, d: Cost, p: EdgeId) {
        self.stamp[v as usize] = self.generation;
        self.dist[v as usize] = d;
        self.parent[v as usize] = p;
    }

    fn check_endpoints(net: &RoadNetwork, source: NodeId, target: NodeId) -> Result<(), CoreError> {
        if source.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(source));
        }
        if target.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(target));
        }
        if source == target {
            return Err(CoreError::SameSourceTarget(source));
        }
        Ok(())
    }

    fn check_weights(net: &RoadNetwork, weights: &[Weight]) -> Result<(), CoreError> {
        if weights.len() != net.num_edges() {
            return Err(CoreError::WeightLengthMismatch {
                expected: net.num_edges(),
                got: weights.len(),
            });
        }
        Ok(())
    }

    /// One-to-one shortest path with early termination at `target`.
    pub fn shortest_path(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        Self::check_endpoints(net, source, target)?;
        Self::check_weights(net, weights)?;
        self.begin(net);
        self.poll_budget(0)?;
        self.set(source.0, 0, EdgeId::INVALID);
        self.heap.push(Reverse(HeapEntry(0, source.0)));

        let mut pops_since_check: u64 = 0;
        while let Some(Reverse(HeapEntry(d, v))) = self.heap.pop() {
            self.stats.heap_pops += 1;
            pops_since_check += 1;
            if pops_since_check == CHECK_INTERVAL {
                pops_since_check = 0;
                self.poll_budget(CHECK_INTERVAL)?;
            }
            if d > self.get_dist(v) {
                continue; // stale entry
            }
            self.stats.settled += 1;
            if v == target.0 {
                break;
            }
            for e in net.out_edges(NodeId(v)) {
                self.stats.relaxed += 1;
                let w = weights[e.index()];
                if w == CLOSED {
                    continue; // incident closure: the edge is not traversable
                }
                let head = net.head(e).0;
                let nd = d + w as Cost;
                if nd < self.get_dist(head) {
                    self.set(head, nd, e);
                    self.heap.push(Reverse(HeapEntry(nd, head)));
                }
            }
        }
        self.budget.charge(pops_since_check); // account the partial interval
        self.metrics.record(&self.stats);

        if self.get_dist(target.0) == INFINITY {
            return Err(CoreError::Unreachable { source, target });
        }
        // Reconstruct along canonical parents (smallest tight in-edge per
        // vertex) so the result is a pure function of the distance labels
        // — identical to what the substrate's canonical forward tree
        // yields, regardless of heap pop order.
        let mut edges = Vec::new();
        let mut cur = target.0;
        while cur != source.0 {
            let dv = self.get_dist(cur);
            let e = canonical_parent_edge(net, weights, cur, dv, Direction::Forward, |u| {
                self.get_dist(u)
            });
            debug_assert!(!e.is_invalid());
            edges.push(e);
            cur = net.tail(e).0;
        }
        edges.reverse();
        Ok(Path::from_edges(net, weights, edges))
    }

    /// Distance of the shortest path without materializing it.
    pub fn shortest_distance(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Cost, CoreError> {
        self.shortest_path(net, weights, source, target)
            .map(|p| p.cost_ms)
    }

    /// Grows a complete shortest-path tree from `root`.
    pub fn shortest_path_tree(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        root: NodeId,
        direction: Direction,
    ) -> Result<ShortestPathTree, CoreError> {
        if root.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(root));
        }
        Self::check_weights(net, weights)?;
        self.begin(net);
        self.poll_budget(0)?;
        self.set(root.0, 0, EdgeId::INVALID);
        self.heap.push(Reverse(HeapEntry(0, root.0)));

        let mut pops_since_check: u64 = 0;
        while let Some(Reverse(HeapEntry(d, v))) = self.heap.pop() {
            self.stats.heap_pops += 1;
            pops_since_check += 1;
            if pops_since_check == CHECK_INTERVAL {
                pops_since_check = 0;
                self.poll_budget(CHECK_INTERVAL)?;
            }
            if d > self.get_dist(v) {
                continue;
            }
            self.stats.settled += 1;
            match direction {
                Direction::Forward => {
                    for e in net.out_edges(NodeId(v)) {
                        self.stats.relaxed += 1;
                        let w = weights[e.index()];
                        if w == CLOSED {
                            continue;
                        }
                        let nd = d + w as Cost;
                        let head = net.head(e).0;
                        if nd < self.get_dist(head) {
                            self.set(head, nd, e);
                            self.heap.push(Reverse(HeapEntry(nd, head)));
                        }
                    }
                }
                Direction::Backward => {
                    for e in net.in_edges(NodeId(v)) {
                        self.stats.relaxed += 1;
                        let w = weights[e.index()];
                        if w == CLOSED {
                            continue;
                        }
                        let nd = d + w as Cost;
                        let tail = net.tail(e).0;
                        if nd < self.get_dist(tail) {
                            self.set(tail, nd, e);
                            self.heap.push(Reverse(HeapEntry(nd, tail)));
                        }
                    }
                }
            }
        }
        self.budget.charge(pops_since_check); // account the partial interval
        self.metrics.record(&self.stats);

        // Materialize dense arrays for the tree, re-parenting every
        // vertex canonically (smallest tight edge) so the tree depends
        // only on the distance labels, not on heap pop order. The CH
        // fast path produces the same labels and hence the same tree.
        let n = net.num_nodes();
        let mut dist = vec![INFINITY; n];
        for (v, d) in dist.iter_mut().enumerate() {
            if self.stamp[v] == self.generation {
                *d = self.dist[v];
            }
        }
        Ok(canonical_tree_from_dists(
            net, weights, root, direction, dist,
        ))
    }

    /// A* one-to-one search using the great-circle / max-speed lower bound.
    ///
    /// Produces the same paths as [`SearchSpace::shortest_path`] but
    /// settles fewer vertices on spread-out networks.
    pub fn astar(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        Self::check_endpoints(net, source, target)?;
        Self::check_weights(net, weights)?;
        let vmax_m_per_ms = net.max_speed_kmh() as f64 / 3.6 / 1000.0;
        let tp = net.point(target);
        let h = |v: NodeId| -> Cost {
            let d_m = arp_roadnet::geo::haversine_m(net.point(v), tp);
            (d_m / vmax_m_per_ms) as Cost
        };

        self.begin(net);
        self.poll_budget(0)?;
        self.set(source.0, 0, EdgeId::INVALID);
        self.heap.push(Reverse(HeapEntry(h(source), source.0)));

        let mut pops_since_check: u64 = 0;
        while let Some(Reverse(HeapEntry(_, v))) = self.heap.pop() {
            self.stats.heap_pops += 1;
            pops_since_check += 1;
            if pops_since_check == CHECK_INTERVAL {
                pops_since_check = 0;
                self.poll_budget(CHECK_INTERVAL)?;
            }
            self.stats.settled += 1;
            if v == target.0 {
                break;
            }
            let d = self.get_dist(v);
            for e in net.out_edges(NodeId(v)) {
                self.stats.relaxed += 1;
                let w = weights[e.index()];
                if w == CLOSED {
                    continue;
                }
                let nd = d + w as Cost;
                let head = net.head(e).0;
                if nd < self.get_dist(head) {
                    self.set(head, nd, e);
                    self.heap
                        .push(Reverse(HeapEntry(nd + h(NodeId(head)), head)));
                }
            }
        }
        self.budget.charge(pops_since_check); // account the partial interval
        self.metrics.record(&self.stats);

        if self.get_dist(target.0) == INFINITY {
            return Err(CoreError::Unreachable { source, target });
        }
        let mut edges = Vec::new();
        let mut cur = target.0;
        while cur != source.0 {
            let e = self.parent[cur as usize];
            edges.push(e);
            cur = net.tail(e).0;
        }
        edges.reverse();
        Ok(Path::from_edges(net, weights, edges))
    }

    /// [`SearchSpace::shortest_path`] over any [`WeightView`] (e.g. a
    /// live-traffic epoch snapshot).
    pub fn shortest_path_view<V: WeightView + ?Sized>(
        &mut self,
        net: &RoadNetwork,
        view: &V,
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        self.shortest_path(net, view.column(), source, target)
    }

    /// [`SearchSpace::shortest_distance`] over any [`WeightView`].
    pub fn shortest_distance_view<V: WeightView + ?Sized>(
        &mut self,
        net: &RoadNetwork,
        view: &V,
        source: NodeId,
        target: NodeId,
    ) -> Result<Cost, CoreError> {
        self.shortest_distance(net, view.column(), source, target)
    }

    /// [`SearchSpace::shortest_path_tree`] over any [`WeightView`].
    pub fn shortest_path_tree_view<V: WeightView + ?Sized>(
        &mut self,
        net: &RoadNetwork,
        view: &V,
        root: NodeId,
        direction: Direction,
    ) -> Result<ShortestPathTree, CoreError> {
        self.shortest_path_tree(net, view.column(), root, direction)
    }

    /// [`SearchSpace::astar`] over any [`WeightView`].
    pub fn astar_view<V: WeightView + ?Sized>(
        &mut self,
        net: &RoadNetwork,
        view: &V,
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        self.astar(net, view.column(), source, target)
    }
}

/// Convenience: one-shot shortest path with a fresh workspace.
pub fn shortest_path(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
) -> Result<Path, CoreError> {
    SearchSpace::new(net).shortest_path(net, weights, source, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    /// A 4×4 grid with uniform weights; diagonal corners are distance 6·w.
    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn shortest_path_on_grid() {
        let net = grid(4);
        let mut ws = SearchSpace::new(&net);
        let p = ws
            .shortest_path(&net, net.weights(), NodeId(0), NodeId(15))
            .unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(15));
        assert_eq!(p.len(), 6);
        assert!(p.validate(&net));
        assert!(p.is_simple());
    }

    #[test]
    fn same_endpoints_rejected() {
        let net = grid(3);
        let mut ws = SearchSpace::new(&net);
        assert_eq!(
            ws.shortest_path(&net, net.weights(), NodeId(1), NodeId(1)),
            Err(CoreError::SameSourceTarget(NodeId(1)))
        );
    }

    #[test]
    fn invalid_node_rejected() {
        let net = grid(3);
        let mut ws = SearchSpace::new(&net);
        assert!(matches!(
            ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(999)),
            Err(CoreError::InvalidNode(_))
        ));
    }

    #[test]
    fn wrong_overlay_length_rejected() {
        let net = grid(3);
        let mut ws = SearchSpace::new(&net);
        let short = vec![1u32; 3];
        assert!(matches!(
            ws.shortest_path(&net, &short, NodeId(0), NodeId(1)),
            Err(CoreError::WeightLengthMismatch { .. })
        ));
    }

    #[test]
    fn unreachable_detected() {
        // Two disconnected edges.
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        let d = b.add_node(Point::new(0.1, 0.0));
        let e = b.add_node(Point::new(0.11, 0.0));
        b.add_bidirectional(a, c, EdgeSpec::default());
        b.add_bidirectional(d, e, EdgeSpec::default());
        let net = b.build();
        let mut ws = SearchSpace::new(&net);
        assert!(matches!(
            ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(3)),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn workspace_reuse_is_consistent() {
        let net = grid(5);
        let mut ws = SearchSpace::new(&net);
        let d1 = ws
            .shortest_distance(&net, net.weights(), NodeId(0), NodeId(24))
            .unwrap();
        // Run unrelated queries in between.
        for t in 1..20 {
            let _ = ws.shortest_distance(&net, net.weights(), NodeId(0), NodeId(t));
        }
        let d2 = ws
            .shortest_distance(&net, net.weights(), NodeId(0), NodeId(24))
            .unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn overlay_changes_route() {
        let net = grid(3);
        let mut ws = SearchSpace::new(&net);
        let base = ws
            .shortest_path(&net, net.weights(), NodeId(0), NodeId(2))
            .unwrap();
        // Penalize the direct horizontal edges heavily.
        let mut overlay = net.weights().to_vec();
        for &e in &base.edges {
            overlay[e.index()] *= 100;
        }
        let alt = ws
            .shortest_path(&net, &overlay, NodeId(0), NodeId(2))
            .unwrap();
        assert_ne!(alt.edges, base.edges);
        // Cost on ORIGINAL weights is at least the shortest.
        assert!(alt.cost_under(net.weights()) >= base.cost_ms);
    }

    #[test]
    fn closed_edges_are_not_traversable() {
        // Path graph 0 -> 1 -> 2; close the only edge into 2.
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        let d = b.add_node(Point::new(0.02, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        b.add_edge(c, d, EdgeSpec::default());
        let net = b.build();
        let mut ws = SearchSpace::new(&net);
        ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(2))
            .unwrap();
        let mut overlay = net.weights().to_vec();
        overlay[1] = CLOSED;
        assert!(matches!(
            ws.shortest_path(&net, &overlay, NodeId(0), NodeId(2)),
            Err(CoreError::Unreachable { .. })
        ));
        assert!(matches!(
            ws.astar(&net, &overlay, NodeId(0), NodeId(2)),
            Err(CoreError::Unreachable { .. })
        ));
        let fwd = ws
            .shortest_path_tree(&net, &overlay, NodeId(0), Direction::Forward)
            .unwrap();
        assert!(!fwd.reached(NodeId(2)));
        let bwd = ws
            .shortest_path_tree(&net, &overlay, NodeId(2), Direction::Backward)
            .unwrap();
        assert!(!bwd.reached(NodeId(0)));
    }

    #[test]
    fn view_entry_points_match_slice_entry_points() {
        let net = grid(4);
        let mut ws = SearchSpace::new(&net);
        let by_slice = ws
            .shortest_path(&net, net.weights(), NodeId(0), NodeId(15))
            .unwrap();
        let column: Vec<Weight> = net.weights().to_vec();
        let by_view = ws
            .shortest_path_view(&net, &column, NodeId(0), NodeId(15))
            .unwrap();
        assert_eq!(by_slice.edges, by_view.edges);
        assert_eq!(
            ws.shortest_distance_view(&net, &column, NodeId(0), NodeId(15))
                .unwrap(),
            by_slice.cost_ms
        );
        let a = ws.astar_view(&net, &column, NodeId(0), NodeId(15)).unwrap();
        assert_eq!(a.cost_ms, by_slice.cost_ms);
        let tree = ws
            .shortest_path_tree_view(&net, &column, NodeId(0), Direction::Forward)
            .unwrap();
        assert_eq!(tree.distance(NodeId(15)), by_slice.cost_ms);
    }

    #[test]
    fn forward_tree_distances_match_queries() {
        let net = grid(5);
        let mut ws = SearchSpace::new(&net);
        let tree = ws
            .shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Forward)
            .unwrap();
        for t in 1..25u32 {
            let d = ws
                .shortest_distance(&net, net.weights(), NodeId(0), NodeId(t))
                .unwrap();
            assert_eq!(tree.distance(NodeId(t)), d, "node {t}");
        }
        assert_eq!(tree.distance(NodeId(0)), 0);
    }

    #[test]
    fn backward_tree_distances_match_queries() {
        let net = grid(5);
        let mut ws = SearchSpace::new(&net);
        let tree = ws
            .shortest_path_tree(&net, net.weights(), NodeId(24), Direction::Backward)
            .unwrap();
        for s in 0..24u32 {
            let d = ws
                .shortest_distance(&net, net.weights(), NodeId(s), NodeId(24))
                .unwrap();
            assert_eq!(tree.distance(NodeId(s)), d, "node {s}");
        }
    }

    #[test]
    fn tree_path_edges_reconstruct() {
        let net = grid(4);
        let mut ws = SearchSpace::new(&net);
        let fwd = ws
            .shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Forward)
            .unwrap();
        let edges = fwd.path_edges(&net, NodeId(15)).unwrap();
        let p = Path::from_edges(&net, net.weights(), edges);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(15));
        assert_eq!(p.cost_ms, fwd.distance(NodeId(15)));

        let bwd = ws
            .shortest_path_tree(&net, net.weights(), NodeId(15), Direction::Backward)
            .unwrap();
        let edges = bwd.path_edges(&net, NodeId(0)).unwrap();
        let p = Path::from_edges(&net, net.weights(), edges);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(15));
        assert_eq!(p.cost_ms, bwd.distance(NodeId(0)));
    }

    #[test]
    fn tree_root_path_is_empty() {
        let net = grid(3);
        let mut ws = SearchSpace::new(&net);
        let tree = ws
            .shortest_path_tree(&net, net.weights(), NodeId(4), Direction::Forward)
            .unwrap();
        assert_eq!(tree.path_edges(&net, NodeId(4)), Some(vec![]));
    }

    #[test]
    fn astar_matches_dijkstra() {
        let net = grid(6);
        let mut ws = SearchSpace::new(&net);
        for (s, t) in [(0u32, 35u32), (3, 30), (7, 28), (12, 23)] {
            let d = ws
                .shortest_path(&net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            let a = ws.astar(&net, net.weights(), NodeId(s), NodeId(t)).unwrap();
            assert_eq!(a.cost_ms, d.cost_ms, "{s}->{t}");
            assert!(a.validate(&net));
        }
    }

    #[test]
    fn one_shot_helper() {
        let net = grid(3);
        let p = shortest_path(&net, net.weights(), NodeId(0), NodeId(8)).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn stats_count_search_work() {
        let net = grid(4);
        let mut ws = SearchSpace::new(&net);
        ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(15))
            .unwrap();
        let s = ws.last_stats();
        assert!(s.settled > 0);
        assert!(s.settled <= s.heap_pops);
        // Every settled vertex except the source was reached via an edge.
        assert!(s.relaxed + 1 >= s.settled);
    }

    #[test]
    fn attached_metrics_accumulate_across_queries() {
        let net = grid(4);
        let reg = arp_obs::Registry::new();
        let mut ws = SearchSpace::new(&net);
        ws.set_metrics(crate::metrics::SearchMetrics::new(
            &reg,
            &[("algo", "dijkstra")],
        ));
        ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(15))
            .unwrap();
        ws.shortest_path(&net, net.weights(), NodeId(15), NodeId(0))
            .unwrap();
        let labels = &[("algo", "dijkstra")][..];
        assert_eq!(reg.counter_value("arp_search_queries_total", labels), 2);
        assert!(reg.counter_value("arp_search_settled_nodes_total", labels) > 0);
        assert!(reg.counter_value("arp_search_heap_pops_total", labels) > 0);
        assert!(reg.counter_value("arp_search_relaxed_edges_total", labels) > 0);
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let net = grid(5);
        let mut plain = SearchSpace::new(&net);
        let mut budgeted = SearchSpace::new(&net);
        budgeted.set_budget(SearchBudget::unlimited());
        let a = plain
            .shortest_path(&net, net.weights(), NodeId(0), NodeId(24))
            .unwrap();
        let b = budgeted
            .shortest_path(&net, net.weights(), NodeId(0), NodeId(24))
            .unwrap();
        assert_eq!(a.edges, b.edges, "uncancelled paths must be byte-identical");
        assert_eq!(budgeted.last_stats().budget_checks, 0);
    }

    #[test]
    fn pre_cancelled_budget_interrupts_before_any_work() {
        let net = grid(4);
        let mut ws = SearchSpace::new(&net);
        let budget = SearchBudget::new();
        budget.cancel();
        ws.set_budget(budget);
        assert_eq!(
            ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(15)),
            Err(CoreError::Interrupted)
        );
        assert_eq!(ws.last_stats().heap_pops, 0, "released with zero pops");
    }

    #[test]
    fn expansion_cap_interrupts_within_one_check_interval() {
        // 4096 nodes: a full tree search far exceeds two intervals.
        let net = grid(64);
        let mut ws = SearchSpace::new(&net);
        ws.set_budget(SearchBudget::new().with_expansion_cap(2 * CHECK_INTERVAL));
        let err = ws
            .shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Forward)
            .unwrap_err();
        assert_eq!(err, CoreError::Interrupted);
        let s = ws.last_stats();
        assert!(
            s.heap_pops <= 2 * CHECK_INTERVAL,
            "must stop within one interval of the cap, popped {}",
            s.heap_pops
        );
        assert!(s.budget_checks >= 2);
    }

    #[test]
    fn manual_clock_deadline_interrupts_the_next_poll() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let net = grid(8);
        let clock = Arc::new(AtomicU64::new(0));
        let mut ws = SearchSpace::new(&net);
        ws.set_budget(SearchBudget::new().with_manual_deadline(Arc::clone(&clock), 10));
        // Clock before the deadline: the search completes normally.
        ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(63))
            .unwrap();
        // Advance the injected clock past the deadline: the very next
        // poll interrupts, releasing the worker with zero pops.
        clock.store(10, Ordering::Relaxed);
        assert_eq!(
            ws.shortest_path(&net, net.weights(), NodeId(0), NodeId(63)),
            Err(CoreError::Interrupted)
        );
        assert_eq!(ws.last_stats().heap_pops, 0);
    }

    #[test]
    fn cancellation_from_another_thread_is_observed() {
        let net = grid(16);
        let budget = SearchBudget::new();
        let shared = budget.clone();
        let worker = std::thread::spawn(move || {
            let mut ws = SearchSpace::new(&net);
            ws.set_budget(shared);
            // Keep searching until the owner cancels (bounded retries so a
            // regression fails instead of hanging).
            for _ in 0..1_000_000 {
                match ws.shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Forward) {
                    Ok(_) => continue,
                    Err(CoreError::Interrupted) => return true,
                    Err(_) => return false,
                }
            }
            false
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        budget.cancel();
        assert!(worker.join().unwrap(), "worker observed the cancellation");
    }
}
