//! Alternative-route query parameters and results.

use arp_roadnet::weight::Cost;

use crate::path::Path;

/// Parameters of an alternative-routes query.
///
/// Defaults are the paper's §3 settings: `k = 3` routes, penalty factor
/// **1.4**, stretch upper bound ε = **1.4** (no alternative slower than
/// 1.4× the fastest), dissimilarity threshold θ = **0.5**.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AltQuery {
    /// Number of routes to report (including the fastest).
    pub k: usize,
    /// Stretch upper bound: alternatives must cost ≤ `epsilon ×` optimum.
    pub epsilon: f64,
    /// Dissimilarity threshold θ for the Dissimilarity technique.
    pub theta: f64,
    /// Penalty factor for the Penalty technique.
    pub penalty_factor: f64,
    /// Iteration budget multiplier: iterative techniques may run up to
    /// `max_iteration_factor × k` rounds looking for admissible paths.
    pub max_iteration_factor: usize,
}

impl Default for AltQuery {
    fn default() -> Self {
        AltQuery {
            k: 3,
            epsilon: 1.4,
            theta: 0.5,
            penalty_factor: 1.4,
            max_iteration_factor: 4,
        }
    }
}

impl AltQuery {
    /// The paper's parameters (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the number of routes.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the stretch bound ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the dissimilarity threshold θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the penalty factor.
    pub fn with_penalty_factor(mut self, f: f64) -> Self {
        self.penalty_factor = f;
        self
    }

    /// Maximum admissible cost given the optimum `best`.
    pub fn cost_bound(&self, best: Cost) -> Cost {
        (best as f64 * self.epsilon).floor() as Cost
    }

    /// Total iteration budget for iterative techniques.
    pub fn iteration_budget(&self) -> usize {
        self.k * self.max_iteration_factor.max(1)
    }
}

/// A route returned by a provider: the path plus its cost on the *public*
/// (OpenStreetMap) weights — the paper's query processor always displays
/// travel times computed from OSM data regardless of which data the
/// provider itself optimized on (§3).
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// The underlying path.
    pub path: Path,
    /// Travel time on the public weights, in milliseconds.
    pub public_cost_ms: Cost,
}

impl Route {
    /// Wraps a path, pricing it under the public weights.
    pub fn new(path: Path, public_weights: &[arp_roadnet::weight::Weight]) -> Route {
        let public_cost_ms = path.cost_under(public_weights);
        Route {
            path,
            public_cost_ms,
        }
    }

    /// Travel time in whole display minutes (what the demo UI shows).
    pub fn display_minutes(&self) -> u64 {
        arp_roadnet::weight::ms_to_display_minutes(self.public_cost_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let q = AltQuery::paper();
        assert_eq!(q.k, 3);
        assert_eq!(q.epsilon, 1.4);
        assert_eq!(q.theta, 0.5);
        assert_eq!(q.penalty_factor, 1.4);
    }

    #[test]
    fn builder_methods() {
        let q = AltQuery::default()
            .with_k(5)
            .with_epsilon(1.2)
            .with_theta(0.7)
            .with_penalty_factor(1.1);
        assert_eq!(q.k, 5);
        assert_eq!(q.epsilon, 1.2);
        assert_eq!(q.theta, 0.7);
        assert_eq!(q.penalty_factor, 1.1);
    }

    #[test]
    fn cost_bound_scales() {
        let q = AltQuery::default();
        assert_eq!(q.cost_bound(1000), 1400);
        assert_eq!(q.cost_bound(0), 0);
    }

    #[test]
    fn iteration_budget_positive() {
        assert!(AltQuery::default().iteration_budget() >= 3);
        let q = AltQuery {
            max_iteration_factor: 0,
            ..Default::default()
        };
        assert_eq!(q.iteration_budget(), q.k);
    }
}
