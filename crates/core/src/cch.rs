//! Customizable contraction hierarchies (CCH) — the epoch-customizable
//! index tier behind the serving substrate.
//!
//! [`ch`](crate::ch) builds a classic weight-dependent CH: witness
//! searches prune shortcuts against the *base* weights, so a live-traffic
//! tick invalidates the whole index (a witness path can be slowed or
//! closed arbitrarily, and the pruned shortcut has no replacement). This
//! module splits the index the CRP/CCH way instead:
//!
//! * [`ChTopology`] — the **metric-independent** half, built once per
//!   city at startup: a contraction order over the graph *structure*
//!   (witness searches are demoted to an ordering heuristic; no shortcut
//!   is ever pruned by one) plus the full elimination fill-in, stored as
//!   undirected *arcs* `{lo, hi}` with `rank[lo] < rank[hi]`, the
//!   upward-arc CSR the queries walk, and the precomputed **lower
//!   triangle** list the customization relaxes.
//! * [`ChMetric`] — the cheap per-epoch half: two weights per arc
//!   (`up` = lo→hi, `down` = hi→lo) computed by
//!   [`ChTopology::customize`] in one linear pass over the original
//!   edges (a `CLOSED` edge simply contributes nothing) followed by one
//!   pass over the triangles in middle-rank order. No heap, no witness
//!   searches — re-customizing after a traffic tick costs milliseconds
//!   where a [`ContractionHierarchy`](crate::ContractionHierarchy)
//!   rebuild costs seconds.
//!
//! Because every fill-in arc is kept, basic customization is exact for
//! **any** non-negative metric: overlay factors ≥ 1.0, category slowdowns,
//! and `CLOSED` edges (mapped to [`INFINITY`], which saturates through
//! the triangle relaxations) all yield exact shortest-path distances,
//! verified against Dijkstra in the tests.
//!
//! Queries come in two shapes:
//!
//! * [`ChTopology::shortest_path`] / [`ChTopology::distance`] — the
//!   classic bidirectional upward search with recursive triangle
//!   unpacking back to original edges.
//! * [`ChTopology::phast_distances`] — one-to-all: an upward search from
//!   the root followed by a single linear sweep over the arcs in
//!   descending upper-endpoint rank (PHAST). The serving substrate uses
//!   two of these to rebuild the exact forward/backward distance arrays
//!   the techniques consume, settling only the upward cones instead of
//!   the whole graph.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight, WeightView, CLOSED, INFINITY};

use crate::budget::{SearchBudget, CHECK_INTERVAL};
use crate::ch::ChConfig;
use crate::error::CoreError;
use crate::metrics::SearchStats;
use crate::path::Path;
use crate::search::Direction;

/// Sentinel for "no arc" / "no triangle": the arc weight comes straight
/// from an original edge.
const NONE: u32 = u32::MAX;

/// The metric-independent half of a customizable CH: contraction order,
/// fill-in arc set, upward-arc CSR and the lower-triangle list.
///
/// Built once per network by [`ChTopology::build`]; any number of
/// [`ChMetric`]s (one per traffic epoch) can be customized against it
/// concurrently — the topology is never mutated after construction.
pub struct ChTopology {
    num_nodes: usize,
    num_edges: usize,
    /// Contraction rank per node; higher = contracted later.
    rank: Vec<u32>,
    /// Arc endpoints, `rank[arc_lo[a]] < rank[arc_hi[a]]`, sorted by
    /// upper-endpoint rank **descending** so the PHAST sweep is a plain
    /// forward iteration.
    arc_lo: Vec<u32>,
    arc_hi: Vec<u32>,
    /// CSR over arcs keyed by their lower endpoint (the upward
    /// adjacency both query searches walk).
    up_first: Vec<u32>,
    up_arcs: Vec<u32>,
    /// Lower triangles, sorted by middle rank ascending: relaxing them
    /// in order makes one pass sufficient ([`ChTopology::customize`]).
    /// `tri_lo_arc[t] = {mid, lo}` and `tri_hi_arc[t] = {mid, hi}` are
    /// the two side arcs of `tri_arc[t] = {lo, hi}`.
    tri_arc: Vec<u32>,
    tri_lo_arc: Vec<u32>,
    tri_hi_arc: Vec<u32>,
    /// Per original edge: the arc it maps onto (`NONE` for self-loops)
    /// and whether it runs lo→hi (`up`) or hi→lo (`down`).
    edge_arc: Vec<u32>,
    edge_is_up: Vec<bool>,
}

/// One customized metric: per-arc `up`/`down` costs for a single weight
/// column (traffic epoch), plus the unpacking data (`via_*` = the
/// triangle whose lower path won, or the best original edge).
///
/// Stamped with the epoch of the column it was customized from; the
/// serving tier's `IndexManager` only hands a metric to a request pinned
/// to the **same** epoch, so a stale metric can never leak into a newer
/// response.
pub struct ChMetric {
    epoch: u64,
    up: Vec<Cost>,
    down: Vec<Cost>,
    via_up: Vec<u32>,
    via_down: Vec<u32>,
    best_up: Vec<EdgeId>,
    best_down: Vec<EdgeId>,
}

impl ChMetric {
    /// Stamps the metric with the traffic epoch of the weight column it
    /// was customized from (0 = base weights).
    pub fn with_epoch(mut self, epoch: u64) -> ChMetric {
        self.epoch = epoch;
        self
    }

    /// The traffic epoch this metric was customized for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl ChTopology {
    /// Builds the topology with default parameters.
    pub fn build(net: &RoadNetwork) -> ChTopology {
        Self::build_with(net, &ChConfig::default())
    }

    /// Builds the topology with explicit parameters. Only the ordering
    /// terms of [`ChConfig`] matter here: witness searches never prune a
    /// shortcut (that would bake the build-time metric into the
    /// topology), so `witness_settle_limit` is unused.
    pub fn build_with(net: &RoadNetwork, config: &ChConfig) -> ChTopology {
        let n = net.num_nodes();
        // Undirected elimination graph (self-loops never matter).
        let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n];
        for e in net.edges() {
            let (t, h) = (net.tail(e).0, net.head(e).0);
            if t != h {
                adj[t as usize].insert(h);
                adj[h as usize].insert(t);
            }
        }

        let mut contracted = vec![false; n];
        let mut deleted = vec![0u32; n];
        let mut rank = vec![0u32; n];
        // Neighbors of each node at its contraction time (all
        // higher-ranked): exactly the arcs with that node as `lo`.
        let mut contract_nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut order: Vec<u32> = Vec::with_capacity(n);

        // Same shape as ch.rs: edge difference (fill-in minus degree)
        // plus the deleted-neighbours term, lazily re-evaluated. The
        // fill-in count plays the witness search's old role — it only
        // steers the order, never the shortcut set.
        let priority =
            |adj: &[HashSet<u32>], contracted: &[bool], deleted: &[u32], v: u32| -> i64 {
                let nbrs: Vec<u32> = adj[v as usize]
                    .iter()
                    .copied()
                    .filter(|&u| !contracted[u as usize])
                    .collect();
                let degree = nbrs.len() as i64;
                let mut fill = 0i64;
                for (i, &a) in nbrs.iter().enumerate() {
                    for &b in nbrs.iter().skip(i + 1) {
                        if !adj[a as usize].contains(&b) {
                            fill += 1;
                        }
                    }
                }
                (fill - degree) * 4
                    + (deleted[v as usize] as f64 * config.deleted_neighbours_weight) as i64
            };

        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
        for v in 0..n as u32 {
            heap.push(Reverse((priority(&adj, &contracted, &deleted, v), v)));
        }
        let mut next_rank = 0u32;
        while let Some(Reverse((p, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            let current = priority(&adj, &contracted, &deleted, v);
            if current > p {
                heap.push(Reverse((current, v)));
                continue;
            }
            let mut nbrs: Vec<u32> = adj[v as usize]
                .iter()
                .copied()
                .filter(|&u| !contracted[u as usize])
                .collect();
            nbrs.sort_unstable();
            // Chordal fill-in: every neighbor pair becomes adjacent.
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in nbrs.iter().skip(i + 1) {
                    if adj[a as usize].insert(b) {
                        adj[b as usize].insert(a);
                    }
                }
            }
            for &u in &nbrs {
                deleted[u as usize] += 1;
            }
            contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            contract_nbrs[v as usize] = nbrs;
            order.push(v);
        }

        // Arc set: {v, u} for every u adjacent to v when v contracted.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for &v in &order {
            for &u in &contract_nbrs[v as usize] {
                pairs.push((v, u));
            }
        }
        // PHAST order: upper-endpoint rank descending (deterministic
        // tie-break on the lower endpoint's rank).
        pairs.sort_unstable_by_key(|&(lo, hi)| (Reverse(rank[hi as usize]), rank[lo as usize]));
        let m = pairs.len();
        let mut arc_lo = Vec::with_capacity(m);
        let mut arc_hi = Vec::with_capacity(m);
        let mut arc_index: HashMap<(u32, u32), u32> = HashMap::with_capacity(m);
        for (i, &(lo, hi)) in pairs.iter().enumerate() {
            arc_lo.push(lo);
            arc_hi.push(hi);
            arc_index.insert((lo.min(hi), lo.max(hi)), i as u32);
        }

        // Upward CSR keyed by the lower endpoint.
        let mut up_first = vec![0u32; n + 1];
        for &lo in &arc_lo {
            up_first[lo as usize + 1] += 1;
        }
        for i in 0..n {
            up_first[i + 1] += up_first[i];
        }
        let mut cursor = up_first.clone();
        let mut up_arcs = vec![0u32; m];
        for (i, &lo) in arc_lo.iter().enumerate() {
            up_arcs[cursor[lo as usize] as usize] = i as u32;
            cursor[lo as usize] += 1;
        }

        // Lower triangles, middle rank ascending (= contraction order).
        let mut tri_arc = Vec::new();
        let mut tri_lo_arc = Vec::new();
        let mut tri_hi_arc = Vec::new();
        for &v in &order {
            let nbrs = &contract_nbrs[v as usize];
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in nbrs.iter().skip(i + 1) {
                    let (lo, hi) = if rank[a as usize] < rank[b as usize] {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    tri_arc.push(arc_index[&(lo.min(hi), lo.max(hi))]);
                    tri_lo_arc.push(arc_index[&(v.min(lo), v.max(lo))]);
                    tri_hi_arc.push(arc_index[&(v.min(hi), v.max(hi))]);
                }
            }
        }

        // Map every original edge onto its arc.
        let mut edge_arc = vec![NONE; net.num_edges()];
        let mut edge_is_up = vec![false; net.num_edges()];
        for e in net.edges() {
            let (t, h) = (net.tail(e).0, net.head(e).0);
            if t == h {
                continue;
            }
            edge_arc[e.index()] = arc_index[&(t.min(h), t.max(h))];
            edge_is_up[e.index()] = rank[t as usize] < rank[h as usize];
        }

        ChTopology {
            num_nodes: n,
            num_edges: net.num_edges(),
            rank,
            arc_lo,
            arc_hi,
            up_first,
            up_arcs,
            tri_arc,
            tri_lo_arc,
            tri_hi_arc,
            edge_arc,
            edge_is_up,
        }
    }

    /// Number of arcs (original adjacencies + elimination fill-in).
    pub fn num_arcs(&self) -> usize {
        self.arc_lo.len()
    }

    /// Number of lower triangles the customization relaxes.
    pub fn num_triangles(&self) -> usize {
        self.tri_arc.len()
    }

    /// Contraction rank of a node.
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v.index()]
    }

    /// Whether this topology was built for a network of `net`'s shape.
    pub fn matches(&self, net: &RoadNetwork) -> bool {
        self.num_nodes == net.num_nodes() && self.num_edges == net.num_edges()
    }

    /// Customizes a metric for one weight column (traffic epoch).
    ///
    /// Two linear passes: originals first (`CLOSED` contributes nothing,
    /// leaving the arc at [`INFINITY`] unless a parallel edge or a
    /// triangle fills it), then the triangles in middle-rank order —
    /// each arc's side arcs are final before the arc itself is relaxed,
    /// so one pass yields the exact all-pairs-respecting arc costs for
    /// any non-negative metric.
    pub fn customize(&self, net: &RoadNetwork, weights: &[Weight]) -> Result<ChMetric, CoreError> {
        if weights.len() != self.num_edges {
            return Err(CoreError::WeightLengthMismatch {
                expected: self.num_edges,
                got: weights.len(),
            });
        }
        let m = self.arc_lo.len();
        let mut up = vec![INFINITY; m];
        let mut down = vec![INFINITY; m];
        let mut via_up = vec![NONE; m];
        let mut via_down = vec![NONE; m];
        let mut best_up = vec![EdgeId::INVALID; m];
        let mut best_down = vec![EdgeId::INVALID; m];

        // Edge ids ascend, and the comparison is strict: among equal-cost
        // parallel edges the smallest id wins, keeping unpacked paths
        // deterministic.
        for e in net.edges() {
            let a = self.edge_arc[e.index()];
            if a == NONE {
                continue;
            }
            let w = weights[e.index()];
            if w == CLOSED {
                continue;
            }
            let c = w as Cost;
            if self.edge_is_up[e.index()] {
                if c < up[a as usize] {
                    up[a as usize] = c;
                    best_up[a as usize] = e;
                }
            } else if c < down[a as usize] {
                down[a as usize] = c;
                best_down[a as usize] = e;
            }
        }

        for t in 0..self.tri_arc.len() {
            let a = self.tri_arc[t] as usize;
            let la = self.tri_lo_arc[t] as usize;
            let ha = self.tri_hi_arc[t] as usize;
            // up(a): lo → mid (down side of {mid,lo}) → hi (up side of
            // {mid,hi}).
            if down[la] != INFINITY && up[ha] != INFINITY {
                let c = down[la] + up[ha];
                if c < up[a] {
                    up[a] = c;
                    via_up[a] = t as u32;
                }
            }
            // down(a): hi → mid → lo.
            if down[ha] != INFINITY && up[la] != INFINITY {
                let c = down[ha] + up[la];
                if c < down[a] {
                    down[a] = c;
                    via_down[a] = t as u32;
                }
            }
        }

        Ok(ChMetric {
            epoch: 0,
            up,
            down,
            via_up,
            via_down,
            best_up,
            best_down,
        })
    }

    /// [`ChTopology::customize`] over any [`WeightView`]; the metric is
    /// stamped with the view's epoch.
    pub fn customize_view<V: WeightView + ?Sized>(
        &self,
        net: &RoadNetwork,
        view: &V,
    ) -> Result<ChMetric, CoreError> {
        Ok(self.customize(net, view.column())?.with_epoch(view.epoch()))
    }

    /// Exact one-to-all distances via PHAST: a budgeted upward search
    /// from `root`, then one linear sweep over the arcs in descending
    /// upper-endpoint rank. `Forward` yields `d(root → v)` for every
    /// `v`; `Backward` yields `d(v → root)`.
    ///
    /// Work is accounted into `stats`: upward heap pops count as
    /// settled nodes (that is the search frontier CH actually explores),
    /// sweep and upward relaxations as relaxed edges.
    pub fn phast_distances(
        &self,
        metric: &ChMetric,
        root: NodeId,
        direction: Direction,
        budget: &SearchBudget,
        stats: &mut SearchStats,
    ) -> Result<Vec<Cost>, CoreError> {
        if root.index() >= self.num_nodes {
            return Err(CoreError::InvalidNode(root));
        }
        if budget.interrupted() {
            return Err(CoreError::Interrupted);
        }
        let mut dist = vec![INFINITY; self.num_nodes];
        dist[root.index()] = 0;
        let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        heap.push(Reverse((0, root.0)));
        let mut pops_since_check: u64 = 0;
        while let Some(Reverse((d, v))) = heap.pop() {
            stats.heap_pops += 1;
            pops_since_check += 1;
            if pops_since_check == CHECK_INTERVAL {
                pops_since_check = 0;
                stats.budget_checks += 1;
                if budget.charge(CHECK_INTERVAL) {
                    return Err(CoreError::Interrupted);
                }
            }
            if d > dist[v as usize] {
                continue;
            }
            stats.settled += 1;
            let (first, last) = (
                self.up_first[v as usize] as usize,
                self.up_first[v as usize + 1] as usize,
            );
            for &ai in &self.up_arcs[first..last] {
                stats.relaxed += 1;
                let w = match direction {
                    Direction::Forward => metric.up[ai as usize],
                    Direction::Backward => metric.down[ai as usize],
                };
                if w == INFINITY {
                    continue;
                }
                let hi = self.arc_hi[ai as usize];
                let nd = d + w;
                if nd < dist[hi as usize] {
                    dist[hi as usize] = nd;
                    heap.push(Reverse((nd, hi)));
                }
            }
        }
        budget.charge(pops_since_check);

        // Downward sweep: arcs are pre-sorted by rank[hi] descending, so
        // dist[hi] is final when the arc is relaxed.
        for (ai, (&lo, &hi)) in self.arc_lo.iter().zip(&self.arc_hi).enumerate() {
            if ai % (CHECK_INTERVAL as usize * 8) == 0 && budget.interrupted() {
                return Err(CoreError::Interrupted);
            }
            stats.relaxed += 1;
            let dh = dist[hi as usize];
            if dh == INFINITY {
                continue;
            }
            let w = match direction {
                Direction::Forward => metric.down[ai],
                Direction::Backward => metric.up[ai],
            };
            if w == INFINITY {
                continue;
            }
            let nd = dh + w;
            if nd < dist[lo as usize] {
                dist[lo as usize] = nd;
            }
        }
        Ok(dist)
    }

    /// Exact shortest-path distance under `metric`, or `None` when
    /// unreachable (or `source == target`, mirroring
    /// [`crate::ContractionHierarchy::distance`]).
    pub fn distance(&self, metric: &ChMetric, source: NodeId, target: NodeId) -> Option<Cost> {
        self.query(metric, source, target, &SearchBudget::unlimited())
            .ok()
            .flatten()
            .map(|(d, _, _, _)| d)
    }

    /// Exact shortest path under `metric`, unpacked to original edges.
    ///
    /// `weights` must be the column `metric` was customized from — it is
    /// only used to cost the returned [`Path`].
    pub fn shortest_path(
        &self,
        metric: &ChMetric,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        if source == target {
            return Err(CoreError::SameSourceTarget(source));
        }
        let Some((_, meet, pf, pb)) =
            self.query(metric, source, target, &SearchBudget::unlimited())?
        else {
            return Err(CoreError::Unreachable { source, target });
        };
        let mut edges = Vec::new();
        // Forward half: walk meet → source collecting upward arcs, then
        // unpack them source-first.
        let mut chain = Vec::new();
        let mut v = meet;
        while v != source.0 {
            let ai = pf[v as usize];
            debug_assert_ne!(ai, NONE);
            chain.push(ai);
            v = self.arc_lo[ai as usize];
        }
        for &ai in chain.iter().rev() {
            self.unpack_up(metric, ai, &mut edges);
        }
        // Backward half: each parent arc is travelled hi → lo.
        let mut v = meet;
        while v != target.0 {
            let ai = pb[v as usize];
            debug_assert_ne!(ai, NONE);
            self.unpack_down(metric, ai, &mut edges);
            v = self.arc_lo[ai as usize];
        }
        Ok(Path::from_edges(net, weights, edges))
    }

    /// Bidirectional upward search. `Ok(None)` when unreachable or
    /// `source == target`; otherwise `(distance, meeting node, forward
    /// parent arcs, backward parent arcs)`.
    #[allow(clippy::type_complexity)]
    fn query(
        &self,
        metric: &ChMetric,
        source: NodeId,
        target: NodeId,
        budget: &SearchBudget,
    ) -> Result<Option<(Cost, u32, Vec<u32>, Vec<u32>)>, CoreError> {
        if source.index() >= self.num_nodes {
            return Err(CoreError::InvalidNode(source));
        }
        if target.index() >= self.num_nodes {
            return Err(CoreError::InvalidNode(target));
        }
        if source == target {
            return Ok(None);
        }
        if budget.interrupted() {
            return Err(CoreError::Interrupted);
        }
        let n = self.num_nodes;
        let mut df = vec![INFINITY; n];
        let mut db = vec![INFINITY; n];
        let mut pf = vec![NONE; n];
        let mut pb = vec![NONE; n];
        df[source.index()] = 0;
        db[target.index()] = 0;
        let mut heap_f: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        let mut heap_b: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        heap_f.push(Reverse((0, source.0)));
        heap_b.push(Reverse((0, target.0)));
        let mut best = INFINITY;
        let mut meet = u32::MAX;
        let mut pops_since_check: u64 = 0;
        loop {
            let kf = heap_f.peek().map(|Reverse((d, _))| *d).unwrap_or(INFINITY);
            let kb = heap_b.peek().map(|Reverse((d, _))| *d).unwrap_or(INFINITY);
            if kf.min(kb) >= best {
                break;
            }
            pops_since_check += 1;
            if pops_since_check == CHECK_INTERVAL {
                pops_since_check = 0;
                if budget.charge(CHECK_INTERVAL) {
                    return Err(CoreError::Interrupted);
                }
            }
            let fwd_turn = kf <= kb && kf != INFINITY;
            let (heap, dist, other, parent, use_up) = if fwd_turn {
                (&mut heap_f, &mut df, &db, &mut pf, true)
            } else {
                (&mut heap_b, &mut db, &df, &mut pb, false)
            };
            let Some(Reverse((d, v))) = heap.pop() else {
                break;
            };
            if d > dist[v as usize] {
                continue;
            }
            let od = other[v as usize];
            if od != INFINITY && d + od < best {
                best = d + od;
                meet = v;
            }
            let (first, last) = (
                self.up_first[v as usize] as usize,
                self.up_first[v as usize + 1] as usize,
            );
            for &ai in &self.up_arcs[first..last] {
                let w = if use_up {
                    metric.up[ai as usize]
                } else {
                    metric.down[ai as usize]
                };
                if w == INFINITY {
                    continue;
                }
                let hi = self.arc_hi[ai as usize];
                let nd = d + w;
                if nd < dist[hi as usize] {
                    dist[hi as usize] = nd;
                    parent[hi as usize] = ai;
                    heap.push(Reverse((nd, hi)));
                }
            }
        }
        budget.charge(pops_since_check);
        if best == INFINITY {
            return Ok(None);
        }
        Ok(Some((best, meet, pf, pb)))
    }

    /// Unpacks the lo→hi traversal of an arc into original edges.
    fn unpack_up(&self, metric: &ChMetric, ai: u32, out: &mut Vec<EdgeId>) {
        let via = metric.via_up[ai as usize];
        if via == NONE {
            debug_assert!(!metric.best_up[ai as usize].is_invalid());
            out.push(metric.best_up[ai as usize]);
        } else {
            // lo → mid (down side of {mid,lo}), then mid → hi.
            self.unpack_down(metric, self.tri_lo_arc[via as usize], out);
            self.unpack_up(metric, self.tri_hi_arc[via as usize], out);
        }
    }

    /// Unpacks the hi→lo traversal of an arc into original edges.
    fn unpack_down(&self, metric: &ChMetric, ai: u32, out: &mut Vec<EdgeId>) {
        let via = metric.via_down[ai as usize];
        if via == NONE {
            debug_assert!(!metric.best_down[ai as usize].is_invalid());
            out.push(metric.best_down[ai as usize]);
        } else {
            // hi → mid (down side of {mid,hi}), then mid → lo.
            self.unpack_down(metric, self.tri_hi_arc[via as usize], out);
            self.unpack_up(metric, self.tri_lo_arc[via as usize], out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchSpace;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Secondary),
                    );
                }
            }
        }
        b.build()
    }

    fn assert_exact(net: &RoadNetwork, weights: &[Weight], topo: &ChTopology, metric: &ChMetric) {
        let mut ws = SearchSpace::new(net);
        let n = net.num_nodes() as u32;
        for s in (0..n).step_by(3) {
            for t in (0..n).step_by(4) {
                if s == t {
                    continue;
                }
                let expect = ws
                    .shortest_distance(net, weights, NodeId(s), NodeId(t))
                    .ok();
                assert_eq!(
                    topo.distance(metric, NodeId(s), NodeId(t)),
                    expect,
                    "{s} -> {t}"
                );
            }
        }
    }

    #[test]
    fn distances_match_dijkstra_on_base_weights() {
        let net = grid(6);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        assert_exact(&net, net.weights(), &topo, &metric);
    }

    #[test]
    fn recustomization_tracks_overlays_and_closures() {
        let net = grid(5);
        let topo = ChTopology::build(&net);
        // Per-edge overlay: every third edge slowed 3x.
        let mut overlay = net.weights().to_vec();
        for (i, w) in overlay.iter_mut().enumerate() {
            if i % 3 == 0 {
                *w = w.saturating_mul(3).min(u32::MAX - 1);
            }
        }
        let metric = topo.customize(&net, &overlay).unwrap();
        assert_exact(&net, &overlay, &topo, &metric);
        // Closures on top: the same topology, another cheap customization.
        overlay[0] = CLOSED;
        overlay[7] = CLOSED;
        let metric = topo.customize(&net, &overlay).unwrap();
        assert_exact(&net, &overlay, &topo, &metric);
    }

    #[test]
    fn closed_only_path_is_unreachable() {
        // 0 -> 1 -> 2, close the only edge into 2.
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        let d = b.add_node(Point::new(0.02, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        b.add_edge(c, d, EdgeSpec::default());
        let net = b.build();
        let topo = ChTopology::build(&net);
        let mut overlay = net.weights().to_vec();
        overlay[1] = CLOSED;
        let metric = topo.customize(&net, &overlay).unwrap();
        assert_eq!(topo.distance(&metric, NodeId(0), NodeId(2)), None);
        assert!(matches!(
            topo.shortest_path(&metric, &net, &overlay, NodeId(0), NodeId(2)),
            Err(CoreError::Unreachable { .. })
        ));
        // Reopening (a fresh customization on the restored column)
        // restores exactness — the topology never changed.
        let metric = topo.customize(&net, net.weights()).unwrap();
        assert_exact(&net, net.weights(), &topo, &metric);
    }

    #[test]
    fn unpacked_paths_are_valid_and_optimal() {
        let net = grid(6);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        for (s, t) in [(0u32, 35u32), (3, 30), (7, 28), (12, 23), (35, 0)] {
            let p = topo
                .shortest_path(&metric, &net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            assert!(p.validate(&net), "{s}->{t}");
            let d = ws
                .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            assert_eq!(p.cost_ms, d, "{s}->{t}");
        }
    }

    #[test]
    fn unpacked_paths_avoid_closed_edges() {
        let net = grid(5);
        let topo = ChTopology::build(&net);
        let mut overlay = net.weights().to_vec();
        // Close a handful of edges; every unpacked path must avoid them.
        for i in [0usize, 5, 11, 20] {
            overlay[i] = CLOSED;
        }
        let metric = topo.customize(&net, &overlay).unwrap();
        for (s, t) in [(0u32, 24u32), (4, 20), (2, 22)] {
            if let Ok(p) = topo.shortest_path(&metric, &net, &overlay, NodeId(s), NodeId(t)) {
                for e in &p.edges {
                    assert_ne!(overlay[e.index()], CLOSED, "path uses a closed edge");
                }
            }
        }
    }

    #[test]
    fn phast_matches_full_dijkstra_trees() {
        let net = grid(6);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        let mut stats = SearchStats::default();
        for root in [0u32, 17, 35] {
            let fwd = topo
                .phast_distances(
                    &metric,
                    NodeId(root),
                    Direction::Forward,
                    &SearchBudget::unlimited(),
                    &mut stats,
                )
                .unwrap();
            let tree = ws
                .shortest_path_tree(&net, net.weights(), NodeId(root), Direction::Forward)
                .unwrap();
            assert_eq!(fwd, tree.dist, "forward from {root}");
            let bwd = topo
                .phast_distances(
                    &metric,
                    NodeId(root),
                    Direction::Backward,
                    &SearchBudget::unlimited(),
                    &mut stats,
                )
                .unwrap();
            let tree = ws
                .shortest_path_tree(&net, net.weights(), NodeId(root), Direction::Backward)
                .unwrap();
            assert_eq!(bwd, tree.dist, "backward from {root}");
        }
        assert!(stats.settled > 0);
        assert!(stats.relaxed > 0);
    }

    #[test]
    fn ranks_are_a_permutation_and_arcs_cover_edges() {
        let net = grid(5);
        let topo = ChTopology::build(&net);
        let mut ranks: Vec<u32> = (0..25).map(|v| topo.rank(NodeId(v))).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..25).collect::<Vec<_>>());
        assert!(topo.num_arcs() >= 40, "arcs must cover the 40 adjacencies");
        assert!(topo.matches(&net));
    }

    #[test]
    fn cancelled_budget_interrupts_phast() {
        let net = grid(8);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        let budget = SearchBudget::new();
        budget.cancel();
        let mut stats = SearchStats::default();
        assert!(matches!(
            topo.phast_distances(&metric, NodeId(0), Direction::Forward, &budget, &mut stats),
            Err(CoreError::Interrupted)
        ));
    }

    #[test]
    fn metric_epoch_stamp_round_trips() {
        let net = grid(3);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        assert_eq!(metric.epoch(), 0);
        assert_eq!(metric.with_epoch(9).epoch(), 9);
    }
}
