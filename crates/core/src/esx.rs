//! ESX-style k-shortest paths with limited overlap (§2.4's reference to
//! Chondrogiannis et al., SIGSPATIAL 2015).
//!
//! The algorithm grows the result set in shortest-first order. When the
//! current shortest candidate overlaps an already-chosen path beyond the
//! threshold, ESX *excludes* an edge of that overlap (here: the heaviest
//! shared edge) and recomputes, steering the search away from the shared
//! corridor while preserving optimality of what remains. Compared to the
//! Penalty technique this converges with fewer, more targeted graph
//! edits; compared to SSVP-D+ it bounds overlap asymmetrically
//! (`shared / len(candidate)`).

use std::collections::HashSet;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight};

use crate::budget::SearchBudget;
use crate::error::CoreError;
use crate::path::Path;
use crate::query::AltQuery;
use crate::search::SearchSpace;
use crate::similarity::overlap_ratio;

/// Options for the ESX-style algorithm.
#[derive(Clone, Copy, Debug)]
pub struct EsxOptions {
    /// Maximum admissible overlap `len(p ∩ q) / len(p)` of a new path `p`
    /// with any chosen path `q`. The k-SPwLO literature uses 0.5–0.8.
    pub max_overlap: f64,
    /// Edge-exclusion budget; gives up on a candidate slot after this many
    /// exclusions (the underlying problem is NP-hard).
    pub max_exclusions: usize,
}

impl Default for EsxOptions {
    fn default() -> Self {
        EsxOptions {
            max_overlap: 0.6,
            max_exclusions: 200,
        }
    }
}

/// Computes up to `query.k` limited-overlap paths, shortest first.
pub fn esx_alternatives(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &EsxOptions,
) -> Result<Vec<Path>, CoreError> {
    esx_alternatives_budgeted(
        net,
        weights,
        source,
        target,
        query,
        options,
        &SearchBudget::unlimited(),
    )
}

/// [`esx_alternatives`] under a cooperative [`SearchBudget`].
///
/// A trip mid-call returns the paths chosen so far (an anytime result);
/// inspect `budget.is_cancelled()` to tell a partial set apart from a
/// converged one. A trip before the first path is found returns `Ok`
/// with an empty set.
#[allow(clippy::too_many_arguments)]
pub fn esx_alternatives_budgeted(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &EsxOptions,
    budget: &SearchBudget,
) -> Result<Vec<Path>, CoreError> {
    if query.k == 0 {
        return Ok(Vec::new());
    }
    let mut ws = SearchSpace::new(net);
    ws.set_budget(budget.clone());
    let best = match ws.shortest_path(net, weights, source, target) {
        Ok(p) => p,
        Err(CoreError::Interrupted) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(esx_rounds(
        &mut ws, net, weights, source, target, query, options, budget, best,
    ))
}

/// Like [`esx_alternatives_budgeted`], but seeded with a prepared base
/// optimal route — typically a
/// [`crate::substrate::SearchSubstrate`]'s — instead of searching for
/// it first. Only the initial full Dijkstra is saved; the
/// exclusion-and-recompute rounds are the exact code the self-computing
/// path runs, so results are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn esx_alternatives_from_base(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &EsxOptions,
    budget: &SearchBudget,
    base: &Path,
) -> Result<Vec<Path>, CoreError> {
    if query.k == 0 {
        return Ok(Vec::new());
    }
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    debug_assert_eq!(base.source(), source);
    debug_assert_eq!(base.target(), target);
    let mut ws = SearchSpace::new(net);
    ws.set_budget(budget.clone());
    Ok(esx_rounds(
        &mut ws,
        net,
        weights,
        source,
        target,
        query,
        options,
        budget,
        base.clone(),
    ))
}

/// The search-independent tail of ESX: grow the result set shortest
/// first, excluding the heaviest shared edge of over-overlapping
/// candidates. Shared verbatim by [`esx_alternatives_budgeted`]
/// (self-computed base) and [`esx_alternatives_from_base`]
/// (substrate-fed base).
#[allow(clippy::too_many_arguments)]
fn esx_rounds(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &EsxOptions,
    budget: &SearchBudget,
    best: Path,
) -> Vec<Path> {
    let bound = query.cost_bound(best.cost_ms);

    const BLOCKED: Weight = u32::MAX - 1;
    let mut overlay = weights.to_vec();
    let mut excluded: HashSet<EdgeId> = HashSet::new();

    let mut result: Vec<Path> = Vec::with_capacity(query.k);
    result.push(best);

    'outer: while result.len() < query.k {
        // Poll between candidate generations so a tripped budget stops
        // the technique before the next recompute.
        if budget.interrupted() {
            break;
        }
        let mut exclusions_this_round = 0usize;
        loop {
            let candidate = match ws.shortest_path(net, &overlay, source, target) {
                Ok(p) => p,
                // Interrupted: hand back what is already chosen.
                Err(CoreError::Interrupted) => break 'outer,
                // Graph disconnected by exclusions.
                Err(_) => break 'outer,
            };
            // A candidate that had to use a blocked edge means no real
            // path remains.
            if candidate.cost_ms >= BLOCKED as Cost {
                break 'outer;
            }
            let true_cost = candidate.cost_under(weights);
            if true_cost > bound {
                break 'outer; // everything further is too long
            }
            let candidate = Path {
                cost_ms: true_cost,
                ..candidate
            };

            // Find the chosen path with the worst overlap.
            let mut worst: Option<(usize, f64)> = None;
            for (i, chosen) in result.iter().enumerate() {
                let o = overlap_ratio(&candidate, chosen, weights);
                if worst.is_none_or(|(_, w)| o > w) {
                    worst = Some((i, o));
                }
            }
            let (worst_idx, worst_overlap) = worst.expect("result set is non-empty");

            if worst_overlap <= options.max_overlap {
                result.push(candidate);
                continue 'outer;
            }

            // Exclude the heaviest shared edge with the worst-overlap path.
            exclusions_this_round += 1;
            if exclusions_this_round > options.max_exclusions {
                break 'outer;
            }
            let chosen_edges: HashSet<EdgeId> = result[worst_idx].edges.iter().copied().collect();
            let Some(&heaviest) = candidate
                .edges
                .iter()
                .filter(|e| chosen_edges.contains(e) && !excluded.contains(e))
                .max_by_key(|e| weights[e.index()])
            else {
                break 'outer; // nothing left to exclude
            };
            excluded.insert(heaviest);
            overlay[heaviest.index()] = BLOCKED;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn first_is_shortest_rest_bounded() {
        let net = grid(8);
        let q = AltQuery::paper();
        let paths = esx_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &EsxOptions::default(),
        )
        .unwrap();
        assert!(!paths.is_empty());
        let best =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(63)).unwrap();
        assert_eq!(paths[0].cost_ms, best.cost_ms);
        for p in &paths {
            assert!(p.validate(&net));
            assert!(p.cost_ms <= q.cost_bound(best.cost_ms));
        }
    }

    #[test]
    fn overlap_constraint_holds() {
        let net = grid(8);
        let q = AltQuery::paper();
        let opts = EsxOptions {
            max_overlap: 0.5,
            max_exclusions: 200,
        };
        let paths =
            esx_alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q, &opts).unwrap();
        for i in 1..paths.len() {
            for j in 0..i {
                let o = overlap_ratio(&paths[i], &paths[j], net.weights());
                assert!(o <= opts.max_overlap + 1e-9, "paths {j},{i}: overlap {o}");
            }
        }
        assert!(paths.len() >= 2, "a grid has low-overlap alternatives");
    }

    #[test]
    fn line_graph_returns_only_the_path() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(Point::new(144.0 + i as f64 * 0.01, -37.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Primary));
        }
        let net = b.build();
        let paths = esx_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(4),
            &AltQuery::paper(),
            &EsxOptions::default(),
        )
        .unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn k_zero_and_unreachable() {
        let net = grid(4);
        assert!(esx_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(15),
            &AltQuery::paper().with_k(0),
            &EsxOptions::default(),
        )
        .unwrap()
        .is_empty());

        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let disconnected = b.build();
        assert!(esx_alternatives(
            &disconnected,
            disconnected.weights(),
            NodeId(1),
            NodeId(0),
            &AltQuery::paper(),
            &EsxOptions::default(),
        )
        .is_err());
    }

    #[test]
    fn budgeted_call_returns_partial_prefix() {
        let net = grid(8);
        let q = AltQuery::paper();
        let full = esx_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &EsxOptions::default(),
        )
        .unwrap();
        assert!(full.len() > 1);
        // Cap of one pop: the first search completes (residual charge),
        // the sticky trip stops the loop before the second candidate.
        let budget = SearchBudget::new().with_expansion_cap(1);
        let partial = esx_alternatives_budgeted(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &EsxOptions::default(),
            &budget,
        )
        .unwrap();
        assert!(budget.is_cancelled());
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].edges, full[0].edges);
    }

    #[test]
    fn tighter_overlap_not_more_paths() {
        let net = grid(8);
        let q = AltQuery::paper().with_k(5);
        let loose = esx_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &EsxOptions {
                max_overlap: 0.8,
                max_exclusions: 200,
            },
        )
        .unwrap();
        let tight = esx_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &EsxOptions {
                max_overlap: 0.2,
                max_exclusions: 200,
            },
        )
        .unwrap();
        assert!(tight.len() <= loose.len());
    }
}
