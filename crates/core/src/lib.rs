#![warn(missing_docs)]
//! # arp-core
//!
//! Alternative route planning techniques — the subject matter of the ICDE
//! 2022 comparative user study. The crate implements, from scratch:
//!
//! * a reusable shortest-path engine ([`search`]): Dijkstra with
//!   generation-stamped labels, A*, forward/backward shortest-path trees,
//! * a per-request shared search [`substrate`]: both trees plus the base
//!   optimal route computed once and handed to every technique through an
//!   optional [`ProviderContext`], so the four-way fan-out stops
//!   recomputing the same Dijkstra work per lane,
//! * the three published techniques the study compares —
//!   [`penalty`] (§2.1), [`plateau`] (§2.2) and [`dissimilarity`]
//!   (SSVP-D+, §2.3) — plus [`yen`]'s algorithm as the classic baseline
//!   (§2.4),
//! * a Google-Maps stand-in ([`provider::google_like`]) that reproduces the
//!   study's central confound: a provider optimizing on different
//!   underlying travel-time data (§4.2, Fig. 4),
//! * path [`similarity`] measures, objective [`quality`] metrics (stretch,
//!   diversity, turns, wide-road share, local optimality) and the optional
//!   [`filters`] the paper says could "easily be included" (§4.2).
//!
//! All algorithms run against any [`arp_roadnet::RoadNetwork`] and an
//! explicit weight overlay (`&[Weight]`), so the same code serves the
//! public OSM weights, penalized copies, and the commercial provider's
//! private traffic data.
//!
//! ```
//! use arp_core::prelude::*;
//! use arp_roadnet::prelude::*;
//!
//! // A small two-corridor network.
//! let mut b = GraphBuilder::new();
//! let s = b.add_node(Point::new(144.00, -37.00));
//! let a = b.add_node(Point::new(144.01, -37.00));
//! let c = b.add_node(Point::new(144.01, -37.01));
//! let t = b.add_node(Point::new(144.02, -37.00));
//! b.add_bidirectional(s, a, EdgeSpec::category(RoadCategory::Primary));
//! b.add_bidirectional(a, t, EdgeSpec::category(RoadCategory::Primary));
//! b.add_bidirectional(s, c, EdgeSpec::category(RoadCategory::Secondary));
//! b.add_bidirectional(c, t, EdgeSpec::category(RoadCategory::Secondary));
//! let net = b.build();
//!
//! let query = AltQuery::paper(); // k=3, ε=1.4, θ=0.5, penalty 1.4
//! let routes = plateau_alternatives(
//!     &net, net.weights(), s, t, &query, &PlateauOptions::default(),
//! ).unwrap();
//! assert!(!routes.is_empty());
//! ```

pub mod admissibility;
pub mod altgraph;
pub mod bidir;
pub mod budget;
pub mod cch;
pub mod ch;
pub mod dissimilarity;
pub mod error;
pub mod esx;
pub mod filters;
pub mod metrics;
pub mod pareto;
pub mod path;
pub mod penalty;
pub mod plateau;
pub mod provider;
pub mod quality;
pub mod query;
pub mod search;
pub mod similarity;
pub mod substrate;
pub mod turns;
pub mod yen;

pub use admissibility::{
    admissibility, admissible_share, AdmissibilityCriteria, AdmissibilityReport,
};
pub use bidir::BidirSearch;
pub use budget::SearchBudget;
pub use cch::{ChMetric, ChTopology};
pub use ch::{ChConfig, ChSearch, ContractionHierarchy};
pub use dissimilarity::{
    dissimilarity_alternatives, dissimilarity_alternatives_from_trees, DissimilarityOptions,
    DissimilarityStats,
};
pub use error::CoreError;
pub use esx::{
    esx_alternatives, esx_alternatives_budgeted, esx_alternatives_from_base, EsxOptions,
};
pub use filters::{apply_filters, FilterConfig};
pub use metrics::{SearchMetrics, SearchStats, TechniqueMetrics};
pub use pareto::{pareto_paths, ParetoOptions, ParetoRoute};
pub use path::Path;
pub use penalty::{
    penalty_alternatives, penalty_alternatives_from_base, PenaltyOptions, PenaltyStats,
};
pub use plateau::{
    find_plateaus, plateau_alternatives, plateau_alternatives_from_trees, Plateau, PlateauOptions,
    PlateauStats,
};
pub use provider::{
    instrumented_providers, standard_providers, AlternativesProvider, DissimilarityProvider,
    GoogleLikeProvider, PenaltyProvider, PlateauProvider, ProviderKind, ProviderOutcome,
    TrafficModel,
};
pub use query::{AltQuery, Route};
pub use search::{shortest_path, Direction, SearchSpace, ShortestPathTree};
pub use substrate::{ProviderContext, SearchSubstrate};
pub use turns::{turn_aware_shortest_path, TurnModel};
pub use yen::{yen_k_shortest_paths, yen_k_shortest_paths_budgeted};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::bidir::BidirSearch;
    pub use crate::budget::SearchBudget;
    pub use crate::dissimilarity::{dissimilarity_alternatives, DissimilarityOptions};
    pub use crate::error::CoreError;
    pub use crate::esx::{esx_alternatives, EsxOptions};
    pub use crate::filters::{apply_filters, FilterConfig};
    pub use crate::metrics::{SearchMetrics, SearchStats, TechniqueMetrics};
    pub use crate::pareto::{pareto_paths, ParetoOptions, ParetoRoute};
    pub use crate::path::Path;
    pub use crate::penalty::{penalty_alternatives, PenaltyOptions};
    pub use crate::plateau::{plateau_alternatives, PlateauOptions};
    pub use crate::provider::{
        instrumented_providers, standard_providers, AlternativesProvider, GoogleLikeProvider,
        ProviderKind, ProviderOutcome,
    };
    pub use crate::query::{AltQuery, Route};
    pub use crate::search::{shortest_path, Direction, SearchSpace};
    pub use crate::substrate::{ProviderContext, SearchSubstrate};
    pub use crate::yen::yen_k_shortest_paths;
}
