//! Error type for route computation.

use arp_roadnet::ids::NodeId;
use std::fmt;

/// Errors raised by shortest-path and alternative-route computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A query endpoint is not a valid vertex of the network.
    InvalidNode(NodeId),
    /// Source and target are the same vertex.
    SameSourceTarget(NodeId),
    /// No path exists from source to target.
    Unreachable {
        /// Query source.
        source: NodeId,
        /// Query target.
        target: NodeId,
    },
    /// A weight overlay has the wrong length for the network.
    WeightLengthMismatch {
        /// Expected number of edges.
        expected: usize,
        /// Provided overlay length.
        got: usize,
    },
    /// The search's [`crate::SearchBudget`] tripped (cancellation,
    /// deadline or expansion cap) before the search finished. Technique
    /// drivers catch this and return the alternatives admitted so far.
    Interrupted,
}

impl CoreError {
    /// Whether retrying the same computation could plausibly succeed.
    ///
    /// Only [`CoreError::Interrupted`] is transient: it reflects the
    /// search *budget* (cancellation, deadline, expansion cap), not the
    /// query. Every other variant is a property of the query or the
    /// network and fails identically on every attempt, so the serving
    /// layer must not spend its retry budget on it.
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::Interrupted)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidNode(n) => write!(f, "invalid node {n}"),
            CoreError::SameSourceTarget(n) => {
                write!(f, "source and target are the same vertex {n}")
            }
            CoreError::Unreachable { source, target } => {
                write!(f, "no path from {source} to {target}")
            }
            CoreError::WeightLengthMismatch { expected, got } => {
                write!(
                    f,
                    "weight overlay has {got} entries, network has {expected} edges"
                )
            }
            CoreError::Interrupted => write!(f, "search interrupted by its budget"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::InvalidNode(NodeId(4)).to_string(),
            "invalid node n4"
        );
        assert!(CoreError::Unreachable {
            source: NodeId(1),
            target: NodeId(2)
        }
        .to_string()
        .contains("n1"));
        assert!(CoreError::WeightLengthMismatch {
            expected: 5,
            got: 3
        }
        .to_string()
        .contains("3"));
    }

    #[test]
    fn only_interrupted_is_transient() {
        assert!(CoreError::Interrupted.is_transient());
        assert!(!CoreError::InvalidNode(NodeId(1)).is_transient());
        assert!(!CoreError::SameSourceTarget(NodeId(1)).is_transient());
        assert!(!CoreError::Unreachable {
            source: NodeId(1),
            target: NodeId(2)
        }
        .is_transient());
        assert!(!CoreError::WeightLengthMismatch {
            expected: 5,
            got: 3
        }
        .is_transient());
    }
}
