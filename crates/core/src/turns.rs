//! Turn-aware routing via the edge-expanded graph.
//!
//! Study participants told the authors that "less zig-zag is better" and
//! that the best-rated routes "follow wide roads" (§4.2). Plain
//! node-based Dijkstra cannot price turns — the cost of moving through an
//! intersection depends on the *pair* of edges used. The standard fix,
//! implemented here, searches the **edge-expanded graph**: states are
//! directed edges, transitions are edge pairs sharing an intersection,
//! and each transition pays the downstream edge's travel time plus a turn
//! penalty derived from the geometry (straight-on is free; sharper turns
//! and U-turns cost more).
//!
//! The experiments use this to quantify what the paper only speculates
//! about: adding the §4.2 turn criterion to a technique trades a little
//! travel time for visibly straighter routes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::turn_angle_deg;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight, INFINITY};

use crate::error::CoreError;
use crate::path::Path;

/// Turn-cost model: penalty in ms as a function of the turn angle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TurnModel {
    /// Angle (degrees) below which a direction change is free.
    pub straight_threshold_deg: f64,
    /// Penalty for an ordinary turn (threshold..135°), in ms.
    pub turn_penalty_ms: Weight,
    /// Penalty for a sharp turn / U-turn (≥ 135°), in ms.
    pub sharp_penalty_ms: Weight,
}

impl Default for TurnModel {
    fn default() -> Self {
        TurnModel {
            straight_threshold_deg: 30.0,
            turn_penalty_ms: 8_000,   // ~8 s per turn: deceleration + wait
            sharp_penalty_ms: 20_000, // U-turns are strongly discouraged
        }
    }
}

impl TurnModel {
    /// A model with no penalties (turn-aware search degenerates to plain
    /// shortest paths; used to validate the machinery).
    pub fn free() -> TurnModel {
        TurnModel {
            straight_threshold_deg: 180.0,
            turn_penalty_ms: 0,
            sharp_penalty_ms: 0,
        }
    }

    /// Penalty for continuing from `incoming` to `outgoing` at their
    /// shared intersection.
    pub fn penalty_ms(&self, net: &RoadNetwork, incoming: EdgeId, outgoing: EdgeId) -> Weight {
        debug_assert_eq!(net.head(incoming), net.tail(outgoing));
        let a = net.point(net.tail(incoming));
        let b = net.point(net.head(incoming));
        let c = net.point(net.head(outgoing));
        let angle = turn_angle_deg(a, b, c);
        if angle < self.straight_threshold_deg {
            0
        } else if angle < 135.0 {
            self.turn_penalty_ms
        } else {
            self.sharp_penalty_ms
        }
    }
}

/// Turn-aware shortest path from `source` to `target`.
///
/// Runs Dijkstra over edge states: `dist[e]` is the cheapest cost of
/// arriving at `head(e)` having just traversed `e`, including all turn
/// penalties so far. The reported [`Path::cost_ms`] **includes** turn
/// penalties; use [`Path::cost_under`] for the pure travel time.
pub fn turn_aware_shortest_path(
    net: &RoadNetwork,
    weights: &[Weight],
    model: &TurnModel,
    source: NodeId,
    target: NodeId,
) -> Result<Path, CoreError> {
    if source.index() >= net.num_nodes() {
        return Err(CoreError::InvalidNode(source));
    }
    if target.index() >= net.num_nodes() {
        return Err(CoreError::InvalidNode(target));
    }
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    if weights.len() != net.num_edges() {
        return Err(CoreError::WeightLengthMismatch {
            expected: net.num_edges(),
            got: weights.len(),
        });
    }

    let m = net.num_edges();
    let mut dist: Vec<Cost> = vec![INFINITY; m];
    let mut parent: Vec<EdgeId> = vec![EdgeId::INVALID; m];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();

    for e in net.out_edges(source) {
        let d = weights[e.index()] as Cost;
        if d < dist[e.index()] {
            dist[e.index()] = d;
            heap.push(Reverse((d, e.0)));
        }
    }

    let mut best_final: Option<EdgeId> = None;
    let mut best_cost = INFINITY;
    while let Some(Reverse((d, e))) = heap.pop() {
        let e = EdgeId(e);
        if d > dist[e.index()] {
            continue;
        }
        if d >= best_cost {
            break; // every remaining state is at least as expensive
        }
        let v = net.head(e);
        if v == target {
            if d < best_cost {
                best_cost = d;
                best_final = Some(e);
            }
            continue;
        }
        for next in net.out_edges(v) {
            // Forbid immediate backtracking over the same two-way street
            // unless the model prices it (it does, as a sharp turn).
            let nd = d + weights[next.index()] as Cost + model.penalty_ms(net, e, next) as Cost;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                parent[next.index()] = e;
                heap.push(Reverse((nd, next.0)));
            }
        }
    }

    let Some(final_edge) = best_final else {
        return Err(CoreError::Unreachable { source, target });
    };
    let mut edges = Vec::new();
    let mut cur = final_edge;
    loop {
        edges.push(cur);
        let p = parent[cur.index()];
        if p.is_invalid() {
            break;
        }
        cur = p;
    }
    edges.reverse();
    let mut path = Path::from_edges(net, weights, edges);
    path.cost_ms = best_cost; // include turn penalties
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::turn_count;
    use crate::search::shortest_path;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn free_model_matches_plain_dijkstra() {
        let net = grid(6);
        let model = TurnModel::free();
        for (s, t) in [(0u32, 35u32), (3, 32), (12, 23)] {
            let plain = shortest_path(&net, net.weights(), NodeId(s), NodeId(t)).unwrap();
            let aware = turn_aware_shortest_path(&net, net.weights(), &model, NodeId(s), NodeId(t))
                .unwrap();
            assert_eq!(aware.cost_ms, plain.cost_ms, "{s}->{t}");
            assert!(aware.validate(&net));
        }
    }

    #[test]
    fn penalties_reduce_turn_count() {
        // Corner-to-corner on a grid: many monotone staircase paths tie on
        // travel time; the turn-aware search must pick one with the
        // minimum number of bends (exactly 1 for an L-shaped route).
        let net = grid(7);
        let model = TurnModel::default();
        let aware =
            turn_aware_shortest_path(&net, net.weights(), &model, NodeId(0), NodeId(48)).unwrap();
        let turns = turn_count(&net, &aware, 45.0);
        assert!(turns <= 1, "turn-aware path has {turns} turns");
        // Travel time (without penalties) stays optimal here: an L-path is
        // also a shortest path.
        let plain = shortest_path(&net, net.weights(), NodeId(0), NodeId(48)).unwrap();
        assert_eq!(aware.cost_under(net.weights()), plain.cost_ms);
    }

    #[test]
    fn reported_cost_includes_penalties() {
        let net = grid(5);
        let model = TurnModel::default();
        let aware =
            turn_aware_shortest_path(&net, net.weights(), &model, NodeId(0), NodeId(24)).unwrap();
        let travel = aware.cost_under(net.weights());
        let turns = turn_count(&net, &aware, 45.0) as u64;
        assert_eq!(aware.cost_ms, travel + turns * model.turn_penalty_ms as u64);
    }

    #[test]
    fn turn_model_prices_geometry() {
        let net = grid(3);
        let model = TurnModel::default();
        // Straight through the middle row: 0 -> 1 -> 2.
        let e01 = net.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = net.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(model.penalty_ms(&net, e01, e12), 0);
        // Right angle: 0 -> 1 -> 4.
        let e14 = net.find_edge(NodeId(1), NodeId(4)).unwrap();
        assert_eq!(model.penalty_ms(&net, e01, e14), model.turn_penalty_ms);
        // U-turn: 0 -> 1 -> 0.
        let e10 = net.find_edge(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(model.penalty_ms(&net, e01, e10), model.sharp_penalty_ms);
    }

    #[test]
    fn errors_match_contract() {
        let net = grid(3);
        let model = TurnModel::default();
        assert!(matches!(
            turn_aware_shortest_path(&net, net.weights(), &model, NodeId(0), NodeId(0)),
            Err(CoreError::SameSourceTarget(_))
        ));
        assert!(matches!(
            turn_aware_shortest_path(&net, net.weights(), &model, NodeId(0), NodeId(99)),
            Err(CoreError::InvalidNode(_))
        ));
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let tiny = b.build();
        assert!(matches!(
            turn_aware_shortest_path(&tiny, tiny.weights(), &model, NodeId(1), NodeId(0)),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn turn_cost_can_justify_longer_route() {
        // A zig-zag cheap route vs a straight slightly slower route: with
        // penalties the straight one wins.
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.000, 0.000));
        let z1 = b.add_node(Point::new(0.010, 0.010));
        let z2 = b.add_node(Point::new(0.020, 0.000));
        let z3 = b.add_node(Point::new(0.030, 0.010));
        let t = b.add_node(Point::new(0.040, 0.000));
        let m1 = b.add_node(Point::new(0.013, 0.000));
        let m2 = b.add_node(Point::new(0.027, 0.000));
        // Zig-zag: total weight 40_000 with 3 direction flips.
        for (a, c) in [(s, z1), (z1, z2), (z2, z3), (z3, t)] {
            b.add_bidirectional(a, c, EdgeSpec::default().with_weight(10_000));
        }
        // Straight middle road: total weight 45_000, no turns.
        for (a, c) in [(s, m1), (m1, m2), (m2, t)] {
            b.add_bidirectional(a, c, EdgeSpec::default().with_weight(15_000));
        }
        let net = b.build();
        let plain = shortest_path(&net, net.weights(), NodeId(0), NodeId(4)).unwrap();
        assert_eq!(plain.cost_ms, 40_000, "zig-zag is the time-optimal route");
        let aware = turn_aware_shortest_path(
            &net,
            net.weights(),
            &TurnModel::default(),
            NodeId(0),
            NodeId(4),
        )
        .unwrap();
        assert_eq!(
            aware.cost_under(net.weights()),
            45_000,
            "turn-aware search prefers the straight road"
        );
        assert_eq!(turn_count(&net, &aware, 45.0), 0);
    }
}
