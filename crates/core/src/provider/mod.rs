//! Route providers: the four approaches compared by the user study.
//!
//! A [`AlternativesProvider`] answers an alternative-routes query with a
//! list of [`Route`]s whose travel times are always priced on the *public*
//! (OpenStreetMap) weights — mirroring the paper's query processor, which
//! displays OSM-derived travel times for every approach including Google
//! Maps (§3).

pub mod google_like;

use arp_obs::Registry;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::Weight;

use crate::budget::SearchBudget;
use crate::dissimilarity::{
    dissimilarity_alternatives_from_trees, dissimilarity_alternatives_observed,
    DissimilarityOptions, DissimilarityStats,
};
use crate::error::CoreError;
use crate::metrics::TechniqueMetrics;
use crate::path::Path;
use crate::penalty::{
    penalty_alternatives_from_base, penalty_alternatives_observed, PenaltyOptions, PenaltyStats,
};
use crate::plateau::{
    plateau_alternatives_from_trees, plateau_alternatives_observed, PlateauOptions, PlateauStats,
};
use crate::query::{AltQuery, Route};
use crate::search::SearchSpace;
use crate::substrate::ProviderContext;

pub use google_like::{GoogleLikeProvider, TrafficModel};

/// Identity of an approach, in the paper's A–D presentation order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProviderKind {
    /// A commercial-style provider optimizing on its own (different) data —
    /// the stand-in for Google Maps.
    GoogleLike,
    /// The Plateaus technique (Choice Routing).
    Plateaus,
    /// The Dissimilarity technique (SSVP-D+).
    Dissimilarity,
    /// The Penalty technique.
    Penalty,
}

impl ProviderKind {
    /// All four approaches in the paper's fixed order
    /// (A: Google Maps, B: Plateaus, C: Dissimilarity, D: Penalty).
    pub const ALL: [ProviderKind; 4] = [
        ProviderKind::GoogleLike,
        ProviderKind::Plateaus,
        ProviderKind::Dissimilarity,
        ProviderKind::Penalty,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ProviderKind::GoogleLike => "Google Maps",
            ProviderKind::Plateaus => "Plateaus",
            ProviderKind::Dissimilarity => "Dissimilarity",
            ProviderKind::Penalty => "Penalty",
        }
    }

    /// Stable lowercase identifier used as the `technique` metric label.
    pub fn slug(self) -> &'static str {
        match self {
            ProviderKind::GoogleLike => "google_like",
            ProviderKind::Plateaus => "plateaus",
            ProviderKind::Dissimilarity => "dissimilarity",
            ProviderKind::Penalty => "penalty",
        }
    }
}

impl std::fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a budgeted provider call: either the technique converged, or
/// its [`SearchBudget`] tripped and these are the routes admitted up to
/// that point (an *anytime* partial, possibly empty).
#[derive(Clone, Debug)]
pub enum ProviderOutcome {
    /// The technique ran to completion.
    Complete(Vec<Route>),
    /// The budget tripped (cancellation, deadline or expansion cap)
    /// before the technique converged.
    Interrupted {
        /// Routes admitted before the trip, in the technique's usual
        /// admission order.
        partial: Vec<Route>,
    },
}

impl ProviderOutcome {
    /// The routes, whether or not the call converged.
    pub fn routes(self) -> Vec<Route> {
        match self {
            ProviderOutcome::Complete(routes) => routes,
            ProviderOutcome::Interrupted { partial } => partial,
        }
    }

    /// Whether the call was cut short by its budget.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, ProviderOutcome::Interrupted { .. })
    }
}

/// A technique that answers alternative-route queries.
pub trait AlternativesProvider: Send + Sync {
    /// Which approach this is.
    fn kind(&self) -> ProviderKind;

    /// Computes up to `query.k` routes from `source` to `target`.
    ///
    /// `public_weights` are the OSM-derived travel times used for display;
    /// a provider may optimize on different internal data, but the returned
    /// routes are always priced on the public weights.
    fn alternatives(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
    ) -> Result<Vec<Route>, CoreError> {
        self.alternatives_with_budget(
            net,
            public_weights,
            source,
            target,
            query,
            &SearchBudget::unlimited(),
        )
        .map(|outcome| outcome.routes())
    }

    /// Like [`AlternativesProvider::alternatives`] but under a cooperative
    /// [`SearchBudget`]: every internal search polls `budget`, and a trip
    /// mid-call yields [`ProviderOutcome::Interrupted`] carrying the
    /// routes admitted so far rather than an error.
    fn alternatives_with_budget(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
    ) -> Result<ProviderOutcome, CoreError>;

    /// Like [`AlternativesProvider::alternatives_with_budget`], but
    /// handed an optional per-request [`ProviderContext`] carrying
    /// shared search artifacts
    /// ([`crate::substrate::SearchSubstrate`]).
    ///
    /// Providers that can reuse the substrate skip the corresponding
    /// searches — Plateaus and Dissimilarity take the tree pair, Penalty
    /// takes the base route. The Google-like provider keeps the default:
    /// its search runs on *private* weights, so the substrate's trees
    /// (built on the public overlay) would be wrong for it; only the
    /// shared OSM re-costing pass (pricing via [`Route::new`]) applies.
    /// The default — and every provider handed an empty or mismatched
    /// context — delegates to the self-computing path, so the routes
    /// returned are byte-identical either way.
    #[allow(clippy::too_many_arguments)]
    fn alternatives_in_context(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
        ctx: &ProviderContext<'_>,
    ) -> Result<ProviderOutcome, CoreError> {
        let _ = ctx;
        self.alternatives_with_budget(net, public_weights, source, target, query, budget)
    }
}

/// Prices accepted paths on the public weights and wraps them in the
/// call's outcome, recording the admission and interruption counters —
/// the shared epilogue of every local provider, on both the
/// self-computing and the substrate-fed path.
fn price_outcome(
    metrics: &TechniqueMetrics,
    public_weights: &[Weight],
    paths: Vec<Path>,
    interrupted: bool,
) -> ProviderOutcome {
    metrics.admitted.add(paths.len() as u64);
    let routes: Vec<Route> = paths
        .into_iter()
        .map(|p| Route::new(p, public_weights))
        .collect();
    if interrupted {
        metrics.interrupted.inc();
        ProviderOutcome::Interrupted { partial: routes }
    } else {
        ProviderOutcome::Complete(routes)
    }
}

/// The Plateaus provider.
#[derive(Clone, Debug, Default)]
pub struct PlateauProvider {
    /// Algorithm options.
    pub options: PlateauOptions,
    metrics: TechniqueMetrics,
}

impl PlateauProvider {
    /// Attaches per-technique metrics resolved from `registry`
    /// (label `technique="plateaus"`).
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = TechniqueMetrics::new(registry, ProviderKind::Plateaus.slug());
        self
    }
}

impl AlternativesProvider for PlateauProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::Plateaus
    }

    fn alternatives_with_budget(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
    ) -> Result<ProviderOutcome, CoreError> {
        let _timer = self.metrics.begin_call();
        let mut ws = SearchSpace::new(net);
        ws.set_metrics(self.metrics.search().clone());
        ws.set_budget(budget.clone());
        let mut stats = PlateauStats::default();
        let result = plateau_alternatives_observed(
            &mut ws,
            net,
            public_weights,
            source,
            target,
            query,
            &self.options,
            &mut stats,
        );
        self.metrics.record_plateau(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        Ok(price_outcome(
            &self.metrics,
            public_weights,
            paths,
            stats.interrupted,
        ))
    }

    fn alternatives_in_context(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
        ctx: &ProviderContext<'_>,
    ) -> Result<ProviderOutcome, CoreError> {
        // Reuse the substrate's forward/backward tree pair; a missing or
        // mismatched substrate falls back to growing our own.
        let Some(sub) = ctx.substrate_for(net, source, target) else {
            return self.alternatives_with_budget(
                net,
                public_weights,
                source,
                target,
                query,
                budget,
            );
        };
        let _timer = self.metrics.begin_call();
        let mut stats = PlateauStats::default();
        let result = plateau_alternatives_from_trees(
            net,
            public_weights,
            query,
            &self.options,
            &mut stats,
            sub.forward(),
            sub.backward(),
            budget,
        );
        self.metrics.record_plateau(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        Ok(price_outcome(
            &self.metrics,
            public_weights,
            paths,
            stats.interrupted,
        ))
    }
}

/// The Penalty provider.
#[derive(Clone, Debug, Default)]
pub struct PenaltyProvider {
    /// Algorithm options.
    pub options: PenaltyOptions,
    metrics: TechniqueMetrics,
}

impl PenaltyProvider {
    /// Attaches per-technique metrics resolved from `registry`
    /// (label `technique="penalty"`).
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = TechniqueMetrics::new(registry, ProviderKind::Penalty.slug());
        self
    }
}

impl AlternativesProvider for PenaltyProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::Penalty
    }

    fn alternatives_with_budget(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
    ) -> Result<ProviderOutcome, CoreError> {
        let _timer = self.metrics.begin_call();
        let mut ws = SearchSpace::new(net);
        ws.set_metrics(self.metrics.search().clone());
        ws.set_budget(budget.clone());
        let mut stats = PenaltyStats::default();
        let result = penalty_alternatives_observed(
            &mut ws,
            net,
            public_weights,
            source,
            target,
            query,
            &self.options,
            &mut stats,
        );
        self.metrics.record_penalty(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        Ok(price_outcome(
            &self.metrics,
            public_weights,
            paths,
            stats.interrupted,
        ))
    }

    fn alternatives_in_context(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
        ctx: &ProviderContext<'_>,
    ) -> Result<ProviderOutcome, CoreError> {
        // Reuse the substrate's base optimal route as iteration zero; the
        // penalized re-searches still run here, under this call's budget.
        let Some(sub) = ctx.substrate_for(net, source, target) else {
            return self.alternatives_with_budget(
                net,
                public_weights,
                source,
                target,
                query,
                budget,
            );
        };
        let _timer = self.metrics.begin_call();
        let mut ws = SearchSpace::new(net);
        ws.set_metrics(self.metrics.search().clone());
        ws.set_budget(budget.clone());
        let mut stats = PenaltyStats::default();
        let result = penalty_alternatives_from_base(
            &mut ws,
            net,
            public_weights,
            source,
            target,
            query,
            &self.options,
            &mut stats,
            sub.base_route(),
        );
        self.metrics.record_penalty(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        Ok(price_outcome(
            &self.metrics,
            public_weights,
            paths,
            stats.interrupted,
        ))
    }
}

/// The Dissimilarity (SSVP-D+) provider.
#[derive(Clone, Debug, Default)]
pub struct DissimilarityProvider {
    /// Algorithm options.
    pub options: DissimilarityOptions,
    metrics: TechniqueMetrics,
}

impl DissimilarityProvider {
    /// Attaches per-technique metrics resolved from `registry`
    /// (label `technique="dissimilarity"`).
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = TechniqueMetrics::new(registry, ProviderKind::Dissimilarity.slug());
        self
    }
}

impl AlternativesProvider for DissimilarityProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::Dissimilarity
    }

    fn alternatives_with_budget(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
    ) -> Result<ProviderOutcome, CoreError> {
        let _timer = self.metrics.begin_call();
        let mut ws = SearchSpace::new(net);
        ws.set_metrics(self.metrics.search().clone());
        ws.set_budget(budget.clone());
        let mut stats = DissimilarityStats::default();
        let result = dissimilarity_alternatives_observed(
            &mut ws,
            net,
            public_weights,
            source,
            target,
            query,
            &self.options,
            &mut stats,
        );
        self.metrics.record_dissimilarity(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        Ok(price_outcome(
            &self.metrics,
            public_weights,
            paths,
            stats.interrupted,
        ))
    }

    fn alternatives_in_context(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
        ctx: &ProviderContext<'_>,
    ) -> Result<ProviderOutcome, CoreError> {
        // Reuse the substrate's tree pair for the via-node sweep's
        // distance arrays; a missing or mismatched substrate falls back
        // to growing our own.
        let Some(sub) = ctx.substrate_for(net, source, target) else {
            return self.alternatives_with_budget(
                net,
                public_weights,
                source,
                target,
                query,
                budget,
            );
        };
        let _timer = self.metrics.begin_call();
        let mut stats = DissimilarityStats::default();
        let result = dissimilarity_alternatives_from_trees(
            net,
            public_weights,
            query,
            &self.options,
            &mut stats,
            sub.forward(),
            sub.backward(),
            budget,
        );
        self.metrics.record_dissimilarity(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        Ok(price_outcome(
            &self.metrics,
            public_weights,
            paths,
            stats.interrupted,
        ))
    }
}

/// Builds the study's four providers in A–D order. `seed` parameterizes the
/// Google-like provider's private traffic data.
pub fn standard_providers(net: &RoadNetwork, seed: u64) -> Vec<Box<dyn AlternativesProvider>> {
    vec![
        Box::new(GoogleLikeProvider::new(net, seed)),
        Box::new(PlateauProvider::default()),
        Box::new(DissimilarityProvider::default()),
        Box::new(PenaltyProvider::default()),
    ]
}

/// Like [`standard_providers`] but with every provider recording per-call
/// metrics (calls, latency, candidate funnel, search counters) into
/// `registry` under its `technique` label. Passing
/// [`Registry::disabled()`] yields exactly [`standard_providers`].
pub fn instrumented_providers(
    net: &RoadNetwork,
    seed: u64,
    registry: &Registry,
) -> Vec<Box<dyn AlternativesProvider>> {
    vec![
        Box::new(GoogleLikeProvider::new(net, seed).with_metrics(registry)),
        Box::new(PlateauProvider::default().with_metrics(registry)),
        Box::new(DissimilarityProvider::default().with_metrics(registry)),
        Box::new(PenaltyProvider::default().with_metrics(registry)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn provider_kinds_are_in_paper_order() {
        assert_eq!(ProviderKind::ALL[0].name(), "Google Maps");
        assert_eq!(ProviderKind::ALL[1].name(), "Plateaus");
        assert_eq!(ProviderKind::ALL[2].name(), "Dissimilarity");
        assert_eq!(ProviderKind::ALL[3].name(), "Penalty");
    }

    #[test]
    fn all_four_providers_answer_queries() {
        let net = grid(8);
        let providers = standard_providers(&net, 42);
        assert_eq!(providers.len(), 4);
        let q = AltQuery::paper();
        for p in &providers {
            let routes = p
                .alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.kind()));
            assert!(!routes.is_empty(), "{} returned nothing", p.kind());
            assert!(routes.len() <= q.k);
            for r in &routes {
                assert!(r.path.validate(&net));
                assert_eq!(r.public_cost_ms, r.path.cost_under(net.weights()));
            }
        }
    }

    #[test]
    fn instrumented_providers_record_calls_and_search_work() {
        let net = grid(8);
        let reg = Registry::new();
        let providers = instrumented_providers(&net, 42, &reg);
        let q = AltQuery::paper();
        for p in &providers {
            p.alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
                .unwrap();
        }
        for kind in ProviderKind::ALL {
            let labels = &[("technique", kind.slug())][..];
            assert_eq!(
                reg.counter_value("arp_technique_calls_total", labels),
                1,
                "{kind}"
            );
            assert!(
                reg.counter_value("arp_search_settled_nodes_total", labels) > 0,
                "{kind} recorded no search work"
            );
            assert!(
                reg.counter_value("arp_search_heap_pops_total", labels) > 0,
                "{kind} recorded no heap pops"
            );
            assert_eq!(reg.counter_value("arp_technique_errors_total", labels), 0);
        }
        // Technique-specific internals fired too.
        assert!(reg.counter_value("arp_penalty_iterations_total", &[("technique", "penalty")]) > 0);
        assert!(reg.counter_value("arp_plateau_found_total", &[("technique", "plateaus")]) > 0);
        // The whole store renders as Prometheus text.
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE arp_technique_latency_ms histogram"));
        assert!(text.contains(r#"arp_technique_calls_total{technique="penalty"} 1"#));
    }

    #[test]
    fn uninstrumented_providers_record_nothing() {
        let net = grid(6);
        let providers = standard_providers(&net, 7);
        let q = AltQuery::paper();
        for p in &providers {
            p.alternatives(&net, net.weights(), NodeId(0), NodeId(35), &q)
                .unwrap();
        }
        // Nothing to assert against a registry — the point is simply that
        // the detached path works and stays panic-free.
    }

    #[test]
    fn interrupted_calls_count_as_interrupted_not_errors() {
        let net = grid(8);
        let reg = Registry::new();
        let providers = instrumented_providers(&net, 42, &reg);
        let q = AltQuery::paper();
        for p in &providers {
            // A pre-cancelled budget: every provider must return an
            // Interrupted outcome (with whatever partial it has), not Err.
            let budget = SearchBudget::new();
            budget.cancel();
            let outcome = p
                .alternatives_with_budget(&net, net.weights(), NodeId(0), NodeId(63), &q, &budget)
                .unwrap_or_else(|e| panic!("{} errored on cancellation: {e}", p.kind()));
            assert!(outcome.is_interrupted(), "{}", p.kind());
            assert!(outcome.routes().is_empty(), "nothing was admitted");
        }
        for kind in ProviderKind::ALL {
            let labels = &[("technique", kind.slug())][..];
            assert_eq!(
                reg.counter_value("arp_technique_interrupted_total", labels),
                1,
                "{kind}"
            );
            assert_eq!(
                reg.counter_value("arp_technique_errors_total", labels),
                0,
                "{kind}"
            );
        }
    }

    #[test]
    fn budgeted_outcome_matches_unbudgeted_routes_when_unlimited() {
        let net = grid(8);
        let q = AltQuery::paper();
        for p in standard_providers(&net, 42) {
            let direct = p
                .alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
                .unwrap();
            let outcome = p
                .alternatives_with_budget(
                    &net,
                    net.weights(),
                    NodeId(0),
                    NodeId(63),
                    &q,
                    &SearchBudget::unlimited(),
                )
                .unwrap();
            assert!(!outcome.is_interrupted());
            let routes = outcome.routes();
            assert_eq!(routes.len(), direct.len(), "{}", p.kind());
            for (a, b) in routes.iter().zip(direct.iter()) {
                assert_eq!(a.path.edges, b.path.edges, "{}", p.kind());
            }
        }
    }

    #[test]
    fn public_costs_bound_by_stretch_for_local_techniques() {
        let net = grid(8);
        let q = AltQuery::paper();
        let best = crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(63))
            .unwrap()
            .cost_ms;
        for p in standard_providers(&net, 1) {
            if p.kind() == ProviderKind::GoogleLike {
                continue; // Google optimizes on different data; see Fig. 4.
            }
            let routes = p
                .alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
                .unwrap();
            for r in &routes {
                assert!(
                    r.public_cost_ms <= q.cost_bound(best),
                    "{}: {} > bound",
                    p.kind(),
                    r.public_cost_ms
                );
            }
        }
    }
}
