//! Route providers: the four approaches compared by the user study.
//!
//! A [`AlternativesProvider`] answers an alternative-routes query with a
//! list of [`Route`]s whose travel times are always priced on the *public*
//! (OpenStreetMap) weights — mirroring the paper's query processor, which
//! displays OSM-derived travel times for every approach including Google
//! Maps (§3).

pub mod google_like;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::Weight;

use crate::dissimilarity::{dissimilarity_alternatives, DissimilarityOptions};
use crate::error::CoreError;
use crate::penalty::{penalty_alternatives, PenaltyOptions};
use crate::plateau::{plateau_alternatives, PlateauOptions};
use crate::query::{AltQuery, Route};

pub use google_like::{GoogleLikeProvider, TrafficModel};

/// Identity of an approach, in the paper's A–D presentation order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProviderKind {
    /// A commercial-style provider optimizing on its own (different) data —
    /// the stand-in for Google Maps.
    GoogleLike,
    /// The Plateaus technique (Choice Routing).
    Plateaus,
    /// The Dissimilarity technique (SSVP-D+).
    Dissimilarity,
    /// The Penalty technique.
    Penalty,
}

impl ProviderKind {
    /// All four approaches in the paper's fixed order
    /// (A: Google Maps, B: Plateaus, C: Dissimilarity, D: Penalty).
    pub const ALL: [ProviderKind; 4] = [
        ProviderKind::GoogleLike,
        ProviderKind::Plateaus,
        ProviderKind::Dissimilarity,
        ProviderKind::Penalty,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ProviderKind::GoogleLike => "Google Maps",
            ProviderKind::Plateaus => "Plateaus",
            ProviderKind::Dissimilarity => "Dissimilarity",
            ProviderKind::Penalty => "Penalty",
        }
    }
}

impl std::fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A technique that answers alternative-route queries.
pub trait AlternativesProvider: Send + Sync {
    /// Which approach this is.
    fn kind(&self) -> ProviderKind;

    /// Computes up to `query.k` routes from `source` to `target`.
    ///
    /// `public_weights` are the OSM-derived travel times used for display;
    /// a provider may optimize on different internal data, but the returned
    /// routes are always priced on the public weights.
    fn alternatives(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
    ) -> Result<Vec<Route>, CoreError>;
}

/// The Plateaus provider.
#[derive(Clone, Debug, Default)]
pub struct PlateauProvider {
    /// Algorithm options.
    pub options: PlateauOptions,
}

impl AlternativesProvider for PlateauProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::Plateaus
    }

    fn alternatives(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
    ) -> Result<Vec<Route>, CoreError> {
        let paths =
            plateau_alternatives(net, public_weights, source, target, query, &self.options)?;
        Ok(paths
            .into_iter()
            .map(|p| Route::new(p, public_weights))
            .collect())
    }
}

/// The Penalty provider.
#[derive(Clone, Debug, Default)]
pub struct PenaltyProvider {
    /// Algorithm options.
    pub options: PenaltyOptions,
}

impl AlternativesProvider for PenaltyProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::Penalty
    }

    fn alternatives(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
    ) -> Result<Vec<Route>, CoreError> {
        let paths =
            penalty_alternatives(net, public_weights, source, target, query, &self.options)?;
        Ok(paths
            .into_iter()
            .map(|p| Route::new(p, public_weights))
            .collect())
    }
}

/// The Dissimilarity (SSVP-D+) provider.
#[derive(Clone, Debug, Default)]
pub struct DissimilarityProvider {
    /// Algorithm options.
    pub options: DissimilarityOptions,
}

impl AlternativesProvider for DissimilarityProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::Dissimilarity
    }

    fn alternatives(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
    ) -> Result<Vec<Route>, CoreError> {
        let paths =
            dissimilarity_alternatives(net, public_weights, source, target, query, &self.options)?;
        Ok(paths
            .into_iter()
            .map(|p| Route::new(p, public_weights))
            .collect())
    }
}

/// Builds the study's four providers in A–D order. `seed` parameterizes the
/// Google-like provider's private traffic data.
pub fn standard_providers(net: &RoadNetwork, seed: u64) -> Vec<Box<dyn AlternativesProvider>> {
    vec![
        Box::new(GoogleLikeProvider::new(net, seed)),
        Box::new(PlateauProvider::default()),
        Box::new(DissimilarityProvider::default()),
        Box::new(PenaltyProvider::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn provider_kinds_are_in_paper_order() {
        assert_eq!(ProviderKind::ALL[0].name(), "Google Maps");
        assert_eq!(ProviderKind::ALL[1].name(), "Plateaus");
        assert_eq!(ProviderKind::ALL[2].name(), "Dissimilarity");
        assert_eq!(ProviderKind::ALL[3].name(), "Penalty");
    }

    #[test]
    fn all_four_providers_answer_queries() {
        let net = grid(8);
        let providers = standard_providers(&net, 42);
        assert_eq!(providers.len(), 4);
        let q = AltQuery::paper();
        for p in &providers {
            let routes = p
                .alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.kind()));
            assert!(!routes.is_empty(), "{} returned nothing", p.kind());
            assert!(routes.len() <= q.k);
            for r in &routes {
                assert!(r.path.validate(&net));
                assert_eq!(r.public_cost_ms, r.path.cost_under(net.weights()));
            }
        }
    }

    #[test]
    fn public_costs_bound_by_stretch_for_local_techniques() {
        let net = grid(8);
        let q = AltQuery::paper();
        let best = crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(63))
            .unwrap()
            .cost_ms;
        for p in standard_providers(&net, 1) {
            if p.kind() == ProviderKind::GoogleLike {
                continue; // Google optimizes on different data; see Fig. 4.
            }
            let routes = p
                .alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
                .unwrap();
            for r in &routes {
                assert!(
                    r.public_cost_ms <= q.cost_bound(best),
                    "{}: {} > bound",
                    p.kind(),
                    r.public_cost_ms
                );
            }
        }
    }
}
