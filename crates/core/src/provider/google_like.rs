//! A commercial-style provider that optimizes on **its own traffic data**.
//!
//! The paper could not make Google Maps use OpenStreetMap data, and
//! identifies that mismatch as the dominant uncontrolled factor of the
//! study (§4.2, Fig. 4): a route optimal under Google's travel times can
//! look slow and detour-laden when priced with OSM times, and vice versa.
//!
//! [`GoogleLikeProvider`] reproduces that mechanism. It derives a private
//! per-edge travel-time table from the public one via a deterministic
//! [`TrafficModel`] (smooth corridor-level congestion + per-edge noise —
//! the structure matters: spatially correlated differences flip route
//! choices, i.i.d. noise would average out over a long path). Routes are
//! computed on the private table with the extra "commercial" filters from
//! §4.2 (overlap pruning, local optimality, comfort ranking), then priced
//! on the public weights by the caller like every other provider.

use std::borrow::Cow;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::Point;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Weight, CLOSED};

use crate::error::CoreError;
use crate::filters::{apply_filters, FilterConfig};
use crate::metrics::TechniqueMetrics;
use crate::plateau::{plateau_alternatives_observed, PlateauOptions, PlateauStats};
use crate::query::{AltQuery, Route};
use crate::search::SearchSpace;

use super::{AlternativesProvider, ProviderKind, ProviderOutcome};
use crate::budget::SearchBudget;

/// Deterministic synthetic traffic model producing a private copy of the
/// edge weights.
#[derive(Clone, Copy, Debug)]
pub struct TrafficModel {
    /// Seed of the model (phases and noise derive from it).
    pub seed: u64,
    /// Amplitude of the smooth corridor-level congestion field (`0.2` means
    /// ±20 % swings across town).
    pub corridor_amplitude: f64,
    /// Amplitude of the per-edge noise.
    pub edge_noise_amplitude: f64,
    /// Time-of-day congestion level in `[0, 1]`: 0 = free flow (3 am,
    /// where the study queries Google's API), 1 = peak hour. Congestion
    /// adds a directional slowdown on arterials and surface streets on top
    /// of the data-source mismatch.
    pub congestion: f64,
}

impl TrafficModel {
    /// The default model: ±18 % corridor swings, ±8 % edge noise — enough
    /// to flip marginal route choices without changing the network's
    /// large-scale structure (the study queries at 3 am to avoid congestion,
    /// but the *estimates* still differ between data sources).
    pub fn new(seed: u64) -> TrafficModel {
        TrafficModel {
            seed,
            corridor_amplitude: 0.18,
            edge_noise_amplitude: 0.08,
            congestion: 0.0,
        }
    }

    /// The model at a given time of day, as hour-of-day in `[0, 24)`.
    /// Congestion follows a double-peak commuter profile (8 am / 5 pm);
    /// 3 am — the study's query time — is free flow.
    pub fn at_hour(seed: u64, hour: f64) -> TrafficModel {
        let morning = (-((hour - 8.0) / 2.0).powi(2)).exp();
        let evening = (-((hour - 17.0) / 2.5).powi(2)).exp();
        TrafficModel {
            congestion: (morning + evening).min(1.0),
            ..Self::new(seed)
        }
    }

    /// SplitMix64 — deterministic, platform-independent hash.
    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn hash01(&self, v: u64) -> f64 {
        (Self::splitmix(self.seed ^ v) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The private/public factor for an edge with the given id and
    /// midpoint, normalized into the unit square of the network bbox.
    pub fn factor(&self, edge: EdgeId, unit_x: f64, unit_y: f64) -> f64 {
        let phase1 = self.hash01(0xA11CE) * std::f64::consts::TAU;
        let phase2 = self.hash01(0xB0B) * std::f64::consts::TAU;
        let corridor = (unit_x * 3.0 * std::f64::consts::TAU + phase1).sin()
            * (unit_y * 2.0 * std::f64::consts::TAU + phase2).sin();
        let noise = self.hash01(edge.0 as u64) * 2.0 - 1.0;
        let f = 1.0 + self.corridor_amplitude * corridor + self.edge_noise_amplitude * noise;
        f.max(0.5)
    }

    /// Congestion slowdown for an edge at unit position `(ux, uy)`:
    /// strongest on arterials near the city centre, mild on freeways,
    /// mildest on residential streets (peak traffic concentrates on the
    /// main corridors).
    pub fn congestion_factor(
        &self,
        category: arp_roadnet::category::RoadCategory,
        ux: f64,
        uy: f64,
    ) -> f64 {
        if self.congestion <= 0.0 {
            return 1.0;
        }
        use arp_roadnet::category::RoadCategory as C;
        let severity = match category {
            C::Motorway | C::MotorwayLink => 0.7,
            C::Trunk | C::Primary | C::Secondary => 0.9,
            C::Tertiary => 0.5,
            C::Residential | C::Unclassified | C::Service => 0.35,
        };
        // CBD proximity: congestion decays with distance from the centre.
        let d2 = (ux - 0.5).powi(2) + (uy - 0.5).powi(2);
        let central = (-d2 * 6.0).exp();
        1.0 + self.congestion * severity * (0.4 + 0.6 * central)
    }

    /// Builds the private weight table for `net` from its public weights.
    pub fn private_weights(&self, net: &RoadNetwork) -> Vec<Weight> {
        let bb = net.bbox();
        let w = bb.width_deg().max(1e-9);
        let h = bb.height_deg().max(1e-9);
        net.edges()
            .map(|e| {
                let mid = midpoint(net, e);
                let ux = (mid.lon - bb.min_lon) / w;
                let uy = (mid.lat - bb.min_lat) / h;
                let f = self.factor(e, ux, uy) * self.congestion_factor(net.category(e), ux, uy);
                let priv_w = (net.weight(e) as f64 * f).round();
                (priv_w.max(1.0) as Weight).min(u32::MAX - 1)
            })
            .collect()
    }
}

fn midpoint(net: &RoadNetwork, e: EdgeId) -> Point {
    let a = net.point(net.tail(e));
    let b = net.point(net.head(e));
    a.lerp(&b, 0.5)
}

/// The Google-Maps stand-in provider (see module docs).
pub struct GoogleLikeProvider {
    /// Private travel-time table indexed by `EdgeId`.
    private_weights: Vec<Weight>,
    /// Options of the underlying route computation.
    plateau_options: PlateauOptions,
    /// Commercial post-filters (§4.2 limitation #4).
    filters: FilterConfig,
    /// Per-technique metrics (detached unless attached via `with_metrics`).
    metrics: TechniqueMetrics,
}

impl GoogleLikeProvider {
    /// Builds the provider for `net` with the default traffic model.
    pub fn new(net: &RoadNetwork, seed: u64) -> GoogleLikeProvider {
        Self::with_model(net, TrafficModel::new(seed))
    }

    /// Builds the provider with an explicit traffic model.
    pub fn with_model(net: &RoadNetwork, model: TrafficModel) -> GoogleLikeProvider {
        GoogleLikeProvider {
            private_weights: model.private_weights(net),
            plateau_options: PlateauOptions {
                max_similarity: 0.8,
                min_plateau_fraction: 0.01,
            },
            filters: FilterConfig::commercial(),
            metrics: TechniqueMetrics::default(),
        }
    }

    /// Attaches per-technique metrics resolved from `registry`
    /// (label `technique="google_like"`).
    pub fn with_metrics(mut self, registry: &arp_obs::Registry) -> Self {
        self.metrics = TechniqueMetrics::new(registry, ProviderKind::GoogleLike.slug());
        self
    }

    /// The provider's private travel-time table (for experiments that need
    /// to price routes "the way Google sees them", as Fig. 4 does).
    pub fn private_weights(&self) -> &[Weight] {
        &self.private_weights
    }
}

impl AlternativesProvider for GoogleLikeProvider {
    fn kind(&self) -> ProviderKind {
        ProviderKind::GoogleLike
    }

    fn alternatives_with_budget(
        &self,
        net: &RoadNetwork,
        public_weights: &[Weight],
        source: NodeId,
        target: NodeId,
        query: &AltQuery,
        budget: &SearchBudget,
    ) -> Result<ProviderOutcome, CoreError> {
        if self.private_weights.len() != net.num_edges() {
            self.metrics.errors.inc();
            return Err(CoreError::WeightLengthMismatch {
                expected: net.num_edges(),
                got: self.private_weights.len(),
            });
        }
        let _timer = self.metrics.begin_call();
        // Closures are physical ground truth, not a travel-time estimate:
        // an edge hard-closed in the public column (a live-traffic
        // incident) is closed for this provider too, even though its
        // *factors* diverge — a commercial provider disagrees about how
        // slow a road is, not about whether it exists. Without closures
        // the private table is borrowed untouched, keeping the
        // no-overlay path byte-identical to the pre-traffic pipeline.
        let private: Cow<'_, [Weight]> = if public_weights.contains(&CLOSED) {
            Cow::Owned(
                self.private_weights
                    .iter()
                    .zip(public_weights)
                    .map(|(&p, &pub_w)| if pub_w == CLOSED { CLOSED } else { p })
                    .collect(),
            )
        } else {
            Cow::Borrowed(self.private_weights.as_slice())
        };
        let mut ws = SearchSpace::new(net);
        ws.set_metrics(self.metrics.search().clone());
        ws.set_budget(budget.clone());
        // Optimize on the PRIVATE data…
        let mut stats = PlateauStats::default();
        let result = plateau_alternatives_observed(
            &mut ws,
            net,
            &private,
            source,
            target,
            query,
            &self.plateau_options,
            &mut stats,
        );
        self.metrics.record_plateau(&stats);
        let paths = match result {
            Ok(paths) => paths,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        // The commercial post-filters probe local optimality with extra
        // point-to-point searches; skip them on an interrupted call and
        // serve the raw partial instead.
        let paths = if stats.interrupted {
            paths
        } else {
            apply_filters(net, &private, paths, query.k, &self.filters)
        };
        self.metrics.admitted.add(paths.len() as u64);
        // …but report routes priced on the public data, like the paper's
        // query processor does for Google's routes.
        let routes: Vec<Route> = paths
            .into_iter()
            .map(|p| Route::new(p, public_weights))
            .collect();
        if stats.interrupted {
            self.metrics.interrupted.inc();
            Ok(ProviderOutcome::Interrupted { partial: routes })
        } else {
            Ok(ProviderOutcome::Complete(routes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn traffic_model_is_deterministic() {
        let net = grid(6);
        let a = TrafficModel::new(7).private_weights(&net);
        let b = TrafficModel::new(7).private_weights(&net);
        assert_eq!(a, b);
        let c = TrafficModel::new(8).private_weights(&net);
        assert_ne!(a, c);
    }

    #[test]
    fn private_weights_deviate_but_moderately() {
        let net = grid(8);
        let private = TrafficModel::new(3).private_weights(&net);
        let mut ratio_sum = 0.0;
        let mut differing = 0usize;
        for e in net.edges() {
            let r = private[e.index()] as f64 / net.weight(e) as f64;
            assert!(r > 0.5 && r < 1.6, "ratio {r} out of range");
            ratio_sum += r;
            if private[e.index()] != net.weight(e) {
                differing += 1;
            }
        }
        let mean = ratio_sum / net.num_edges() as f64;
        assert!((mean - 1.0).abs() < 0.15, "mean ratio {mean}");
        assert!(differing > net.num_edges() / 2);
    }

    #[test]
    fn provider_answers_and_prices_publicly() {
        let net = grid(8);
        let p = GoogleLikeProvider::new(&net, 99);
        let q = AltQuery::paper();
        let routes = p
            .alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q)
            .unwrap();
        assert!(!routes.is_empty());
        for r in &routes {
            assert_eq!(r.public_cost_ms, r.path.cost_under(net.weights()));
        }
    }

    #[test]
    fn routes_are_optimal_privately_not_necessarily_publicly() {
        // The Fig. 4 mechanism: Google's first route is the best under its
        // own data, but may be beaten under public data.
        let net = grid(10);
        let provider = GoogleLikeProvider::new(&net, 5);
        let q = AltQuery::paper();
        let mut found_mismatch = false;
        for (s, t) in [(0u32, 99u32), (9, 90), (5, 94), (50, 49), (0, 90)] {
            let Ok(routes) = provider.alternatives(&net, net.weights(), NodeId(s), NodeId(t), &q)
            else {
                continue;
            };
            let public_best =
                crate::search::shortest_path(&net, net.weights(), NodeId(s), NodeId(t))
                    .unwrap()
                    .cost_ms;
            // Private-first route: optimal under private weights.
            let private_best = crate::search::shortest_path(
                &net,
                provider.private_weights(),
                NodeId(s),
                NodeId(t),
            )
            .unwrap();
            assert_eq!(
                routes[0].path.cost_under(provider.private_weights()),
                private_best.cost_ms,
                "google-first must be privately optimal"
            );
            if routes[0].public_cost_ms > public_best {
                found_mismatch = true;
            }
        }
        assert!(
            found_mismatch,
            "traffic model too weak: no route choice ever flipped"
        );
    }

    /// A hard closure in the public column (a live-traffic incident) binds
    /// the private search too: the provider disagrees about travel times,
    /// never about whether a road physically exists.
    #[test]
    fn public_closures_bind_the_private_search() {
        use arp_roadnet::weight::CLOSED;

        let net = grid(4);
        let p = GoogleLikeProvider::new(&net, 99);
        let q = AltQuery::paper();
        let target = NodeId(15);
        let mut weights = net.weights().to_vec();
        for e in net.edges() {
            if net.head(e) == target {
                weights[e.index()] = CLOSED;
            }
        }
        assert!(
            p.alternatives(&net, &weights, NodeId(0), target, &q)
                .is_err(),
            "all roads into the target are closed; the private table must not route"
        );
        // And with no closures present the private table is untouched —
        // routes match the closure-free call exactly.
        let plain = p.alternatives(&net, net.weights(), NodeId(0), target, &q);
        let again = p.alternatives(&net, net.weights(), NodeId(0), target, &q);
        assert_eq!(plain.unwrap(), again.unwrap());
    }

    #[test]
    fn mismatched_network_rejected() {
        let net = grid(4);
        let other = grid(5);
        let p = GoogleLikeProvider::new(&net, 1);
        assert!(matches!(
            p.alternatives(
                &other,
                other.weights(),
                NodeId(0),
                NodeId(24),
                &AltQuery::paper()
            ),
            Err(CoreError::WeightLengthMismatch { .. })
        ));
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;

    fn two_edge_net() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(144.0, -37.0));
        let c = b.add_node(Point::new(144.01, -37.0));
        b.add_bidirectional(a, c, EdgeSpec::category(RoadCategory::Primary));
        b.build()
    }

    #[test]
    fn hour_profile_peaks_at_commute_times() {
        let night = TrafficModel::at_hour(1, 3.0);
        let morning = TrafficModel::at_hour(1, 8.0);
        let midday = TrafficModel::at_hour(1, 12.5);
        let evening = TrafficModel::at_hour(1, 17.0);
        assert!(night.congestion < 0.05, "{}", night.congestion);
        assert!(morning.congestion > 0.9);
        assert!(evening.congestion > 0.9);
        assert!(midday.congestion < morning.congestion);
        assert!(midday.congestion > night.congestion);
    }

    #[test]
    fn congestion_scales_private_weights_up() {
        let net = two_edge_net();
        let free = TrafficModel::at_hour(7, 3.0).private_weights(&net);
        let peak = TrafficModel::at_hour(7, 8.0).private_weights(&net);
        for e in net.edges() {
            assert!(peak[e.index()] > free[e.index()], "{e:?}");
        }
    }

    #[test]
    fn congestion_hits_arterials_hardest() {
        let m = TrafficModel {
            congestion: 1.0,
            ..TrafficModel::new(0)
        };
        let arterial = m.congestion_factor(RoadCategory::Primary, 0.5, 0.5);
        let freeway = m.congestion_factor(RoadCategory::Motorway, 0.5, 0.5);
        let residential = m.congestion_factor(RoadCategory::Residential, 0.5, 0.5);
        assert!(arterial > freeway);
        assert!(freeway > residential);
        // Suburban arterial is less congested than the same road downtown.
        let suburban = m.congestion_factor(RoadCategory::Primary, 0.05, 0.05);
        assert!(suburban < arterial);
    }

    #[test]
    fn free_flow_congestion_is_identity() {
        let m = TrafficModel::new(4);
        assert_eq!(m.congestion_factor(RoadCategory::Primary, 0.5, 0.5), 1.0);
    }
}
