//! The shared **search substrate**: per-request artifacts every
//! technique would otherwise recompute.
//!
//! The paper's query processor answers each request by running four
//! alternative-route techniques on the same (source, target) pair, and
//! three of them start from the same raw material — Plateaus grows a
//! forward *and* a backward shortest-path tree, SSVP-D+ grows the same
//! pair, and Penalty (like ESX) starts from the base optimal route, which
//! is just the forward tree's path to the target. A [`SearchSubstrate`]
//! computes that material **once**: one forward tree, one backward tree,
//! the base route, and the build's [`SearchStats`] so serving layers can
//! account the cost exactly once per request.
//!
//! Techniques receive the substrate through an optional
//! [`ProviderContext`] (see
//! [`AlternativesProvider::alternatives_in_context`]); every provider
//! falls back to self-computing when no substrate is supplied, so
//! existing library callers are unaffected, and the substrate-fed path
//! is **byte-identical** to the self-computed one — the trees are built
//! by the same [`SearchSpace::shortest_path_tree`] the techniques call
//! themselves, and the base route reconstructed from the full forward
//! tree equals the early-terminated [`crate::shortest_path`] result
//! (every on-path vertex settles before the target does, because edge
//! weights are clamped ≥ 1 ms). The property tests in
//! `crates/core/tests/proptests.rs` pin this equivalence down.
//!
//! The build cooperates with cancellation: it runs under a
//! [`SearchBudget`], and a trip mid-build surfaces as
//! [`CoreError::Interrupted`] so the caller can abort the request or
//! fall back to per-lane self-computation.
//!
//! [`AlternativesProvider::alternatives_in_context`]:
//!     crate::provider::AlternativesProvider::alternatives_in_context
//! [`SearchSpace::shortest_path_tree`]:
//!     crate::search::SearchSpace::shortest_path_tree

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::{Cost, Weight, INFINITY};

use crate::budget::SearchBudget;
use crate::cch::{ChMetric, ChTopology};
use crate::error::CoreError;
use crate::metrics::SearchStats;
use crate::path::Path;
use crate::search::{canonical_tree_from_dists, Direction, SearchSpace, ShortestPathTree};

/// Per-request search artifacts shared read-only across techniques:
/// forward + backward shortest-path trees, the base optimal route, and
/// the build's work counters.
///
/// Built once per (source, target) pair by [`SearchSubstrate::build`]
/// and handed to the four technique drivers via [`ProviderContext`].
/// The artifact is tied to the weight overlay it was built on; callers
/// that query several overlays (e.g. the Google-like provider's private
/// weights) must not share one substrate across them —
/// [`SearchSubstrate::matches`] guards the structural part of that
/// contract (endpoints and network shape), the overlay identity is the
/// caller's responsibility.
#[derive(Clone, Debug)]
pub struct SearchSubstrate {
    source: NodeId,
    target: NodeId,
    num_nodes: usize,
    num_edges: usize,
    epoch: u64,
    forward: ShortestPathTree,
    backward: ShortestPathTree,
    base: Path,
    build_stats: SearchStats,
}

impl SearchSubstrate {
    /// Builds the substrate: forward tree from `source`, backward tree
    /// from `target`, base route reconstructed from the forward tree.
    ///
    /// Runs under `budget`; a trip mid-build returns
    /// [`CoreError::Interrupted`] (there is no useful partial substrate —
    /// half a tree helps no technique). Other failures mirror the
    /// techniques' own prologues: [`CoreError::SameSourceTarget`] for
    /// `source == target`, [`CoreError::Unreachable`] when the forward
    /// tree never reaches `target`.
    pub fn build(
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
        budget: &SearchBudget,
    ) -> Result<SearchSubstrate, CoreError> {
        if source == target {
            return Err(CoreError::SameSourceTarget(source));
        }
        let mut ws = SearchSpace::new(net);
        ws.set_budget(budget.clone());
        let forward = ws.shortest_path_tree(net, weights, source, Direction::Forward)?;
        let mut build_stats = ws.last_stats();
        if !forward.reached(target) {
            return Err(CoreError::Unreachable { source, target });
        }
        let backward = ws.shortest_path_tree(net, weights, target, Direction::Backward)?;
        build_stats.accumulate(&ws.last_stats());
        let edges = forward
            .path_edges(net, target)
            .expect("target reached in the forward tree");
        let base = Path::from_edges(net, weights, edges);
        Ok(SearchSubstrate {
            source,
            target,
            num_nodes: net.num_nodes(),
            num_edges: net.num_edges(),
            epoch: 0,
            forward,
            backward,
            base,
            build_stats,
        })
    }

    /// Builds the same substrate through the customizable-CH index tier
    /// ([`ChTopology`] + a [`ChMetric`] customized from **the same**
    /// `weights` column): two budgeted PHAST one-to-all passes produce
    /// the exact forward/backward distance arrays, and the trees are
    /// re-parented by the same canonical rule
    /// ([`crate::search::SearchSpace::shortest_path_tree`] uses it too),
    /// so the result is **byte-identical** to [`SearchSubstrate::build`]
    /// — same trees, same base route — while settling only the upward
    /// search cones instead of the whole graph twice.
    ///
    /// The caller owns the pairing contract: `metric` must be customized
    /// from `weights`. A metric from another epoch's column would produce
    /// wrong distances, which is why the serving tier's index manager
    /// only hands out a metric whose epoch stamp equals the request's
    /// pinned epoch.
    pub fn build_with_ch(
        net: &RoadNetwork,
        weights: &[Weight],
        topo: &ChTopology,
        metric: &ChMetric,
        source: NodeId,
        target: NodeId,
        budget: &SearchBudget,
    ) -> Result<SearchSubstrate, CoreError> {
        if source == target {
            return Err(CoreError::SameSourceTarget(source));
        }
        if !topo.matches(net) {
            // A mismatched topology cannot answer for this network;
            // treat it like a length mismatch rather than mis-routing.
            return Err(CoreError::WeightLengthMismatch {
                expected: net.num_edges(),
                got: weights.len(),
            });
        }
        let mut build_stats = SearchStats::default();
        let dist_f =
            topo.phast_distances(metric, source, Direction::Forward, budget, &mut build_stats)?;
        if dist_f[target.index()] == INFINITY {
            return Err(CoreError::Unreachable { source, target });
        }
        let dist_b = topo.phast_distances(
            metric,
            target,
            Direction::Backward,
            budget,
            &mut build_stats,
        )?;
        let forward = canonical_tree_from_dists(net, weights, source, Direction::Forward, dist_f);
        let backward = canonical_tree_from_dists(net, weights, target, Direction::Backward, dist_b);
        let edges = forward
            .path_edges(net, target)
            .expect("target reached in the forward tree");
        let base = Path::from_edges(net, weights, edges);
        Ok(SearchSubstrate {
            source,
            target,
            num_nodes: net.num_nodes(),
            num_edges: net.num_edges(),
            epoch: 0,
            forward,
            backward,
            base,
            build_stats,
        })
    }

    /// Stamps the substrate with the traffic **epoch** of the weight
    /// column it was built on (0 = the base, un-overlaid weights).
    /// [`SearchSubstrate::matches`] then rejects reuse across epochs,
    /// turning the "keep overlay and substrate paired" contract from a
    /// convention into a checked guard.
    pub fn with_epoch(mut self, epoch: u64) -> SearchSubstrate {
        self.epoch = epoch;
        self
    }

    /// The traffic epoch this substrate was built on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The request's source vertex (the forward tree's root).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The request's target vertex (the backward tree's root).
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The forward shortest-path tree rooted at the source.
    pub fn forward(&self) -> &ShortestPathTree {
        &self.forward
    }

    /// The backward shortest-path tree rooted at the target.
    pub fn backward(&self) -> &ShortestPathTree {
        &self.backward
    }

    /// The base optimal route, `sp(source, target)`. Byte-identical to
    /// what [`crate::shortest_path`] returns for the same overlay.
    pub fn base_route(&self) -> &Path {
        &self.base
    }

    /// Per-node forward distances `d(source → v)`
    /// ([`arp_roadnet::weight::INFINITY`] = unreached) — the pruning
    /// array via-node sweeps and Yen-style deviation searches consult.
    pub fn forward_distances(&self) -> &[Cost] {
        &self.forward.dist
    }

    /// Per-node backward distances `d(v → target)`.
    pub fn backward_distances(&self) -> &[Cost] {
        &self.backward.dist
    }

    /// Work counters of the substrate build (both tree searches
    /// accumulated) — what each reusing technique *saves*, and what the
    /// serving layer charges against the request exactly once.
    pub fn build_stats(&self) -> SearchStats {
        self.build_stats
    }

    /// Whether this substrate answers (`source`, `target`) on a network
    /// of the same shape **at `epoch`**. Providers call this before
    /// reusing an injected substrate and self-compute on a mismatch, so
    /// a stale or misrouted substrate degrades to correct (if slower)
    /// behaviour instead of wrong routes. The epoch check rejects
    /// cross-epoch reuse after a live-traffic tick; within one epoch the
    /// *weight overlay* is still not fingerprinted (that would cost O(E)
    /// per check) — keeping overlay and substrate paired is the
    /// supplier's contract.
    pub fn matches(&self, net: &RoadNetwork, source: NodeId, target: NodeId, epoch: u64) -> bool {
        self.source == source
            && self.target == target
            && self.num_nodes == net.num_nodes()
            && self.num_edges == net.num_edges()
            && self.epoch == epoch
    }
}

/// Optional per-call context handed to
/// [`crate::provider::AlternativesProvider::alternatives_in_context`].
///
/// Today it carries at most a [`SearchSubstrate`]; the struct exists so
/// future shared artifacts (e.g. a contraction-hierarchy overlay) extend
/// the signature without breaking providers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProviderContext<'a> {
    /// The shared substrate, if one was prepared for this request.
    pub substrate: Option<&'a SearchSubstrate>,
    /// The traffic epoch the *request* is pinned to (0 = base weights).
    /// [`ProviderContext::substrate_for`] only hands out the substrate
    /// when its own epoch stamp matches, so a substrate prepared before
    /// a live-traffic tick is never mixed into a post-tick request.
    pub epoch: u64,
}

impl<'a> ProviderContext<'a> {
    /// A context carrying nothing: providers self-compute.
    pub fn empty() -> ProviderContext<'static> {
        ProviderContext {
            substrate: None,
            epoch: 0,
        }
    }

    /// A context carrying a prepared substrate (epoch 0 = base weights).
    pub fn with_substrate(substrate: &'a SearchSubstrate) -> ProviderContext<'a> {
        ProviderContext {
            substrate: Some(substrate),
            epoch: 0,
        }
    }

    /// A context carrying a prepared substrate for a request pinned to
    /// `epoch`. The substrate must carry the same stamp
    /// ([`SearchSubstrate::with_epoch`]) to be reused.
    pub fn with_substrate_at_epoch(
        substrate: &'a SearchSubstrate,
        epoch: u64,
    ) -> ProviderContext<'a> {
        ProviderContext {
            substrate: Some(substrate),
            epoch,
        }
    }

    /// The substrate, but only if it matches this call's endpoints,
    /// network shape and the request's epoch
    /// ([`SearchSubstrate::matches`]); `None` otherwise, which sends the
    /// provider down its self-computing path.
    pub fn substrate_for(
        &self,
        net: &RoadNetwork,
        source: NodeId,
        target: NodeId,
    ) -> Option<&'a SearchSubstrate> {
        self.substrate
            .filter(|s| s.matches(net, source, target, self.epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn base_route_equals_direct_shortest_path() {
        let net = grid(8);
        let (s, t) = (NodeId(0), NodeId(63));
        let sub =
            SearchSubstrate::build(&net, net.weights(), s, t, &SearchBudget::unlimited()).unwrap();
        let direct = crate::search::shortest_path(&net, net.weights(), s, t).unwrap();
        assert_eq!(sub.base_route().edges, direct.edges);
        assert_eq!(sub.base_route().cost_ms, direct.cost_ms);
        assert_eq!(sub.base_route().nodes, direct.nodes);
    }

    #[test]
    fn trees_are_rooted_and_oriented() {
        let net = grid(6);
        let (s, t) = (NodeId(0), NodeId(35));
        let sub =
            SearchSubstrate::build(&net, net.weights(), s, t, &SearchBudget::unlimited()).unwrap();
        assert_eq!(sub.forward().root, s);
        assert_eq!(sub.forward().direction, Direction::Forward);
        assert_eq!(sub.backward().root, t);
        assert_eq!(sub.backward().direction, Direction::Backward);
        assert_eq!(sub.forward_distances()[t.index()], sub.base_route().cost_ms);
        assert_eq!(
            sub.backward_distances()[s.index()],
            sub.base_route().cost_ms
        );
    }

    #[test]
    fn build_counts_both_tree_searches() {
        let net = grid(6);
        let sub = SearchSubstrate::build(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(35),
            &SearchBudget::unlimited(),
        )
        .unwrap();
        // Both trees settle every reachable vertex: two full sweeps.
        assert_eq!(sub.build_stats().settled, 2 * net.num_nodes() as u64);
        assert!(sub.build_stats().heap_pops >= sub.build_stats().settled);
    }

    #[test]
    fn ch_build_is_byte_identical_to_dijkstra_build() {
        let net = grid(8);
        let topo = ChTopology::build(&net);
        // Identity column and a slowed overlay with a closure.
        let mut overlay = net.weights().to_vec();
        for (i, w) in overlay.iter_mut().enumerate() {
            if i % 4 == 1 {
                *w = w.saturating_mul(2).min(u32::MAX - 1);
            }
        }
        overlay[3] = arp_roadnet::weight::CLOSED;
        for column in [net.weights(), &overlay[..]] {
            let metric = topo.customize(&net, column).unwrap();
            for (s, t) in [(0u32, 63u32), (7, 56), (20, 43)] {
                let plain = SearchSubstrate::build(
                    &net,
                    column,
                    NodeId(s),
                    NodeId(t),
                    &SearchBudget::unlimited(),
                )
                .unwrap();
                let fast = SearchSubstrate::build_with_ch(
                    &net,
                    column,
                    &topo,
                    &metric,
                    NodeId(s),
                    NodeId(t),
                    &SearchBudget::unlimited(),
                )
                .unwrap();
                assert_eq!(fast.forward().dist, plain.forward().dist, "{s}->{t}");
                assert_eq!(fast.forward().parent, plain.forward().parent, "{s}->{t}");
                assert_eq!(fast.backward().dist, plain.backward().dist, "{s}->{t}");
                assert_eq!(fast.backward().parent, plain.backward().parent, "{s}->{t}");
                assert_eq!(fast.base_route().edges, plain.base_route().edges);
                assert_eq!(fast.base_route().cost_ms, plain.base_route().cost_ms);
            }
        }
    }

    #[test]
    fn ch_build_settles_fewer_nodes() {
        let net = grid(16);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        let plain = SearchSubstrate::build(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(255),
            &SearchBudget::unlimited(),
        )
        .unwrap();
        let fast = SearchSubstrate::build_with_ch(
            &net,
            net.weights(),
            &topo,
            &metric,
            NodeId(0),
            NodeId(255),
            &SearchBudget::unlimited(),
        )
        .unwrap();
        assert!(
            fast.build_stats().settled < plain.build_stats().settled,
            "CH build must settle fewer nodes ({} vs {})",
            fast.build_stats().settled,
            plain.build_stats().settled
        );
    }

    #[test]
    fn ch_build_mirrors_dijkstra_errors() {
        let net = grid(4);
        let topo = ChTopology::build(&net);
        let metric = topo.customize(&net, net.weights()).unwrap();
        assert!(matches!(
            SearchSubstrate::build_with_ch(
                &net,
                net.weights(),
                &topo,
                &metric,
                NodeId(3),
                NodeId(3),
                &SearchBudget::unlimited()
            ),
            Err(CoreError::SameSourceTarget(_))
        ));
        let budget = SearchBudget::new();
        budget.cancel();
        assert!(matches!(
            SearchSubstrate::build_with_ch(
                &net,
                net.weights(),
                &topo,
                &metric,
                NodeId(0),
                NodeId(15),
                &budget
            ),
            Err(CoreError::Interrupted)
        ));
        // A topology built for another network shape is rejected.
        let other = grid(5);
        assert!(SearchSubstrate::build_with_ch(
            &other,
            other.weights(),
            &topo,
            &metric,
            NodeId(0),
            NodeId(24),
            &SearchBudget::unlimited()
        )
        .is_err());
    }

    #[test]
    fn same_source_target_is_an_error() {
        let net = grid(4);
        assert!(matches!(
            SearchSubstrate::build(
                &net,
                net.weights(),
                NodeId(3),
                NodeId(3),
                &SearchBudget::unlimited()
            ),
            Err(CoreError::SameSourceTarget(_))
        ));
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        assert!(matches!(
            SearchSubstrate::build(
                &net,
                net.weights(),
                NodeId(1),
                NodeId(0),
                &SearchBudget::unlimited()
            ),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn cancelled_budget_interrupts_the_build() {
        let net = grid(8);
        let budget = SearchBudget::new();
        budget.cancel();
        assert!(matches!(
            SearchSubstrate::build(&net, net.weights(), NodeId(0), NodeId(63), &budget),
            Err(CoreError::Interrupted)
        ));
    }

    #[test]
    fn context_filters_mismatched_substrates() {
        let net = grid(6);
        let (s, t) = (NodeId(0), NodeId(35));
        let sub =
            SearchSubstrate::build(&net, net.weights(), s, t, &SearchBudget::unlimited()).unwrap();
        let ctx = ProviderContext::with_substrate(&sub);
        assert!(ctx.substrate_for(&net, s, t).is_some());
        // Wrong endpoints → no reuse.
        assert!(ctx.substrate_for(&net, s, NodeId(34)).is_none());
        assert!(ctx.substrate_for(&net, NodeId(1), t).is_none());
        // Different network shape → no reuse.
        let other = grid(5);
        assert!(ctx.substrate_for(&other, s, t).is_none());
        // The empty context never offers one.
        assert!(ProviderContext::empty().substrate_for(&net, s, t).is_none());
    }

    #[test]
    fn cross_epoch_reuse_is_rejected() {
        let net = grid(6);
        let (s, t) = (NodeId(0), NodeId(35));
        let sub = SearchSubstrate::build(&net, net.weights(), s, t, &SearchBudget::unlimited())
            .unwrap()
            .with_epoch(7);
        assert_eq!(sub.epoch(), 7);
        assert!(sub.matches(&net, s, t, 7));
        assert!(!sub.matches(&net, s, t, 8), "post-tick reuse must fail");
        assert!(!sub.matches(&net, s, t, 0));
        // The context only offers the substrate at its own epoch.
        let ctx = ProviderContext::with_substrate_at_epoch(&sub, 7);
        assert!(ctx.substrate_for(&net, s, t).is_some());
        let stale = ProviderContext::with_substrate_at_epoch(&sub, 8);
        assert!(stale.substrate_for(&net, s, t).is_none());
        // The epoch-0 constructor pairs only with epoch-0 substrates.
        assert!(ProviderContext::with_substrate(&sub)
            .substrate_for(&net, s, t)
            .is_none());
    }
}
