//! Cooperative search budgets: cancellation, deadlines and expansion caps.
//!
//! A [`SearchBudget`] is the core's half of cooperative cancellation. The
//! serving layer (or any caller) hands a budget to a workspace via
//! `set_budget`; the search kernels then poll it **every
//! [`CHECK_INTERVAL`] heap pops** — frequent enough that an abandoned
//! request frees its worker within a fraction of a millisecond of real
//! search work, rare enough that the check is invisible in profiles. A
//! tripped budget surfaces as [`crate::CoreError::Interrupted`]; the
//! technique drivers catch it and return the alternatives they have
//! already admitted (an *anytime* result) instead of an error.
//!
//! Three independent triggers, any of which trips the budget:
//!
//! * a **shared cancellation flag** (`Arc<AtomicBool>`) — set by a
//!   deadline watcher in another thread (e.g. the serving layer's
//!   fan-out when the request deadline expires);
//! * an optional **deadline** against an injectable clock — wall time by
//!   default, a manual millisecond counter in tests, so deadline
//!   behaviour is testable without sleeping;
//! * an optional **expansion cap** — a bound on total heap pops charged
//!   across every search sharing the budget, giving tests a
//!   deterministic, timing-free way to interrupt mid-technique.
//!
//! Once tripped, a budget stays tripped (the flag is sticky): a penalty
//! loop whose third search hits the deadline will not start a fourth.
//! The default budget is [`SearchBudget::unlimited`], which is a `None`
//! inside — polling it is a null check, so uncancelled callers pay
//! nothing and their results are byte-identical to pre-budget behaviour.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many heap pops a search kernel performs between budget polls.
///
/// Charged pops are accounted in units of at most this many, so an
/// expansion cap or deadline is honoured within one interval of search
/// work — the "release within one check interval" guarantee.
pub const CHECK_INTERVAL: u64 = 1024;

/// The clock a budget deadline is measured against.
#[derive(Clone, Debug)]
enum BudgetClock {
    /// Real time: the deadline is `epoch + at_ms` in wall-clock terms.
    Monotonic(Instant),
    /// A manual millisecond counter owned by the test driving it.
    Manual(Arc<AtomicU64>),
}

#[derive(Clone, Debug)]
struct BudgetDeadline {
    at_ms: u64,
    clock: BudgetClock,
}

impl BudgetDeadline {
    fn expired(&self) -> bool {
        match &self.clock {
            BudgetClock::Monotonic(epoch) => epoch.elapsed().as_millis() as u64 >= self.at_ms,
            BudgetClock::Manual(now_ms) => now_ms.load(Ordering::Relaxed) >= self.at_ms,
        }
    }
}

#[derive(Debug)]
struct BudgetInner {
    cancelled: Arc<AtomicBool>,
    deadline: Option<BudgetDeadline>,
    expansion_cap: Option<u64>,
    expansions: AtomicU64,
}

impl BudgetInner {
    fn fresh() -> BudgetInner {
        BudgetInner {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: None,
            expansion_cap: None,
            expansions: AtomicU64::new(0),
        }
    }
}

/// A shared, cooperative bound on search work. See the module docs.
///
/// Cloning a budget shares it: every clone sees the same cancellation
/// flag and charges the same expansion counter, which is what lets one
/// request-level budget govern several searches (or several workspaces)
/// at once.
#[derive(Clone, Debug, Default)]
pub struct SearchBudget {
    inner: Option<Arc<BudgetInner>>,
}

impl SearchBudget {
    /// The do-nothing budget: never trips, polling it is a null check.
    pub fn unlimited() -> SearchBudget {
        SearchBudget { inner: None }
    }

    /// A fresh budget with its own cancellation flag and no limits (use
    /// the `with_*` builders to add them).
    pub fn new() -> SearchBudget {
        SearchBudget {
            inner: Some(Arc::new(BudgetInner::fresh())),
        }
    }

    /// A budget driven by an external cancellation flag — typically the
    /// serving layer's per-request cancel token. Setting `flag` to
    /// `true` from any thread interrupts every search polling this
    /// budget within one [`CHECK_INTERVAL`].
    pub fn with_cancel_flag(flag: Arc<AtomicBool>) -> SearchBudget {
        SearchBudget {
            inner: Some(Arc::new(BudgetInner {
                cancelled: flag,
                ..BudgetInner::fresh()
            })),
        }
    }

    fn edit(self, apply: impl FnOnce(&mut BudgetInner)) -> SearchBudget {
        let mut inner = match self.inner {
            Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|shared| BudgetInner {
                cancelled: Arc::clone(&shared.cancelled),
                deadline: shared.deadline.clone(),
                expansion_cap: shared.expansion_cap,
                expansions: AtomicU64::new(shared.expansions.load(Ordering::Relaxed)),
            }),
            None => BudgetInner::fresh(),
        };
        apply(&mut inner);
        SearchBudget {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Adds a wall-clock deadline `timeout` from now.
    pub fn with_deadline(self, timeout: Duration) -> SearchBudget {
        let deadline = BudgetDeadline {
            at_ms: timeout.as_millis() as u64,
            clock: BudgetClock::Monotonic(Instant::now()),
        };
        self.edit(|inner| inner.deadline = Some(deadline))
    }

    /// Adds a deadline at `at_ms` on a **manual clock**: the budget is
    /// expired once `now_ms` (advanced by the test) reaches `at_ms`. No
    /// sleeping, no wall time — deterministic deadline tests.
    pub fn with_manual_deadline(self, now_ms: Arc<AtomicU64>, at_ms: u64) -> SearchBudget {
        let deadline = BudgetDeadline {
            at_ms,
            clock: BudgetClock::Manual(now_ms),
        };
        self.edit(|inner| inner.deadline = Some(deadline))
    }

    /// Adds a cap on total heap pops charged across all searches sharing
    /// this budget. Accounting happens at [`CHECK_INTERVAL`] granularity,
    /// so the cap is honoured within one interval.
    pub fn with_expansion_cap(self, cap: u64) -> SearchBudget {
        self.edit(|inner| inner.expansion_cap = Some(cap))
    }

    /// Trips the budget by hand; every search polling it interrupts at
    /// its next check. No-op on an unlimited budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the cancellation flag is set (including by an exhausted
    /// cap or an expired deadline observed earlier — trips are sticky).
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.cancelled.load(Ordering::Relaxed))
    }

    /// Whether this budget can trip at all (i.e. is not `unlimited`).
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// Heap pops charged so far (zero for unlimited budgets).
    pub fn expansions(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.expansions.load(Ordering::Relaxed))
    }

    /// Charges `pops` heap pops and reports whether the budget is now
    /// exhausted. This is the kernels' poll: flag first (cheapest),
    /// then the expansion cap, then the deadline. A cap or deadline
    /// trip sets the sticky flag so sibling searches stop too.
    #[inline]
    pub fn charge(&self, pops: u64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(cap) = inner.expansion_cap {
            let used = inner.expansions.fetch_add(pops, Ordering::Relaxed) + pops;
            if used >= cap {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        } else if pops > 0 {
            inner.expansions.fetch_add(pops, Ordering::Relaxed);
        }
        if let Some(deadline) = &inner.deadline {
            if deadline.expired() {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// A non-charging poll for technique drivers between rounds: has the
    /// budget tripped (flag, deadline or already-exhausted cap)?
    pub fn interrupted(&self) -> bool {
        self.charge(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = SearchBudget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.charge(u64::MAX / 2));
        assert!(!b.interrupted());
        assert!(!b.is_cancelled());
        b.cancel(); // no-op
        assert!(!b.is_cancelled());
        assert_eq!(b.expansions(), 0);
    }

    #[test]
    fn cancel_flag_trips_and_is_sticky() {
        let b = SearchBudget::new();
        assert!(!b.interrupted());
        b.cancel();
        assert!(b.interrupted());
        assert!(b.charge(0));
        assert!(b.is_cancelled());
    }

    #[test]
    fn shared_flag_cancels_from_outside() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = SearchBudget::with_cancel_flag(Arc::clone(&flag));
        assert!(!b.interrupted());
        flag.store(true, Ordering::Relaxed);
        assert!(b.interrupted());
    }

    #[test]
    fn expansion_cap_trips_at_the_cap_and_sets_the_flag() {
        let b = SearchBudget::new().with_expansion_cap(3 * CHECK_INTERVAL);
        assert!(!b.charge(CHECK_INTERVAL));
        assert!(!b.charge(CHECK_INTERVAL));
        assert!(b.charge(CHECK_INTERVAL), "third interval reaches the cap");
        assert!(b.is_cancelled(), "cap trip must be sticky");
        assert_eq!(b.expansions(), 3 * CHECK_INTERVAL);
    }

    #[test]
    fn clones_share_the_expansion_counter() {
        let a = SearchBudget::new().with_expansion_cap(100);
        let b = a.clone();
        assert!(!a.charge(60));
        assert!(b.charge(60), "clone must see the shared counter");
        assert!(a.is_cancelled());
    }

    #[test]
    fn manual_deadline_is_clock_driven() {
        let clock = Arc::new(AtomicU64::new(0));
        let b = SearchBudget::new().with_manual_deadline(Arc::clone(&clock), 50);
        assert!(!b.interrupted());
        clock.store(49, Ordering::Relaxed);
        assert!(!b.interrupted());
        clock.store(50, Ordering::Relaxed);
        assert!(b.interrupted(), "deadline is inclusive of at_ms");
        clock.store(0, Ordering::Relaxed);
        assert!(b.interrupted(), "deadline trip is sticky");
    }

    #[test]
    fn wall_clock_deadline_expires() {
        let b = SearchBudget::new().with_deadline(Duration::ZERO);
        assert!(b.interrupted(), "zero timeout is already expired");
        let b = SearchBudget::new().with_deadline(Duration::from_secs(3600));
        assert!(!b.interrupted());
    }
}
