//! Paths through a road network.
//!
//! A [`Path`] stores both its vertex sequence and its edge sequence, plus
//! its cost under the weights it was computed with. Costs can be
//! re-evaluated under a different weight overlay with [`Path::cost_under`]
//! — that is exactly what the paper's query processor does when it prices
//! Google's routes with OpenStreetMap data (§3, §4.2).

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight};

/// A simple (or not) directed path through a road network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Vertex sequence; `nodes.len() == edges.len() + 1`.
    pub nodes: Vec<NodeId>,
    /// Edge sequence.
    pub edges: Vec<EdgeId>,
    /// Total cost in ms under the weights the path was computed with.
    pub cost_ms: Cost,
}

impl Path {
    /// Builds a path from an edge sequence, deriving nodes and cost.
    ///
    /// # Panics
    /// Panics in debug builds if consecutive edges do not join up.
    pub fn from_edges(net: &RoadNetwork, weights: &[Weight], edges: Vec<EdgeId>) -> Path {
        assert!(!edges.is_empty(), "a path needs at least one edge");
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        nodes.push(net.tail(edges[0]));
        let mut cost: Cost = 0;
        for &e in &edges {
            debug_assert_eq!(net.tail(e), *nodes.last().unwrap(), "edges must join up");
            nodes.push(net.head(e));
            cost += weights[e.index()] as Cost;
        }
        Path {
            nodes,
            edges,
            cost_ms: cost,
        }
    }

    /// The source vertex.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The target vertex.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path has no edges (never produced by the algorithms,
    /// but required pairing for `len`).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total cost under a different weight overlay.
    pub fn cost_under(&self, weights: &[Weight]) -> Cost {
        self.edges.iter().map(|e| weights[e.index()] as Cost).sum()
    }

    /// Total geometric length in metres.
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|&e| net.length_m(e) as f64).sum()
    }

    /// True if no vertex repeats (loopless path).
    pub fn is_simple(&self) -> bool {
        let mut seen: Vec<NodeId> = self.nodes.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// Concatenates `self` with `other`; `other` must start where `self`
    /// ends.
    ///
    /// # Panics
    /// Panics if the endpoints do not match.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(self.target(), other.source(), "paths must join up");
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Path {
            nodes,
            edges,
            cost_ms: self.cost_ms + other.cost_ms,
        }
    }

    /// Validates internal consistency against the network.
    pub fn validate(&self, net: &RoadNetwork) -> bool {
        if self.nodes.len() != self.edges.len() + 1 {
            return false;
        }
        for (i, &e) in self.edges.iter().enumerate() {
            if e.index() >= net.num_edges() {
                return false;
            }
            if net.tail(e) != self.nodes[i] || net.head(e) != self.nodes[i + 1] {
                return false;
            }
        }
        true
    }

    /// A canonical hashable key for de-duplicating identical paths.
    pub fn key(&self) -> Vec<u32> {
        self.edges.iter().map(|e| e.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    /// Line 0 -> 1 -> 2 -> 3 with unit-ish weights.
    fn line() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(144.0 + i as f64 * 0.01, -37.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Primary));
        }
        b.build()
    }

    fn edge(net: &RoadNetwork, t: u32, h: u32) -> EdgeId {
        net.find_edge(NodeId(t), NodeId(h)).unwrap()
    }

    #[test]
    fn from_edges_builds_consistent_path() {
        let net = line();
        let edges = vec![edge(&net, 0, 1), edge(&net, 1, 2), edge(&net, 2, 3)];
        let p = Path::from_edges(&net, net.weights(), edges);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(3));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.validate(&net));
        assert!(p.is_simple());
        assert_eq!(p.cost_ms, p.cost_under(net.weights()));
    }

    #[test]
    fn cost_under_overlay() {
        let net = line();
        let edges = vec![edge(&net, 0, 1), edge(&net, 1, 2)];
        let p = Path::from_edges(&net, net.weights(), edges);
        let doubled: Vec<u32> = net.weights().iter().map(|w| w * 2).collect();
        assert_eq!(p.cost_under(&doubled), p.cost_ms * 2);
    }

    #[test]
    fn non_simple_path_detected() {
        let net = line();
        // 0 -> 1 -> 0 revisits node 0.
        let edges = vec![edge(&net, 0, 1), edge(&net, 1, 0)];
        let p = Path::from_edges(&net, net.weights(), edges);
        assert!(!p.is_simple());
        assert!(p.validate(&net));
    }

    #[test]
    fn concat_joins_paths() {
        let net = line();
        let a = Path::from_edges(&net, net.weights(), vec![edge(&net, 0, 1)]);
        let b = Path::from_edges(
            &net,
            net.weights(),
            vec![edge(&net, 1, 2), edge(&net, 2, 3)],
        );
        let joined = a.concat(&b);
        assert_eq!(joined.source(), NodeId(0));
        assert_eq!(joined.target(), NodeId(3));
        assert_eq!(joined.cost_ms, a.cost_ms + b.cost_ms);
        assert!(joined.validate(&net));
    }

    #[test]
    #[should_panic(expected = "join up")]
    fn concat_mismatched_panics() {
        let net = line();
        let a = Path::from_edges(&net, net.weights(), vec![edge(&net, 0, 1)]);
        let b = Path::from_edges(&net, net.weights(), vec![edge(&net, 2, 3)]);
        let _ = a.concat(&b);
    }

    #[test]
    fn length_accumulates() {
        let net = line();
        let p = Path::from_edges(
            &net,
            net.weights(),
            vec![edge(&net, 0, 1), edge(&net, 1, 2)],
        );
        let expected: f64 = p.edges.iter().map(|&e| net.length_m(e) as f64).sum();
        assert!((p.length_m(&net) - expected).abs() < 1e-9);
        assert!(p.length_m(&net) > 1000.0);
    }

    #[test]
    fn key_distinguishes_paths() {
        let net = line();
        let a = Path::from_edges(&net, net.weights(), vec![edge(&net, 0, 1)]);
        let b = Path::from_edges(&net, net.weights(), vec![edge(&net, 1, 2)]);
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn validate_rejects_corruption() {
        let net = line();
        let mut p = Path::from_edges(&net, net.weights(), vec![edge(&net, 0, 1)]);
        p.nodes[1] = NodeId(3);
        assert!(!p.validate(&net));
        let mut q = Path::from_edges(&net, net.weights(), vec![edge(&net, 0, 1)]);
        q.edges[0] = EdgeId(9999);
        assert!(!q.validate(&net));
    }
}
