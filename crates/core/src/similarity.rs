//! Path similarity and dissimilarity measures.
//!
//! Following the k-shortest-paths-with-limited-overlap line of work the
//! paper's Dissimilarity technique builds on, the similarity of two paths
//! is the weighted length of their shared edges normalized by path length.
//! The dissimilarity of a candidate to a result set is `1 − max` pairwise
//! similarity; the SSVP-D+ algorithm admits a candidate only when that
//! dissimilarity exceeds the threshold θ (0.5 in the paper).

use std::collections::HashSet;

use arp_roadnet::ids::EdgeId;
use arp_roadnet::weight::{Cost, Weight};

use crate::path::Path;

/// Weighted length of the edges shared by `p` and `q` under `weights`.
pub fn shared_length(p: &Path, q: &Path, weights: &[Weight]) -> Cost {
    let q_edges: HashSet<EdgeId> = q.edges.iter().copied().collect();
    p.edges
        .iter()
        .filter(|e| q_edges.contains(e))
        .map(|e| weights[e.index()] as Cost)
        .sum()
}

/// Similarity `Sim(p, q) = len(p ∩ q) / min(len(p), len(q))` in `[0, 1]`.
///
/// Normalizing by the shorter path makes the measure symmetric and treats
/// "q is a subpath of p" as fully similar.
pub fn similarity(p: &Path, q: &Path, weights: &[Weight]) -> f64 {
    let shared = shared_length(p, q, weights) as f64;
    let lp = p.cost_under(weights) as f64;
    let lq = q.cost_under(weights) as f64;
    let denom = lp.min(lq);
    if denom <= 0.0 {
        return 0.0;
    }
    (shared / denom).clamp(0.0, 1.0)
}

/// Asymmetric overlap `len(p ∩ q) / len(p)`: the fraction of `p` that runs
/// along `q`.
pub fn overlap_ratio(p: &Path, q: &Path, weights: &[Weight]) -> f64 {
    let shared = shared_length(p, q, weights) as f64;
    let lp = p.cost_under(weights) as f64;
    if lp <= 0.0 {
        return 0.0;
    }
    (shared / lp).clamp(0.0, 1.0)
}

/// Dissimilarity of candidate `p` to a result set:
/// `dis(p, P) = min over q∈P of (1 − Sim(p, q))`, or `1.0` for an empty set.
pub fn dissimilarity_to_set(p: &Path, set: &[Path], weights: &[Weight]) -> f64 {
    set.iter()
        .map(|q| 1.0 - similarity(p, q, weights))
        .fold(1.0, f64::min)
}

/// Mean pairwise dissimilarity of a route set — the "diversity" quality
/// measure reported by alternative-routing evaluations. `1.0` when all
/// pairs are edge-disjoint; `1.0` (vacuously) for sets of size < 2.
pub fn diversity(paths: &[Path], weights: &[Weight]) -> f64 {
    if paths.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..paths.len() {
        for j in i + 1..paths.len() {
            total += 1.0 - similarity(&paths[i], &paths[j], weights);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::csr::RoadNetwork;
    use arp_roadnet::geo::Point;
    use arp_roadnet::ids::NodeId;

    /// Two parallel corridors 0->1->2->3 (top) and 0->4->5->3 (bottom).
    fn ladder() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.00, 0.0));
        let n1 = b.add_node(Point::new(0.01, 0.001));
        let n2 = b.add_node(Point::new(0.02, 0.001));
        let n3 = b.add_node(Point::new(0.03, 0.0));
        let n4 = b.add_node(Point::new(0.01, -0.001));
        let n5 = b.add_node(Point::new(0.02, -0.001));
        for (a, c) in [(n0, n1), (n1, n2), (n2, n3), (n0, n4), (n4, n5), (n5, n3)] {
            b.add_bidirectional(a, c, EdgeSpec::category(RoadCategory::Primary));
        }
        b.build()
    }

    fn path_via(net: &RoadNetwork, nodes: &[u32]) -> Path {
        let edges = nodes
            .windows(2)
            .map(|w| net.find_edge(NodeId(w[0]), NodeId(w[1])).unwrap())
            .collect();
        Path::from_edges(net, net.weights(), edges)
    }

    #[test]
    fn identical_paths_fully_similar() {
        let net = ladder();
        let p = path_via(&net, &[0, 1, 2, 3]);
        assert!((similarity(&p, &p, net.weights()) - 1.0).abs() < 1e-9);
        assert!((overlap_ratio(&p, &p, net.weights()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_paths_zero_similar() {
        let net = ladder();
        let top = path_via(&net, &[0, 1, 2, 3]);
        let bottom = path_via(&net, &[0, 4, 5, 3]);
        assert_eq!(shared_length(&top, &bottom, net.weights()), 0);
        assert_eq!(similarity(&top, &bottom, net.weights()), 0.0);
        assert!((dissimilarity_to_set(&top, &[bottom], net.weights()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let net = ladder();
        let top = path_via(&net, &[0, 1, 2, 3]);
        // Mixed path: first edge shared with top, then crosses to bottom? Not
        // possible on this ladder; instead compare a sub-path.
        let prefix = path_via(&net, &[0, 1, 2]);
        let s = similarity(&top, &prefix, net.weights());
        // prefix is entirely inside top: min-normalized similarity is 1.
        assert!((s - 1.0).abs() < 1e-9);
        // Asymmetric overlap of top w.r.t. prefix is ~2/3.
        let o = overlap_ratio(&top, &prefix, net.weights());
        assert!(o > 0.5 && o < 0.8, "{o}");
    }

    #[test]
    fn dissimilarity_to_empty_set_is_one() {
        let net = ladder();
        let p = path_via(&net, &[0, 1, 2, 3]);
        assert_eq!(dissimilarity_to_set(&p, &[], net.weights()), 1.0);
    }

    #[test]
    fn dissimilarity_takes_worst_case() {
        let net = ladder();
        let top = path_via(&net, &[0, 1, 2, 3]);
        let bottom = path_via(&net, &[0, 4, 5, 3]);
        let set = vec![top.clone(), bottom];
        // Candidate identical to `top` -> dis = 0 (min over set).
        assert_eq!(dissimilarity_to_set(&top, &set, net.weights()), 0.0);
    }

    #[test]
    fn diversity_of_disjoint_pair_is_one() {
        let net = ladder();
        let set = vec![path_via(&net, &[0, 1, 2, 3]), path_via(&net, &[0, 4, 5, 3])];
        assert!((diversity(&set, net.weights()) - 1.0).abs() < 1e-9);
        assert_eq!(diversity(&set[..1], net.weights()), 1.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let net = ladder();
        let a = path_via(&net, &[0, 1, 2, 3]);
        let b = path_via(&net, &[0, 1, 2]);
        assert!(
            (similarity(&a, &b, net.weights()) - similarity(&b, &a, net.weights())).abs() < 1e-12
        );
    }
}
