//! Bi-criteria Pareto-optimal ("skyline") routing — §2.4's other family:
//! "Pareto optimal paths report the paths that are not dominated by any
//! other path according to given criteria (e.g., distance, travel time)".
//!
//! A label-setting multi-objective Dijkstra over the criteria
//! `(travel time, geometric distance)`: each vertex keeps the set of
//! non-dominated `(time, dist)` labels, expanded in lexicographic order.
//! The full frontier can be exponential, so the per-vertex label set is
//! capped; on road networks (strongly correlated criteria) frontiers are
//! tiny in practice.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight};

use crate::error::CoreError;
use crate::path::Path;

/// One Pareto-optimal route with its two criterion values.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoRoute {
    /// The path.
    pub path: Path,
    /// Travel time in ms.
    pub time_ms: Cost,
    /// Geometric length in whole metres.
    pub dist_m: u64,
}

/// Options for the Pareto search.
#[derive(Clone, Copy, Debug)]
pub struct ParetoOptions {
    /// Maximum number of labels retained per vertex (guards the
    /// exponential worst case).
    pub max_labels_per_node: usize,
    /// Hard cap on total label expansions.
    pub max_expansions: usize,
}

impl Default for ParetoOptions {
    fn default() -> Self {
        ParetoOptions {
            max_labels_per_node: 24,
            max_expansions: 2_000_000,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Label {
    time: Cost,
    dist: u64,
    /// Edge that produced this label (INVALID at the source).
    via_edge: EdgeId,
    /// Index of the parent label at the edge's tail vertex.
    parent_label: u32,
}

fn dominates(a: (Cost, u64), b: (Cost, u64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Computes the Pareto frontier of `(time, distance)` paths
/// `source → target`, sorted by travel time (and therefore by decreasing
/// distance).
pub fn pareto_paths(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    options: &ParetoOptions,
) -> Result<Vec<ParetoRoute>, CoreError> {
    if source.index() >= net.num_nodes() {
        return Err(CoreError::InvalidNode(source));
    }
    if target.index() >= net.num_nodes() {
        return Err(CoreError::InvalidNode(target));
    }
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    if weights.len() != net.num_edges() {
        return Err(CoreError::WeightLengthMismatch {
            expected: net.num_edges(),
            got: weights.len(),
        });
    }

    // Per-vertex label lists; labels are append-only so (vertex, index)
    // identifies a label forever (needed for path reconstruction).
    let mut labels: Vec<Vec<Label>> = vec![Vec::new(); net.num_nodes()];
    // Heap of (time, dist, vertex, label index), lexicographic by (time, dist).
    let mut heap: BinaryHeap<Reverse<(Cost, u64, u32, u32)>> = BinaryHeap::new();

    labels[source.index()].push(Label {
        time: 0,
        dist: 0,
        via_edge: EdgeId::INVALID,
        parent_label: u32::MAX,
    });
    heap.push(Reverse((0, 0, source.0, 0)));

    let mut expansions = 0usize;
    while let Some(Reverse((time, dist, v, li))) = heap.pop() {
        expansions += 1;
        if expansions > options.max_expansions {
            break;
        }
        // Skip labels dominated since they were queued.
        let still_active = labels[v as usize]
            .iter()
            .all(|l| !(dominates((l.time, l.dist), (time, dist))));
        if !still_active {
            continue;
        }
        // Prune by the target frontier: a label dominated by a completed
        // route can never extend into a non-dominated one.
        if v != target.0
            && labels[target.index()]
                .iter()
                .any(|l| dominates((l.time, l.dist), (time, dist)))
        {
            continue;
        }
        if v == target.0 {
            continue; // target labels are terminal
        }
        for e in net.out_edges(NodeId(v)) {
            let head = net.head(e).0;
            let ntime = time + weights[e.index()] as Cost;
            let ndist = dist + net.length_m(e).max(0.0) as u64;
            let cand = (ntime, ndist);
            let node_labels = &mut labels[head as usize];
            if node_labels
                .iter()
                .any(|l| dominates((l.time, l.dist), cand) || (l.time, l.dist) == cand)
            {
                continue;
            }
            // Keep the list non-dominated by dropping what `cand` beats.
            node_labels.retain(|l| !dominates(cand, (l.time, l.dist)));
            if node_labels.len() >= options.max_labels_per_node {
                // Keep the fastest labels; drop the slowest.
                if let Some((worst_idx, worst)) = node_labels
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, l)| l.time)
                    .map(|(i, l)| (i, l.time))
                {
                    if worst <= ntime {
                        continue;
                    }
                    node_labels.swap_remove(worst_idx);
                }
            }
            let idx = node_labels.len() as u32;
            node_labels.push(Label {
                time: ntime,
                dist: ndist,
                via_edge: e,
                parent_label: li,
            });
            heap.push(Reverse((ntime, ndist, head, idx)));
        }
    }

    let mut frontier: Vec<(Cost, u64, u32)> = labels[target.index()]
        .iter()
        .enumerate()
        .filter(|(i, l)| {
            // Final non-dominance check (cap-evictions can leave strays).
            !labels[target.index()]
                .iter()
                .enumerate()
                .any(|(j, m)| j != *i && dominates((m.time, m.dist), (l.time, l.dist)))
        })
        .map(|(i, l)| (l.time, l.dist, i as u32))
        .collect();
    if frontier.is_empty() {
        return Err(CoreError::Unreachable { source, target });
    }
    frontier.sort_unstable();

    // Reconstruct each frontier path. `swap_remove` above may move label
    // indices, so parents are found by value instead: walk backwards
    // matching (time, dist) at the tail.
    let mut out = Vec::with_capacity(frontier.len());
    for (time, dist, li) in frontier {
        let mut edges = Vec::new();
        let mut v = target.index();
        let mut cur = labels[v][li as usize];
        loop {
            if cur.via_edge.is_invalid() {
                break;
            }
            edges.push(cur.via_edge);
            let tail = net.tail(cur.via_edge);
            let want_time = cur.time - weights[cur.via_edge.index()] as Cost;
            let want_dist = cur.dist - net.length_m(cur.via_edge).max(0.0) as u64;
            v = tail.index();
            // Parent may have shifted; find it by value.
            let Some(parent) = labels[v]
                .iter()
                .find(|l| l.time == want_time && l.dist == want_dist)
                .copied()
            else {
                // Parent evicted by the label cap: this frontier point is
                // unreconstructable; skip it (time/dist were still valid).
                edges.clear();
                break;
            };
            cur = parent;
        }
        if edges.is_empty() {
            continue;
        }
        edges.reverse();
        let path = Path::from_edges(net, weights, edges);
        debug_assert_eq!(path.cost_ms, time);
        out.push(ParetoRoute {
            path,
            time_ms: time,
            dist_m: dist,
        });
    }
    if out.is_empty() {
        return Err(CoreError::Unreachable { source, target });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    /// Two routes: a fast long freeway detour and a slow short direct road.
    fn tradeoff_net() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.00, 0.0));
        let m = b.add_node(Point::new(0.02, 0.03)); // detour via north
        let t = b.add_node(Point::new(0.04, 0.0));
        // Direct: short distance, slow (residential).
        b.add_bidirectional(
            s,
            t,
            EdgeSpec::category(RoadCategory::Residential).with_speed(30.0),
        );
        // Detour: long distance, fast (motorway).
        b.add_bidirectional(s, m, EdgeSpec::category(RoadCategory::Motorway));
        b.add_bidirectional(m, t, EdgeSpec::category(RoadCategory::Motorway));
        b.build()
    }

    #[test]
    fn frontier_has_both_tradeoff_routes() {
        let net = tradeoff_net();
        let routes = pareto_paths(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(2),
            &ParetoOptions::default(),
        )
        .unwrap();
        assert_eq!(routes.len(), 2, "{routes:?}");
        // Sorted by time: the freeway detour first (faster, longer).
        assert!(routes[0].time_ms < routes[1].time_ms);
        assert!(routes[0].dist_m > routes[1].dist_m);
        for r in &routes {
            assert!(r.path.validate(&net));
            assert_eq!(r.path.cost_ms, r.time_ms);
        }
    }

    #[test]
    fn frontier_is_mutually_non_dominated() {
        let net = grid(7);
        let routes = pareto_paths(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(48),
            &ParetoOptions::default(),
        )
        .unwrap();
        for i in 0..routes.len() {
            for j in 0..routes.len() {
                if i != j {
                    assert!(
                        !dominates(
                            (routes[i].time_ms, routes[i].dist_m),
                            (routes[j].time_ms, routes[j].dist_m)
                        ),
                        "route {i} dominates {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn fastest_frontier_point_is_dijkstra_optimum() {
        let net = tradeoff_net();
        let routes = pareto_paths(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(2),
            &ParetoOptions::default(),
        )
        .unwrap();
        let best = crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(2)).unwrap();
        assert_eq!(routes[0].time_ms, best.cost_ms);
    }

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    // Alternate speeds so time and distance disagree.
                    let spec = if y % 2 == 0 {
                        EdgeSpec::category(RoadCategory::Primary)
                    } else {
                        EdgeSpec::category(RoadCategory::Residential)
                    };
                    b.add_bidirectional(ids[i], ids[i + 1], spec);
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Tertiary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn uniform_graph_has_small_frontier() {
        // With perfectly correlated criteria the frontier collapses.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(144.0 + i as f64 * 0.01, -37.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Primary));
        }
        let net = b.build();
        let routes = pareto_paths(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(3),
            &ParetoOptions::default(),
        )
        .unwrap();
        assert_eq!(routes.len(), 1);
    }

    #[test]
    fn errors() {
        let net = tradeoff_net();
        assert!(matches!(
            pareto_paths(
                &net,
                net.weights(),
                NodeId(0),
                NodeId(0),
                &ParetoOptions::default()
            ),
            Err(CoreError::SameSourceTarget(_))
        ));
        assert!(matches!(
            pareto_paths(
                &net,
                net.weights(),
                NodeId(0),
                NodeId(99),
                &ParetoOptions::default()
            ),
            Err(CoreError::InvalidNode(_))
        ));
    }
}
