//! Objective route-quality measures.
//!
//! The paper's §4.2 lists the factors participants perceived: detours,
//! zig-zag (turns), wide roads, and stretch relative to the fastest route.
//! This module quantifies each of them, plus the *local optimality* notion
//! of Abraham et al. that the plateau paths satisfy by construction.

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::{haversine_m, turn_angle_deg};
use arp_roadnet::weight::{Cost, Weight};

use crate::path::Path;
use crate::search::SearchSpace;

/// Stretch of a path relative to the optimum: `cost / best` (≥ 1).
pub fn stretch(path_cost: Cost, best_cost: Cost) -> f64 {
    if best_cost == 0 {
        return 1.0;
    }
    path_cost as f64 / best_cost as f64
}

/// Number of significant turns along the path (geometry direction changes
/// of at least `threshold_deg` at interior vertices). The "less zig-zag is
/// better" perception feature.
pub fn turn_count(net: &RoadNetwork, path: &Path, threshold_deg: f64) -> usize {
    if path.nodes.len() < 3 {
        return 0;
    }
    path.nodes
        .windows(3)
        .filter(|w| {
            let a = net.point(w[0]);
            let b = net.point(w[1]);
            let c = net.point(w[2]);
            turn_angle_deg(a, b, c) >= threshold_deg
        })
        .count()
}

/// Turns per kilometre — normalizes zig-zag across route lengths.
pub fn turns_per_km(net: &RoadNetwork, path: &Path, threshold_deg: f64) -> f64 {
    let km = path.length_m(net) / 1000.0;
    if km <= 0.0 {
        return 0.0;
    }
    turn_count(net, path, threshold_deg) as f64 / km
}

/// Length-weighted share of the path on "wide" roads (category width score
/// ≥ 0.6: motorways, trunks and primary arterials). The "highest rated path
/// follows wide roads" perception feature.
pub fn wide_road_share(net: &RoadNetwork, path: &Path) -> f64 {
    let total: f64 = path.length_m(net);
    if total <= 0.0 {
        return 0.0;
    }
    let wide: f64 = path
        .edges
        .iter()
        .filter(|&&e| net.category(e).width_score() >= 0.6)
        .map(|&e| net.length_m(e) as f64)
        .sum();
    wide / total
}

/// Wiggliness: path length over great-circle distance between endpoints
/// (≥ 1). High values look like detours on a map even when the travel time
/// is good — the "apparent detours that are not" effect from §4.2.
pub fn wiggliness(net: &RoadNetwork, path: &Path) -> f64 {
    let direct = haversine_m(net.point(path.source()), net.point(path.target()));
    if direct <= 0.0 {
        return 1.0;
    }
    (path.length_m(net) / direct).max(1.0)
}

/// Result of a local-optimality probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalOptimality {
    /// Number of probed windows.
    pub windows: usize,
    /// Number of windows that were shortest paths between their endpoints.
    pub optimal_windows: usize,
}

impl LocalOptimality {
    /// Fraction of probed windows that were locally optimal (1.0 when no
    /// window was probed — short paths are trivially optimal).
    pub fn share(&self) -> f64 {
        if self.windows == 0 {
            1.0
        } else {
            self.optimal_windows as f64 / self.windows as f64
        }
    }

    /// True when every probed window is a shortest path.
    pub fn is_locally_optimal(&self) -> bool {
        self.optimal_windows == self.windows
    }
}

/// Probes T-local optimality: windows of weight ≈ `t_fraction ×` path cost
/// are tested for being shortest paths between their endpoints. A path
/// where some window admits a shortcut contains what Abraham et al. call a
/// non-locally-optimal detour.
///
/// The probe slides a window across the path with ~50 % stride and issues
/// at most `max_probes` point-to-point searches, so it is cheap enough for
/// interactive use.
pub fn local_optimality(
    net: &RoadNetwork,
    weights: &[Weight],
    path: &Path,
    t_fraction: f64,
    max_probes: usize,
) -> LocalOptimality {
    let t = (path.cost_ms as f64 * t_fraction) as Cost;
    if t == 0 || path.edges.len() < 2 {
        return LocalOptimality {
            windows: 0,
            optimal_windows: 0,
        };
    }

    // Prefix costs along the path.
    let mut prefix: Vec<Cost> = Vec::with_capacity(path.edges.len() + 1);
    prefix.push(0);
    for &e in &path.edges {
        prefix.push(prefix.last().unwrap() + weights[e.index()] as Cost);
    }

    let mut ws = SearchSpace::new(net);
    let mut windows = 0usize;
    let mut optimal = 0usize;
    let mut i = 0usize;
    while i < path.edges.len() && windows < max_probes {
        // Find j so the window [i, j] has weight >= t (or end of path).
        let mut j = i + 1;
        while j < path.edges.len() && prefix[j] - prefix[i] < t {
            j += 1;
        }
        let a = path.nodes[i];
        let b = path.nodes[j];
        if a != b {
            let window_cost = prefix[j] - prefix[i];
            if let Ok(d) = ws.shortest_distance(net, weights, a, b) {
                windows += 1;
                if d == window_cost {
                    optimal += 1;
                }
            }
        }
        // ~50% stride.
        let stride = ((j - i) / 2).max(1);
        i += stride;
    }
    LocalOptimality {
        windows,
        optimal_windows: optimal,
    }
}

/// Aggregated quality report for a set of alternative routes, as used by
/// the perception model and the ablation experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteSetQuality {
    /// Number of routes.
    pub count: usize,
    /// Mean stretch over routes (1.0 = every route is optimal).
    pub mean_stretch: f64,
    /// Mean pairwise dissimilarity (1.0 = all disjoint).
    pub diversity: f64,
    /// Mean turns per km.
    pub mean_turns_per_km: f64,
    /// Mean wide-road share.
    pub mean_wide_share: f64,
    /// Worst (max) wiggliness over routes.
    pub max_wiggliness: f64,
    /// Mean local-optimality share.
    pub mean_local_optimality: f64,
}

/// Computes the quality report of a route set against the public weights.
pub fn route_set_quality(
    net: &RoadNetwork,
    weights: &[Weight],
    paths: &[Path],
    best_cost: Cost,
) -> RouteSetQuality {
    if paths.is_empty() {
        return RouteSetQuality {
            count: 0,
            mean_stretch: 0.0,
            diversity: 0.0,
            mean_turns_per_km: 0.0,
            mean_wide_share: 0.0,
            max_wiggliness: 0.0,
            mean_local_optimality: 0.0,
        };
    }
    let n = paths.len() as f64;
    let mean_stretch = paths
        .iter()
        .map(|p| stretch(p.cost_under(weights), best_cost))
        .sum::<f64>()
        / n;
    let diversity = crate::similarity::diversity(paths, weights);
    let mean_turns_per_km = paths
        .iter()
        .map(|p| turns_per_km(net, p, 45.0))
        .sum::<f64>()
        / n;
    let mean_wide_share = paths.iter().map(|p| wide_road_share(net, p)).sum::<f64>() / n;
    let max_wiggliness = paths
        .iter()
        .map(|p| wiggliness(net, p))
        .fold(0.0f64, f64::max);
    let mean_local_optimality = paths
        .iter()
        .map(|p| local_optimality(net, weights, p, 0.25, 8).share())
        .sum::<f64>()
        / n;
    RouteSetQuality {
        count: paths.len(),
        mean_stretch,
        diversity,
        mean_turns_per_km,
        mean_wide_share,
        max_wiggliness,
        mean_local_optimality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;
    use arp_roadnet::ids::NodeId;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    fn path_via(net: &RoadNetwork, nodes: &[u32]) -> Path {
        let edges = nodes
            .windows(2)
            .map(|w| net.find_edge(NodeId(w[0]), NodeId(w[1])).unwrap())
            .collect();
        Path::from_edges(net, net.weights(), edges)
    }

    #[test]
    fn stretch_basics() {
        assert_eq!(stretch(1000, 1000), 1.0);
        assert_eq!(stretch(1400, 1000), 1.4);
        assert_eq!(stretch(5, 0), 1.0);
    }

    #[test]
    fn straight_path_has_no_turns() {
        let net = grid(4);
        let p = path_via(&net, &[0, 1, 2, 3]);
        assert_eq!(turn_count(&net, &p, 45.0), 0);
        assert_eq!(turns_per_km(&net, &p, 45.0), 0.0);
    }

    #[test]
    fn staircase_path_counts_turns() {
        let net = grid(4);
        // 0 -> 1 -> 5 -> 6 -> 10: right-angle turns at 1, 5, 6.
        let p = path_via(&net, &[0, 1, 5, 6, 10]);
        assert_eq!(turn_count(&net, &p, 45.0), 3);
        assert!(turns_per_km(&net, &p, 45.0) > 0.0);
    }

    #[test]
    fn wide_share_on_primary_grid_is_one() {
        let net = grid(3);
        let p = path_via(&net, &[0, 1, 2]);
        assert!((wide_road_share(&net, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wiggliness_straight_vs_staircase() {
        let net = grid(4);
        let straight = path_via(&net, &[0, 1, 2, 3]);
        assert!((wiggliness(&net, &straight) - 1.0).abs() < 0.02);
        let staircase = path_via(&net, &[0, 1, 5, 6, 10]);
        assert!(wiggliness(&net, &staircase) > 1.2);
    }

    #[test]
    fn shortest_path_is_locally_optimal() {
        let net = grid(6);
        let p = crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        let lo = local_optimality(&net, net.weights(), &p, 0.3, 16);
        assert!(lo.is_locally_optimal(), "{lo:?}");
        assert_eq!(lo.share(), 1.0);
    }

    #[test]
    fn detour_path_is_not_locally_optimal() {
        let net = grid(6);
        // A path that doubles back: 0 ->1 ->7(down) ->6(left) ->12(down)... make
        // an obvious non-optimal wiggle 0->1->7->6->12->13->... to 35.
        let p = path_via(&net, &[0, 1, 7, 6, 12, 13, 14, 20, 21, 27, 28, 34, 35]);
        let lo = local_optimality(&net, net.weights(), &p, 0.3, 16);
        assert!(lo.windows > 0);
        assert!(!lo.is_locally_optimal(), "{lo:?}");
    }

    #[test]
    fn short_paths_trivially_optimal() {
        let net = grid(3);
        let p = path_via(&net, &[0, 1]);
        let lo = local_optimality(&net, net.weights(), &p, 0.25, 8);
        assert_eq!(lo.windows, 0);
        assert_eq!(lo.share(), 1.0);
    }

    #[test]
    fn route_set_quality_aggregates() {
        let net = grid(6);
        let q = crate::query::AltQuery::paper();
        let paths = crate::plateau::plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(35),
            &q,
            &crate::plateau::PlateauOptions::default(),
        )
        .unwrap();
        let best = paths[0].cost_ms;
        let report = route_set_quality(&net, net.weights(), &paths, best);
        assert_eq!(report.count, paths.len());
        assert!(report.mean_stretch >= 1.0 && report.mean_stretch <= 1.4 + 1e-9);
        assert!(report.diversity >= 0.0 && report.diversity <= 1.0);
        assert!(report.mean_local_optimality > 0.5);
        assert!(report.mean_wide_share > 0.9);
    }

    #[test]
    fn empty_set_quality_is_zeroed() {
        let net = grid(3);
        let report = route_set_quality(&net, net.weights(), &[], 100);
        assert_eq!(report.count, 0);
        assert_eq!(report.mean_stretch, 0.0);
    }
}
