//! Additional filtering/ranking criteria (§4.2, limitation #4).
//!
//! The paper notes that the implemented techniques could "easily include"
//! extra filters — pruning near-duplicate routes, dropping routes that fail
//! local optimality, and ranking by driver-perceivable features (fewer
//! turns, wider roads). This module provides exactly those, as a composable
//! post-processing stage used by the Google-like provider and by the
//! ablation experiments.

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::weight::{Cost, Weight};

use crate::path::Path;
use crate::quality::{local_optimality, turns_per_km, wide_road_share};
use crate::similarity::similarity;

/// Configuration of the post-filter stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterConfig {
    /// Drop a route whose similarity to a kept route exceeds this.
    pub max_similarity: Option<f64>,
    /// Drop routes that fail the T-local-optimality probe.
    pub require_local_optimality: bool,
    /// Window size for the local-optimality probe (fraction of route cost).
    pub lo_t_fraction: f64,
    /// Re-rank by a composite comfort score (turns + road width) instead of
    /// pure cost; the fastest route always stays first.
    pub comfort_ranking: bool,
    /// Weight of the turns-per-km penalty in the comfort score.
    pub turns_weight: f64,
    /// Weight of the wide-road bonus in the comfort score.
    pub width_weight: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            max_similarity: Some(0.8),
            require_local_optimality: false,
            lo_t_fraction: 0.25,
            comfort_ranking: false,
            turns_weight: 0.05,
            width_weight: 0.15,
        }
    }
}

impl FilterConfig {
    /// No filtering at all (the study's baseline configuration).
    pub fn none() -> Self {
        FilterConfig {
            max_similarity: None,
            require_local_optimality: false,
            comfort_ranking: false,
            ..Default::default()
        }
    }

    /// Everything on — what the paper speculates a commercial product does.
    pub fn commercial() -> Self {
        FilterConfig {
            max_similarity: Some(0.8),
            require_local_optimality: true,
            lo_t_fraction: 0.25,
            comfort_ranking: true,
            turns_weight: 0.05,
            width_weight: 0.15,
        }
    }
}

/// Applies the configured filters to a route set.
///
/// Routes must be sorted so the preferred (fastest) route is first; the
/// first route is always kept. Returns at most `k` routes.
pub fn apply_filters(
    net: &RoadNetwork,
    weights: &[Weight],
    mut paths: Vec<Path>,
    k: usize,
    config: &FilterConfig,
) -> Vec<Path> {
    if paths.is_empty() || k == 0 {
        paths.truncate(k);
        return paths;
    }

    let mut kept: Vec<Path> = Vec::with_capacity(k);
    for (i, path) in paths.into_iter().enumerate() {
        if kept.len() >= k && !config.comfort_ranking {
            break;
        }
        if i > 0 {
            if let Some(max_sim) = config.max_similarity {
                if kept.iter().any(|p| similarity(&path, p, weights) > max_sim) {
                    continue;
                }
            }
            if config.require_local_optimality {
                let lo = local_optimality(net, weights, &path, config.lo_t_fraction, 8);
                if !lo.is_locally_optimal() {
                    continue;
                }
            }
        }
        kept.push(path);
    }

    if config.comfort_ranking && kept.len() > 2 {
        // Keep the fastest first; order the rest by comfort-adjusted cost.
        let best_cost = kept[0].cost_ms.max(1);
        let score = |p: &Path| -> f64 {
            let rel_cost = p.cost_under(weights) as f64 / best_cost as f64;
            rel_cost + config.turns_weight * turns_per_km(net, p, 45.0)
                - config.width_weight * wide_road_share(net, p)
        };
        let mut rest: Vec<(f64, Path)> = kept.drain(1..).map(|p| (score(&p), p)).collect();
        rest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        kept.extend(rest.into_iter().map(|(_, p)| p));
    }

    kept.truncate(k);
    kept
}

/// Sorts routes by public cost, keeping them stable for ties. Providers
/// call this before filtering so "fastest first" holds.
pub fn sort_by_cost(paths: &mut [Path], weights: &[Weight]) {
    paths.sort_by_key(|p| p.cost_under(weights) as Cost);
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;
    use arp_roadnet::ids::NodeId;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    fn path_via(net: &RoadNetwork, nodes: &[u32]) -> Path {
        let edges = nodes
            .windows(2)
            .map(|w| net.find_edge(NodeId(w[0]), NodeId(w[1])).unwrap())
            .collect();
        Path::from_edges(net, net.weights(), edges)
    }

    #[test]
    fn similarity_filter_drops_near_duplicates() {
        let net = grid(4);
        let a = path_via(&net, &[0, 1, 2, 3, 7, 11, 15]);
        let b = path_via(&net, &[0, 1, 2, 3, 7, 11, 15]); // duplicate
        let c = path_via(&net, &[0, 4, 8, 12, 13, 14, 15]); // disjoint
        let cfg = FilterConfig::default();
        let kept = apply_filters(&net, net.weights(), vec![a, b, c.clone()], 3, &cfg);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[1].edges, c.edges);
    }

    #[test]
    fn first_route_always_kept() {
        let net = grid(4);
        // Even a wildly detouring first route survives: it is the anchor.
        let weird = path_via(&net, &[0, 1, 5, 4, 8, 9, 13, 14, 15]);
        let cfg = FilterConfig::commercial();
        let kept = apply_filters(&net, net.weights(), vec![weird.clone()], 3, &cfg);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].edges, weird.edges);
    }

    #[test]
    fn local_optimality_filter_drops_detours() {
        let net = grid(6);
        let best =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        // A zig-zag detour route.
        let detour = path_via(
            &net,
            &[0, 1, 7, 6, 12, 13, 19, 18, 24, 25, 31, 32, 33, 34, 35],
        );
        let cfg = FilterConfig {
            max_similarity: None,
            require_local_optimality: true,
            ..Default::default()
        };
        let kept = apply_filters(&net, net.weights(), vec![best.clone(), detour], 3, &cfg);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].edges, best.edges);
    }

    #[test]
    fn no_filter_config_keeps_everything_up_to_k() {
        let net = grid(4);
        let a = path_via(&net, &[0, 1, 2, 3]);
        let b = path_via(&net, &[0, 1, 2, 3]);
        let cfg = FilterConfig::none();
        let kept = apply_filters(&net, net.weights(), vec![a, b], 5, &cfg);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn truncates_to_k() {
        let net = grid(4);
        let paths: Vec<Path> = vec![
            path_via(&net, &[0, 1, 2, 3]),
            path_via(&net, &[0, 4, 5, 6, 7]),
            path_via(&net, &[0, 4, 8, 12, 13]),
        ];
        let kept = apply_filters(&net, net.weights(), paths, 2, &FilterConfig::none());
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn sort_by_cost_orders_ascending() {
        let net = grid(4);
        let long = path_via(&net, &[0, 1, 5, 9, 13, 14, 15]);
        let short = path_via(&net, &[0, 1, 2, 3]);
        let mut v = vec![long, short];
        sort_by_cost(&mut v, net.weights());
        assert!(v[0].cost_ms <= v[1].cost_ms);
    }

    #[test]
    fn comfort_ranking_prefers_straight_routes() {
        let net = grid(6);
        let best = crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(5)).unwrap();
        // Two alternatives of identical cost structure: a straight-ish one
        // and a staircase, both 0 -> 5 avoiding the direct row partially.
        let staircase = path_via(&net, &[0, 6, 7, 1, 2, 8, 9, 3, 4, 10, 11, 5]);
        let straight = path_via(&net, &[0, 6, 7, 8, 9, 10, 11, 5]);
        let cfg = FilterConfig {
            max_similarity: None,
            require_local_optimality: false,
            comfort_ranking: true,
            ..Default::default()
        };
        let kept = apply_filters(
            &net,
            net.weights(),
            vec![best.clone(), staircase.clone(), straight.clone()],
            3,
            &cfg,
        );
        assert_eq!(kept[0].edges, best.edges);
        // The straighter alternative should rank before the staircase.
        assert_eq!(kept[1].edges, straight.edges, "comfort ranking failed");
    }

    #[test]
    fn empty_and_k_zero() {
        let net = grid(3);
        assert!(apply_filters(&net, net.weights(), vec![], 3, &FilterConfig::default()).is_empty());
        let p = path_via(&net, &[0, 1]);
        assert!(
            apply_filters(&net, net.weights(), vec![p], 0, &FilterConfig::default()).is_empty()
        );
    }
}
