//! The **Penalty** technique (§2.1 of the paper).
//!
//! Iteratively computes shortest paths; after each iteration every edge of
//! the newly found path has its weight multiplied by the penalty factor
//! (1.4 in the paper) in a private overlay, so subsequent iterations are
//! steered onto different streets. Candidates are priced on the *original*
//! weights, and rejected when they exceed the stretch bound, duplicate an
//! earlier path, or are nearly identical to one (the additional filtering
//! criterion the paper mentions).

use std::collections::HashSet;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::{apply_penalty, Weight};

use crate::error::CoreError;
use crate::path::Path;
use crate::query::AltQuery;
use crate::search::SearchSpace;
use crate::similarity::similarity;

/// Options specific to the penalty algorithm.
#[derive(Clone, Copy, Debug)]
pub struct PenaltyOptions {
    /// Reject a candidate whose similarity to an accepted path exceeds
    /// this (1.0 disables the filter — any non-duplicate is accepted).
    pub max_similarity: f64,
    /// Also penalize the reverse edge of every path edge, discouraging
    /// trivial there-and-back variations on two-way streets.
    pub penalize_reverse: bool,
}

impl Default for PenaltyOptions {
    fn default() -> Self {
        PenaltyOptions {
            max_similarity: 0.9,
            penalize_reverse: true,
        }
    }
}

/// Candidate-funnel counters of one penalty call, for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PenaltyStats {
    /// Penalized re-search iterations actually run (shortest path found).
    pub iterations: u64,
    /// Candidate paths generated, including the initial shortest path.
    pub candidates: u64,
    /// Candidates rejected for exceeding the stretch bound.
    pub rejected_bound: u64,
    /// Candidates rejected as exact duplicates of earlier paths.
    pub rejected_duplicate: u64,
    /// Candidates rejected by the similarity filter.
    pub rejected_similarity: u64,
    /// Candidates rejected for revisiting a vertex.
    pub rejected_non_simple: u64,
    /// The workspace's [`crate::SearchBudget`] tripped mid-call; the
    /// returned paths are the alternatives admitted up to that point.
    pub interrupted: bool,
}

/// Computes up to `query.k` alternative paths with the penalty method.
///
/// The first returned path is always the true shortest path. Paths are
/// returned in discovery order, which is non-decreasing penalized cost but
/// not necessarily non-decreasing true cost.
pub fn penalty_alternatives(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PenaltyOptions,
) -> Result<Vec<Path>, CoreError> {
    let mut ws = SearchSpace::new(net);
    penalty_alternatives_with(&mut ws, net, weights, source, target, query, options)
}

/// Like [`penalty_alternatives`] but reusing a caller-provided workspace.
pub fn penalty_alternatives_with(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PenaltyOptions,
) -> Result<Vec<Path>, CoreError> {
    let mut stats = PenaltyStats::default();
    penalty_alternatives_observed(ws, net, weights, source, target, query, options, &mut stats)
}

/// Like [`penalty_alternatives_with`] but also reporting the candidate
/// funnel of the call into `stats` (which is reset first).
#[allow(clippy::too_many_arguments)]
pub fn penalty_alternatives_observed(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PenaltyOptions,
    stats: &mut PenaltyStats,
) -> Result<Vec<Path>, CoreError> {
    *stats = PenaltyStats::default();
    if query.k == 0 {
        return Ok(Vec::new());
    }
    let best = match ws.shortest_path(net, weights, source, target) {
        Ok(p) => p,
        Err(CoreError::Interrupted) => {
            // Nothing admitted yet: an interrupted call is not an error,
            // it just has no partial routes to hand back.
            stats.interrupted = true;
            return Ok(Vec::new());
        }
        Err(e) => return Err(e),
    };
    Ok(penalty_rounds(
        ws, net, weights, source, target, query, options, stats, best,
    ))
}

/// Like [`penalty_alternatives_observed`], but seeded with a prepared
/// base optimal route — typically a
/// [`crate::substrate::SearchSubstrate`]'s — instead of searching for it
/// first. The penalized re-search iterations still run through `ws`
/// (and its budget); only the initial full Dijkstra is saved. The
/// rounds themselves are the exact code the self-computing path runs,
/// so results are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn penalty_alternatives_from_base(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PenaltyOptions,
    stats: &mut PenaltyStats,
    base: &Path,
) -> Result<Vec<Path>, CoreError> {
    *stats = PenaltyStats::default();
    if query.k == 0 {
        return Ok(Vec::new());
    }
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    debug_assert_eq!(base.source(), source);
    debug_assert_eq!(base.target(), target);
    Ok(penalty_rounds(
        ws,
        net,
        weights,
        source,
        target,
        query,
        options,
        stats,
        base.clone(),
    ))
}

/// The search-independent tail of the technique: penalize the base
/// route and iterate re-searches on the private overlay. Shared
/// verbatim by [`penalty_alternatives_observed`] (self-computed base)
/// and [`penalty_alternatives_from_base`] (substrate-fed base).
#[allow(clippy::too_many_arguments)]
fn penalty_rounds(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PenaltyOptions,
    stats: &mut PenaltyStats,
    best: Path,
) -> Vec<Path> {
    // Private penalized overlay.
    let mut overlay: Vec<Weight> = weights.to_vec();
    let bound = query.cost_bound(best.cost_ms);
    stats.candidates += 1;

    let mut accepted: Vec<Path> = Vec::with_capacity(query.k);
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    seen.insert(best.key());
    penalize(&mut overlay, net, &best, query.penalty_factor, options);
    accepted.push(best);

    let budget = query.iteration_budget();
    for _ in 1..budget {
        if accepted.len() >= query.k {
            break;
        }
        // Poll between rounds so a budget tripped by a sibling search (or
        // the deadline) stops the technique before the next re-search.
        if ws.budget().interrupted() {
            stats.interrupted = true;
            break;
        }
        let candidate = match ws.shortest_path(net, &overlay, source, target) {
            Ok(p) => p,
            Err(CoreError::Interrupted) => {
                stats.interrupted = true;
                break;
            }
            Err(_) => break,
        };
        stats.iterations += 1;
        stats.candidates += 1;
        // Price on the true weights.
        let true_cost = candidate.cost_under(weights);
        let candidate = Path {
            cost_ms: true_cost,
            ..candidate
        };
        // Penalize regardless of acceptance so the search keeps moving.
        penalize(&mut overlay, net, &candidate, query.penalty_factor, options);

        if true_cost > bound {
            // Everything from here on only gets more expensive in the
            // overlay, but true cost is not monotone; keep trying within
            // the budget only if we are still below the bound by overlay.
            stats.rejected_bound += 1;
            continue;
        }
        if !seen.insert(candidate.key()) {
            stats.rejected_duplicate += 1;
            continue;
        }
        if !candidate.is_simple() {
            stats.rejected_non_simple += 1;
            continue;
        }
        let too_similar = accepted
            .iter()
            .any(|p| similarity(&candidate, p, weights) > options.max_similarity);
        if too_similar {
            stats.rejected_similarity += 1;
            continue;
        }
        accepted.push(candidate);
    }
    accepted
}

fn penalize(
    overlay: &mut [Weight],
    net: &RoadNetwork,
    path: &Path,
    factor: f64,
    options: &PenaltyOptions,
) {
    for &e in &path.edges {
        overlay[e.index()] = apply_penalty(overlay[e.index()], factor);
        if options.penalize_reverse {
            if let Some(r) = net.reverse_edge(e) {
                overlay[r.index()] = apply_penalty(overlay[r.index()], factor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    /// A grid big enough to host several distinct corridors.
    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn first_path_is_shortest() {
        let net = grid(6);
        let q = AltQuery::paper();
        let paths = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(35),
            &q,
            &PenaltyOptions::default(),
        )
        .unwrap();
        assert!(!paths.is_empty());
        let direct =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        assert_eq!(paths[0].cost_ms, direct.cost_ms);
    }

    #[test]
    fn produces_k_distinct_paths_on_grid() {
        let net = grid(8);
        let q = AltQuery::paper();
        let paths = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &PenaltyOptions::default(),
        )
        .unwrap();
        assert_eq!(paths.len(), 3);
        for i in 0..paths.len() {
            assert!(paths[i].validate(&net));
            assert!(paths[i].is_simple());
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].edges, paths[j].edges);
            }
        }
    }

    #[test]
    fn all_paths_within_stretch_bound() {
        let net = grid(8);
        let q = AltQuery::paper();
        let paths = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &PenaltyOptions::default(),
        )
        .unwrap();
        let best = paths[0].cost_ms;
        for p in &paths {
            assert!(p.cost_ms <= q.cost_bound(best), "{} > bound", p.cost_ms);
            // Costs are true costs, not penalized ones.
            assert_eq!(p.cost_ms, p.cost_under(net.weights()));
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        let net = grid(4);
        let q = AltQuery::paper().with_k(0);
        let paths = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(15),
            &q,
            &PenaltyOptions::default(),
        )
        .unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn k_one_returns_only_shortest() {
        let net = grid(4);
        let q = AltQuery::paper().with_k(1);
        let paths = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(15),
            &q,
            &PenaltyOptions::default(),
        )
        .unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn line_graph_has_single_alternative() {
        // On a path graph there is only one route; penalty cannot invent more.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(Point::new(144.0 + i as f64 * 0.01, -37.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Primary));
        }
        let net = b.build();
        let paths = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(4),
            &AltQuery::paper(),
            &PenaltyOptions::default(),
        )
        .unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn unreachable_is_error() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        assert!(penalty_alternatives(
            &net,
            net.weights(),
            NodeId(1),
            NodeId(0),
            &AltQuery::paper(),
            &PenaltyOptions::default(),
        )
        .is_err());
    }

    #[test]
    fn observed_stats_balance_the_funnel() {
        let net = grid(8);
        let mut ws = SearchSpace::new(&net);
        let mut stats = PenaltyStats::default();
        let paths = penalty_alternatives_observed(
            &mut ws,
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &PenaltyOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(stats.iterations >= 1);
        assert_eq!(stats.candidates, stats.iterations + 1);
        let rejected = stats.rejected_bound
            + stats.rejected_duplicate
            + stats.rejected_similarity
            + stats.rejected_non_simple;
        assert_eq!(stats.candidates, paths.len() as u64 + rejected);
    }

    #[test]
    fn interrupted_call_returns_admitted_prefix() {
        use crate::budget::SearchBudget;

        let net = grid(8);
        let q = AltQuery::paper();
        // Uninterrupted reference run.
        let full = penalty_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &PenaltyOptions::default(),
        )
        .unwrap();
        assert!(full.len() > 1);

        // Cancel after the first search: the technique must return the
        // shortest path alone and flag the interruption, not error out.
        let mut ws = SearchSpace::new(&net);
        let mut stats = PenaltyStats::default();
        // Expansion cap of one pop: the initial search completes (its
        // residual pops are only charged at the end), the cap then trips
        // sticky, and the between-rounds poll stops the second round.
        ws.set_budget(SearchBudget::new().with_expansion_cap(1));
        let partial = penalty_alternatives_observed(
            &mut ws,
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &PenaltyOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(stats.interrupted);
        assert!(partial.len() < full.len());
        assert!(!partial.is_empty(), "shortest path already admitted");
        // Admission order is deterministic: the partial run is a prefix.
        for (got, want) in partial.iter().zip(full.iter()) {
            assert_eq!(got.edges, want.edges);
        }
    }

    #[test]
    fn strict_similarity_filter_reduces_overlap() {
        let net = grid(8);
        let loose = PenaltyOptions {
            max_similarity: 1.0,
            penalize_reverse: true,
        };
        let strict = PenaltyOptions {
            max_similarity: 0.5,
            penalize_reverse: true,
        };
        let q = AltQuery::paper();
        let pl =
            penalty_alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q, &loose).unwrap();
        let ps =
            penalty_alternatives(&net, net.weights(), NodeId(0), NodeId(63), &q, &strict).unwrap();
        let div_loose = crate::similarity::diversity(&pl, net.weights());
        let div_strict = crate::similarity::diversity(&ps, net.weights());
        assert!(div_strict >= div_loose - 1e-9);
    }
}
