//! Observability glue: per-query search statistics and the pre-resolved
//! metric bundles the hot paths flush them into.
//!
//! The search workspaces ([`crate::search::SearchSpace`],
//! [`crate::bidir::BidirSearch`], [`crate::ch::ChSearch`]) always count
//! their work into a plain [`SearchStats`] (three `u64` increments per
//! settled vertex — unmeasurable against heap traffic). Exporting those
//! counts is opt-in: attach a [`SearchMetrics`] bundle resolved from an
//! [`arp_obs::Registry`] and every completed query is added to the shared
//! counters. Detached bundles (the default) make the flush a no-op, so
//! uninstrumented callers pay nothing.
//!
//! Metric names and label conventions are documented in DESIGN.md §7.

use arp_obs::{Counter, Histogram, Registry, DEFAULT_LATENCY_BUCKETS_MS};

use crate::dissimilarity::DissimilarityStats;
use crate::penalty::PenaltyStats;
use crate::plateau::PlateauStats;

/// Work counters of one search query.
///
/// `settled <= heap_pops` (stale heap entries are popped but not settled)
/// and `relaxed` counts every edge inspected from a settled vertex.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Heap extractions, including stale entries.
    pub heap_pops: u64,
    /// Vertices settled (popped with an up-to-date label).
    pub settled: u64,
    /// Edges inspected for relaxation from settled vertices.
    pub relaxed: u64,
    /// [`crate::SearchBudget`] polls performed (one per
    /// [`crate::budget::CHECK_INTERVAL`] heap pops, plus one on entry) —
    /// the overhead knob of cooperative cancellation.
    pub budget_checks: u64,
}

impl SearchStats {
    /// Accumulates another query's counts into `self`.
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.heap_pops += other.heap_pops;
        self.settled += other.settled;
        self.relaxed += other.relaxed;
        self.budget_checks += other.budget_checks;
    }
}

/// Pre-resolved counters a search workspace flushes [`SearchStats`] into.
///
/// Resolve once with [`SearchMetrics::new`] (labels typically identify the
/// algorithm or the owning technique), attach with
/// `SearchSpace::set_metrics` (and the `BidirSearch`/`ChSearch` twins).
/// The `Default` bundle is detached and records nothing.
#[derive(Clone, Debug, Default)]
pub struct SearchMetrics {
    queries: Counter,
    settled: Counter,
    heap_pops: Counter,
    relaxed: Counter,
    budget_checks: Counter,
}

impl SearchMetrics {
    /// Resolves the four search counters under `labels`
    /// (e.g. `[("technique", "penalty")]` or `[("algo", "dijkstra")]`).
    pub fn new(registry: &Registry, labels: &[(&str, &str)]) -> SearchMetrics {
        SearchMetrics {
            queries: registry.counter(
                "arp_search_queries_total",
                "Search queries completed.",
                labels,
            ),
            settled: registry.counter(
                "arp_search_settled_nodes_total",
                "Vertices settled by searches.",
                labels,
            ),
            heap_pops: registry.counter(
                "arp_search_heap_pops_total",
                "Priority-queue extractions by searches (incl. stale entries).",
                labels,
            ),
            relaxed: registry.counter(
                "arp_search_relaxed_edges_total",
                "Edges inspected for relaxation by searches.",
                labels,
            ),
            budget_checks: registry.counter(
                "arp_search_budget_checks_total",
                "Cooperative-cancellation budget polls performed by searches.",
                labels,
            ),
        }
    }

    /// Flushes one completed query's counts.
    #[inline]
    pub fn record(&self, stats: &SearchStats) {
        self.queries.inc();
        self.settled.add(stats.settled);
        self.heap_pops.add(stats.heap_pops);
        self.relaxed.add(stats.relaxed);
        self.budget_checks.add(stats.budget_checks);
    }
}

/// Pre-resolved per-technique metrics a provider records its calls into:
/// call/error counts, a latency histogram, candidate-funnel counters and
/// the technique-specific internals (penalty iterations, plateaus found,
/// rejection reasons).
///
/// Built with [`TechniqueMetrics::new`]; the `Default` bundle is detached.
#[derive(Clone, Debug, Default)]
pub struct TechniqueMetrics {
    pub(crate) calls: Counter,
    pub(crate) errors: Counter,
    pub(crate) interrupted: Counter,
    pub(crate) latency: Histogram,
    pub(crate) generated: Counter,
    pub(crate) admitted: Counter,
    pub(crate) rejected_bound: Counter,
    pub(crate) rejected_duplicate: Counter,
    pub(crate) rejected_similarity: Counter,
    pub(crate) rejected_non_simple: Counter,
    pub(crate) rejected_dissimilar: Counter,
    pub(crate) rejected_short: Counter,
    pub(crate) penalty_iterations: Counter,
    pub(crate) plateaus_found: Counter,
    /// Search counters labeled with this technique, for the provider's
    /// internal workspaces.
    pub(crate) search: SearchMetrics,
}

impl TechniqueMetrics {
    /// Resolves the technique bundle under `technique` (the
    /// [`crate::provider::ProviderKind::slug`] values).
    pub fn new(registry: &Registry, technique: &str) -> TechniqueMetrics {
        let labels: &[(&str, &str)] = &[("technique", technique)];
        let rejected = |reason: &str| {
            registry.counter(
                "arp_technique_rejected_total",
                "Candidate routes rejected, by reason.",
                &[("technique", technique), ("reason", reason)],
            )
        };
        TechniqueMetrics {
            calls: registry.counter(
                "arp_technique_calls_total",
                "Alternative-route queries answered per technique.",
                labels,
            ),
            errors: registry.counter(
                "arp_technique_errors_total",
                "Alternative-route queries that returned an error.",
                labels,
            ),
            interrupted: registry.counter(
                "arp_technique_interrupted_total",
                "Alternative-route queries cut short by their budget \
                 (partial routes were returned; not counted as errors).",
                labels,
            ),
            latency: registry.histogram(
                "arp_technique_latency_ms",
                "Per-call latency of a technique in milliseconds.",
                labels,
                &DEFAULT_LATENCY_BUCKETS_MS,
            ),
            generated: registry.counter(
                "arp_technique_candidates_total",
                "Candidate routes generated before filtering.",
                labels,
            ),
            admitted: registry.counter(
                "arp_technique_admitted_total",
                "Routes admitted into the returned result set.",
                labels,
            ),
            rejected_bound: rejected("bound"),
            rejected_duplicate: rejected("duplicate"),
            rejected_similarity: rejected("similarity"),
            rejected_non_simple: rejected("non_simple"),
            rejected_dissimilar: rejected("dissimilar"),
            rejected_short: rejected("short"),
            penalty_iterations: registry.counter(
                "arp_penalty_iterations_total",
                "Penalized re-search iterations run by the Penalty technique.",
                labels,
            ),
            plateaus_found: registry.counter(
                "arp_plateau_found_total",
                "Plateaus discovered in forward/backward tree pairs.",
                labels,
            ),
            search: SearchMetrics::new(registry, labels),
        }
    }

    /// Search counters labeled with this technique, to attach to the
    /// provider's internal workspace.
    pub fn search(&self) -> &SearchMetrics {
        &self.search
    }

    /// Records the funnel of one Penalty call (admitted routes are
    /// recorded separately from the final result length).
    pub(crate) fn record_penalty(&self, stats: &PenaltyStats) {
        self.penalty_iterations.add(stats.iterations);
        self.generated.add(stats.candidates);
        self.rejected_bound.add(stats.rejected_bound);
        self.rejected_duplicate.add(stats.rejected_duplicate);
        self.rejected_similarity.add(stats.rejected_similarity);
        self.rejected_non_simple.add(stats.rejected_non_simple);
    }

    /// Records the funnel of one Plateaus call.
    pub(crate) fn record_plateau(&self, stats: &PlateauStats) {
        self.plateaus_found.add(stats.plateaus_found);
        self.generated.add(stats.candidates);
        self.rejected_bound.add(stats.rejected_bound);
        self.rejected_similarity.add(stats.rejected_similarity);
        self.rejected_non_simple.add(stats.rejected_non_simple);
        self.rejected_short.add(stats.rejected_short);
    }

    /// Records the funnel of one Dissimilarity call.
    pub(crate) fn record_dissimilarity(&self, stats: &DissimilarityStats) {
        self.generated.add(stats.candidates);
        self.rejected_duplicate.add(stats.rejected_duplicate);
        self.rejected_non_simple.add(stats.rejected_non_simple);
        self.rejected_dissimilar.add(stats.rejected_dissimilar);
    }

    /// Records the bookkeeping shared by every call: one call, its final
    /// admitted count, and the elapsed span (via the returned timer).
    pub(crate) fn begin_call(&self) -> arp_obs::Timer {
        self.calls.inc();
        self.latency.start_timer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut a = SearchStats {
            heap_pops: 1,
            settled: 2,
            relaxed: 3,
            budget_checks: 1,
        };
        a.accumulate(&SearchStats {
            heap_pops: 10,
            settled: 20,
            relaxed: 30,
            budget_checks: 4,
        });
        assert_eq!(
            a,
            SearchStats {
                heap_pops: 11,
                settled: 22,
                relaxed: 33,
                budget_checks: 5,
            }
        );
    }

    #[test]
    fn detached_bundles_record_nothing() {
        let m = SearchMetrics::default();
        m.record(&SearchStats {
            heap_pops: 5,
            settled: 5,
            relaxed: 5,
            ..SearchStats::default()
        });
        let t = TechniqueMetrics::default();
        let timer = t.begin_call();
        assert_eq!(timer.stop_ms(), 0.0);
    }

    #[test]
    fn search_metrics_flush_to_registry() {
        let reg = Registry::new();
        let m = SearchMetrics::new(&reg, &[("algo", "dijkstra")]);
        m.record(&SearchStats {
            heap_pops: 7,
            settled: 6,
            relaxed: 20,
            budget_checks: 2,
        });
        m.record(&SearchStats {
            heap_pops: 3,
            settled: 3,
            relaxed: 9,
            budget_checks: 1,
        });
        let labels = &[("algo", "dijkstra")][..];
        assert_eq!(reg.counter_value("arp_search_queries_total", labels), 2);
        assert_eq!(
            reg.counter_value("arp_search_settled_nodes_total", labels),
            9
        );
        assert_eq!(reg.counter_value("arp_search_heap_pops_total", labels), 10);
        assert_eq!(
            reg.counter_value("arp_search_relaxed_edges_total", labels),
            29
        );
        assert_eq!(
            reg.counter_value("arp_search_budget_checks_total", labels),
            3
        );
    }
}
