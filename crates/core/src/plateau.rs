//! The **Plateaus** technique (§2.2 of the paper, Jones's Choice Routing).
//!
//! Two shortest-path trees are grown — a forward tree `T_f` from the source
//! and a backward tree `T_b` from the target. An edge common to both trees
//! (it is `v`'s forward parent *and* its tail's backward parent) lies on a
//! *plateau*; maximal chains of common edges are the plateaus. Longer
//! plateaus yield more meaningful alternatives, so the top-k plateaus by
//! length are selected and each is completed into a full path
//! `sp(s,u) + plateau(u,v) + sp(v,t)`.
//!
//! The shortest path itself is always the longest plateau, so it is always
//! the first result. Plateau paths are locally optimal by construction
//! (every subpath inside the plateau is a shortest path in both trees).

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight};

use crate::budget::SearchBudget;
use crate::error::CoreError;
use crate::path::Path;
use crate::query::AltQuery;
use crate::search::{Direction, SearchSpace, ShortestPathTree};
use crate::similarity::similarity;

/// A plateau: a maximal chain of edges common to the forward and backward
/// shortest-path trees.
#[derive(Clone, Debug)]
pub struct Plateau {
    /// Chain edges in travel order (`start` → `end`).
    pub edges: Vec<EdgeId>,
    /// First vertex of the chain (closer to the source).
    pub start: NodeId,
    /// Last vertex of the chain (closer to the target).
    pub end: NodeId,
    /// Total weight of the chain in ms.
    pub weight_ms: Cost,
    /// Cost of the full path through this plateau:
    /// `d_f(start) + weight + d_b(end)`.
    pub via_cost_ms: Cost,
}

/// Options specific to the plateau algorithm.
#[derive(Clone, Copy, Debug)]
pub struct PlateauOptions {
    /// Reject a completed path whose similarity to an already accepted one
    /// exceeds this.
    pub max_similarity: f64,
    /// Minimum plateau weight as a fraction of the shortest-path cost;
    /// micro-plateaus below this are noise.
    pub min_plateau_fraction: f64,
}

impl Default for PlateauOptions {
    fn default() -> Self {
        PlateauOptions {
            max_similarity: 0.9,
            min_plateau_fraction: 0.01,
        }
    }
}

/// Candidate-funnel counters of one plateau call, for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlateauStats {
    /// Plateaus discovered in the forward/backward tree pair.
    pub plateaus_found: u64,
    /// Plateaus considered as route candidates.
    pub candidates: u64,
    /// Candidates rejected for exceeding the stretch bound.
    pub rejected_bound: u64,
    /// Candidates rejected as micro-plateaus below the minimum weight.
    pub rejected_short: u64,
    /// Completed paths rejected by the similarity filter.
    pub rejected_similarity: u64,
    /// Completed paths rejected for revisiting a vertex.
    pub rejected_non_simple: u64,
    /// The workspace's [`crate::SearchBudget`] tripped mid-call; the
    /// returned paths are the alternatives admitted up to that point.
    pub interrupted: bool,
}

/// Finds all plateaus of the tree pair, unsorted.
pub fn find_plateaus(
    net: &RoadNetwork,
    fwd: &ShortestPathTree,
    bwd: &ShortestPathTree,
) -> Vec<Plateau> {
    debug_assert_eq!(fwd.direction, Direction::Forward);
    debug_assert_eq!(bwd.direction, Direction::Backward);
    let n = net.num_nodes();

    // Edge e = (u, v) is common iff fwd.parent[v] == e and bwd.parent[u] == e.
    let is_common = |e: EdgeId| -> bool {
        let u = net.tail(e);
        let v = net.head(e);
        fwd.parent[v.index()] == e && bwd.parent[u.index()] == e
    };

    // Each vertex has at most one outgoing common edge (its backward
    // parent) and at most one incoming common edge (its forward parent),
    // so common edges form vertex-disjoint chains.
    let out_common = |u: NodeId| -> Option<EdgeId> {
        let e = bwd.parent[u.index()];
        (!e.is_invalid() && is_common(e)).then_some(e)
    };
    let in_common = |v: NodeId| -> Option<EdgeId> {
        let e = fwd.parent[v.index()];
        (!e.is_invalid() && is_common(e)).then_some(e)
    };

    let mut plateaus = Vec::new();
    for u in 0..n as u32 {
        let u = NodeId(u);
        // Chain starts: vertex with an outgoing common edge but no incoming.
        if out_common(u).is_none() || in_common(u).is_some() {
            continue;
        }
        let mut edges = Vec::new();
        let mut weight: Cost = 0;
        let mut cur = u;
        while let Some(e) = out_common(cur) {
            edges.push(e);
            weight += (fwd.dist[net.head(e).index()] - fwd.dist[cur.index()]) as Cost;
            cur = net.head(e);
        }
        let via_cost = fwd.dist[u.index()] + weight + bwd.dist[cur.index()];
        plateaus.push(Plateau {
            edges,
            start: u,
            end: cur,
            weight_ms: weight,
            via_cost_ms: via_cost,
        });
    }
    plateaus
}

/// Computes up to `query.k` alternative paths with the plateau method.
pub fn plateau_alternatives(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PlateauOptions,
) -> Result<Vec<Path>, CoreError> {
    let mut ws = SearchSpace::new(net);
    plateau_alternatives_with(&mut ws, net, weights, source, target, query, options)
}

/// Like [`plateau_alternatives`] but reusing a caller-provided workspace.
pub fn plateau_alternatives_with(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PlateauOptions,
) -> Result<Vec<Path>, CoreError> {
    let mut stats = PlateauStats::default();
    plateau_alternatives_observed(ws, net, weights, source, target, query, options, &mut stats)
}

/// Like [`plateau_alternatives_with`] but also reporting the candidate
/// funnel of the call into `stats` (which is reset first).
#[allow(clippy::too_many_arguments)]
pub fn plateau_alternatives_observed(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &PlateauOptions,
    stats: &mut PlateauStats,
) -> Result<Vec<Path>, CoreError> {
    *stats = PlateauStats::default();
    if query.k == 0 {
        return Ok(Vec::new());
    }
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    let fwd = match ws.shortest_path_tree(net, weights, source, Direction::Forward) {
        Ok(tree) => tree,
        Err(CoreError::Interrupted) => {
            // Interrupted before anything was admitted: empty partial.
            stats.interrupted = true;
            return Ok(Vec::new());
        }
        Err(e) => return Err(e),
    };
    if !fwd.reached(target) {
        return Err(CoreError::Unreachable { source, target });
    }
    let bwd = match ws.shortest_path_tree(net, weights, target, Direction::Backward) {
        Ok(tree) => tree,
        Err(CoreError::Interrupted) => {
            // The forward tree already proves the shortest path; hand it
            // back as the (sole) partial alternative.
            stats.interrupted = true;
            let edges = fwd.path_edges(net, target).unwrap_or_default();
            if edges.is_empty() {
                return Ok(Vec::new());
            }
            return Ok(vec![Path::from_edges(net, weights, edges)]);
        }
        Err(e) => return Err(e),
    };
    Ok(sweep_plateaus(
        net,
        weights,
        query,
        options,
        stats,
        &fwd,
        &bwd,
        ws.budget(),
    ))
}

/// Like [`plateau_alternatives_observed`], but reusing a prepared tree
/// pair — typically a [`crate::substrate::SearchSubstrate`]'s — instead
/// of growing one per call. `budget` governs the sweep's cooperative
/// polls only; the tree-building cost was paid by whoever grew the
/// trees. The sweep itself is the exact code the self-computing path
/// runs, so results are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn plateau_alternatives_from_trees(
    net: &RoadNetwork,
    weights: &[Weight],
    query: &AltQuery,
    options: &PlateauOptions,
    stats: &mut PlateauStats,
    fwd: &ShortestPathTree,
    bwd: &ShortestPathTree,
    budget: &SearchBudget,
) -> Result<Vec<Path>, CoreError> {
    *stats = PlateauStats::default();
    if query.k == 0 {
        return Ok(Vec::new());
    }
    let (source, target) = (fwd.root, bwd.root);
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    debug_assert_eq!(fwd.direction, Direction::Forward);
    debug_assert_eq!(bwd.direction, Direction::Backward);
    if !fwd.reached(target) {
        return Err(CoreError::Unreachable { source, target });
    }
    Ok(sweep_plateaus(
        net, weights, query, options, stats, fwd, bwd, budget,
    ))
}

/// The tree-independent tail of the technique: rank the tree pair's
/// plateaus and complete the top ones into full paths. Shared verbatim
/// by [`plateau_alternatives_observed`] (self-computed trees) and
/// [`plateau_alternatives_from_trees`] (substrate-fed trees).
#[allow(clippy::too_many_arguments)]
fn sweep_plateaus(
    net: &RoadNetwork,
    weights: &[Weight],
    query: &AltQuery,
    options: &PlateauOptions,
    stats: &mut PlateauStats,
    fwd: &ShortestPathTree,
    bwd: &ShortestPathTree,
    budget: &SearchBudget,
) -> Vec<Path> {
    let (source, target) = (fwd.root, bwd.root);
    let best_cost = fwd.distance(target);
    let bound = query.cost_bound(best_cost);
    let min_weight = (best_cost as f64 * options.min_plateau_fraction) as Cost;

    let mut plateaus = find_plateaus(net, fwd, bwd);
    stats.plateaus_found = plateaus.len() as u64;
    // Rank plateaus by weight (longest first) — "longer plateaus result in
    // more meaningful alternative paths".
    plateaus.sort_by(|a, b| {
        b.weight_ms
            .cmp(&a.weight_ms)
            .then(a.via_cost_ms.cmp(&b.via_cost_ms))
    });

    let mut accepted: Vec<Path> = Vec::with_capacity(query.k);
    for pl in &plateaus {
        if accepted.len() >= query.k {
            break;
        }
        // Poll per sweep iteration: completing paths costs tree walks and
        // similarity checks, so a tripped budget stops the sweep too.
        if budget.interrupted() {
            stats.interrupted = true;
            break;
        }
        stats.candidates += 1;
        if pl.via_cost_ms > bound {
            stats.rejected_bound += 1;
            continue;
        }
        if pl.weight_ms < min_weight && !accepted.is_empty() {
            stats.rejected_short += 1;
            continue;
        }
        // Assemble sp(s, start) + plateau + sp(end, t).
        let Some(prefix) = fwd.path_edges(net, pl.start) else {
            continue;
        };
        let Some(suffix) = bwd.path_edges(net, pl.end) else {
            continue;
        };
        let mut edges = prefix;
        edges.extend_from_slice(&pl.edges);
        edges.extend_from_slice(&suffix);
        if edges.is_empty() {
            continue;
        }
        let path = Path::from_edges(net, weights, edges);
        debug_assert_eq!(path.source(), source);
        debug_assert_eq!(path.target(), target);
        if !path.is_simple() {
            stats.rejected_non_simple += 1;
            continue;
        }
        let too_similar = accepted
            .iter()
            .any(|p| similarity(&path, p, weights) > options.max_similarity);
        if too_similar {
            stats.rejected_similarity += 1;
            continue;
        }
        accepted.push(path);
    }

    // The plateau containing the whole shortest path guarantees at least
    // one result; keep results sorted by cost for presentation.
    accepted.sort_by_key(|p| p.cost_ms);
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    /// Ladder: two corridors of different cost between s and t.
    fn two_corridors() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let s = b.add_node(Point::new(0.00, 0.0));
        let a1 = b.add_node(Point::new(0.01, 0.002));
        let a2 = b.add_node(Point::new(0.02, 0.002));
        let a3 = b.add_node(Point::new(0.03, 0.002));
        let b1 = b.add_node(Point::new(0.01, -0.002));
        let b2 = b.add_node(Point::new(0.02, -0.002));
        let b3 = b.add_node(Point::new(0.03, -0.002));
        let t = b.add_node(Point::new(0.04, 0.0));
        let fast = EdgeSpec::category(RoadCategory::Primary).with_speed(80.0);
        let slow = EdgeSpec::category(RoadCategory::Primary).with_speed(60.0);
        for (x, y, spec) in [
            (s, a1, fast),
            (a1, a2, fast),
            (a2, a3, fast),
            (a3, t, fast),
            (s, b1, slow),
            (b1, b2, slow),
            (b2, b3, slow),
            (b3, t, slow),
        ] {
            b.add_bidirectional(x, y, spec);
        }
        b.build()
    }

    #[test]
    fn shortest_path_is_first_plateau_result() {
        let net = grid(6);
        let q = AltQuery::paper();
        let paths = plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(35),
            &q,
            &PlateauOptions::default(),
        )
        .unwrap();
        assert!(!paths.is_empty());
        let direct =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        assert_eq!(paths[0].cost_ms, direct.cost_ms);
    }

    #[test]
    fn two_corridors_found_as_two_plateaus() {
        let net = two_corridors();
        let q = AltQuery::paper();
        let paths = plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(7),
            &q,
            &PlateauOptions::default(),
        )
        .unwrap();
        assert!(paths.len() >= 2, "got {}", paths.len());
        // The two routes are nearly disjoint.
        let sim = similarity(&paths[0], &paths[1], net.weights());
        assert!(sim < 0.1, "similarity {sim}");
    }

    #[test]
    fn plateaus_are_vertex_disjoint() {
        let net = grid(7);
        let mut ws = SearchSpace::new(&net);
        let fwd = ws
            .shortest_path_tree(&net, net.weights(), NodeId(0), Direction::Forward)
            .unwrap();
        let bwd = ws
            .shortest_path_tree(&net, net.weights(), NodeId(48), Direction::Backward)
            .unwrap();
        let plateaus = find_plateaus(&net, &fwd, &bwd);
        let mut seen = std::collections::HashSet::new();
        for pl in &plateaus {
            let mut cur = pl.start;
            assert!(seen.insert(cur), "plateaus share vertex {cur}");
            for &e in &pl.edges {
                cur = net.head(e);
                assert!(seen.insert(cur), "plateaus share vertex {cur}");
            }
        }
    }

    #[test]
    fn longest_plateau_is_the_shortest_path() {
        let net = grid(6);
        let mut ws = SearchSpace::new(&net);
        let (s, t) = (NodeId(0), NodeId(35));
        let fwd = ws
            .shortest_path_tree(&net, net.weights(), s, Direction::Forward)
            .unwrap();
        let bwd = ws
            .shortest_path_tree(&net, net.weights(), t, Direction::Backward)
            .unwrap();
        let mut plateaus = find_plateaus(&net, &fwd, &bwd);
        plateaus.sort_by_key(|p| std::cmp::Reverse(p.weight_ms));
        let top = &plateaus[0];
        // The top plateau spans the whole optimal route: via cost equals
        // the shortest distance and the chain runs s -> t.
        assert_eq!(top.via_cost_ms, fwd.distance(t));
        assert_eq!(top.start, s);
        assert_eq!(top.end, t);
    }

    #[test]
    fn all_results_within_stretch_bound() {
        let net = grid(8);
        let q = AltQuery::paper();
        let paths = plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &PlateauOptions::default(),
        )
        .unwrap();
        let best = paths[0].cost_ms;
        for p in &paths {
            assert!(p.cost_ms <= q.cost_bound(best));
            assert!(p.validate(&net));
            assert!(p.is_simple());
        }
    }

    #[test]
    fn results_sorted_by_cost() {
        let net = grid(8);
        let paths = plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &PlateauOptions::default(),
        )
        .unwrap();
        for w in paths.windows(2) {
            assert!(w[0].cost_ms <= w[1].cost_ms);
        }
    }

    #[test]
    fn observed_stats_count_plateaus_and_candidates() {
        let net = grid(8);
        let mut ws = SearchSpace::new(&net);
        let mut stats = PlateauStats::default();
        let paths = plateau_alternatives_observed(
            &mut ws,
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &PlateauOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(stats.plateaus_found >= stats.candidates);
        assert!(stats.candidates >= paths.len() as u64);
        let rejected = stats.rejected_bound
            + stats.rejected_short
            + stats.rejected_similarity
            + stats.rejected_non_simple;
        assert!(stats.candidates >= paths.len() as u64 + rejected);
    }

    #[test]
    fn interrupted_after_forward_tree_returns_shortest_path() {
        use crate::budget::SearchBudget;

        let net = grid(8);
        let mut ws = SearchSpace::new(&net);
        // Cap of one pop: the forward tree completes (residual pops are
        // charged at the end), the cap trips sticky, and the backward
        // tree's entry poll interrupts.
        ws.set_budget(SearchBudget::new().with_expansion_cap(1));
        let mut stats = PlateauStats::default();
        let partial = plateau_alternatives_observed(
            &mut ws,
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &PlateauOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert!(stats.interrupted);
        assert_eq!(partial.len(), 1, "shortest path is the partial result");
        let direct =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(63)).unwrap();
        assert_eq!(partial[0].cost_ms, direct.cost_ms);
        assert_eq!(partial[0].edges, direct.edges);
    }

    #[test]
    fn unreachable_is_error() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        assert!(matches!(
            plateau_alternatives(
                &net,
                net.weights(),
                NodeId(1),
                NodeId(0),
                &AltQuery::paper(),
                &PlateauOptions::default(),
            ),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn k_zero_empty() {
        let net = grid(4);
        let paths = plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(15),
            &AltQuery::paper().with_k(0),
            &PlateauOptions::default(),
        )
        .unwrap();
        assert!(paths.is_empty());
    }
}
