//! Bidirectional Dijkstra.
//!
//! Runs a forward search from the source and a backward search from the
//! target simultaneously; terminates when the sum of both frontiers' next
//! keys can no longer improve the best meeting vertex. On city networks
//! this settles roughly half the vertices of a unidirectional search and
//! is the workhorse for the many point-to-point probes issued by the
//! local-optimality filter.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight, WeightView, CLOSED, INFINITY};

use crate::budget::{SearchBudget, CHECK_INTERVAL};
use crate::error::CoreError;
use crate::metrics::{SearchMetrics, SearchStats};
use crate::path::Path;

/// Reusable workspace for bidirectional searches.
pub struct BidirSearch {
    dist_f: Vec<Cost>,
    dist_b: Vec<Cost>,
    parent_f: Vec<EdgeId>,
    parent_b: Vec<EdgeId>,
    stamp_f: Vec<u32>,
    stamp_b: Vec<u32>,
    generation: u32,
    heap_f: BinaryHeap<Reverse<(Cost, u32)>>,
    heap_b: BinaryHeap<Reverse<(Cost, u32)>>,
    stats: SearchStats,
    metrics: SearchMetrics,
    budget: SearchBudget,
}

impl BidirSearch {
    /// A workspace sized for `net`.
    pub fn new(net: &RoadNetwork) -> BidirSearch {
        let n = net.num_nodes();
        BidirSearch {
            dist_f: vec![INFINITY; n],
            dist_b: vec![INFINITY; n],
            parent_f: vec![EdgeId::INVALID; n],
            parent_b: vec![EdgeId::INVALID; n],
            stamp_f: vec![0; n],
            stamp_b: vec![0; n],
            generation: 0,
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            stats: SearchStats::default(),
            metrics: SearchMetrics::default(),
            budget: SearchBudget::unlimited(),
        }
    }

    /// Attaches pre-resolved counters; every subsequent query flushes its
    /// [`SearchStats`] (both directions combined) into them.
    pub fn set_metrics(&mut self, metrics: SearchMetrics) {
        self.metrics = metrics;
    }

    /// Attaches a cooperative [`SearchBudget`], polled every
    /// [`CHECK_INTERVAL`] combined heap pops; a trip aborts the query
    /// with [`CoreError::Interrupted`].
    pub fn set_budget(&mut self, budget: SearchBudget) {
        self.budget = budget;
    }

    /// The workspace's current budget.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Work counters of the most recently completed query.
    pub fn last_stats(&self) -> SearchStats {
        self.stats
    }

    #[inline]
    fn poll_budget(&mut self, pops: u64) -> Result<(), CoreError> {
        if self.budget.is_limited() {
            self.stats.budget_checks += 1;
            if self.budget.charge(pops) {
                self.metrics.record(&self.stats);
                return Err(CoreError::Interrupted);
            }
        }
        Ok(())
    }

    fn begin(&mut self, net: &RoadNetwork) {
        if self.dist_f.len() != net.num_nodes() {
            let metrics = std::mem::take(&mut self.metrics);
            let budget = std::mem::take(&mut self.budget);
            *self = Self::new(net);
            self.metrics = metrics;
            self.budget = budget;
        }
        self.stats = SearchStats::default();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp_f.fill(0);
            self.stamp_b.fill(0);
            self.generation = 1;
        }
        self.heap_f.clear();
        self.heap_b.clear();
    }

    #[inline]
    fn df(&self, v: u32) -> Cost {
        if self.stamp_f[v as usize] == self.generation {
            self.dist_f[v as usize]
        } else {
            INFINITY
        }
    }

    #[inline]
    fn db(&self, v: u32) -> Cost {
        if self.stamp_b[v as usize] == self.generation {
            self.dist_b[v as usize]
        } else {
            INFINITY
        }
    }

    /// Shortest-path distance `source -> target`, or an error if
    /// unreachable. Equivalent to unidirectional Dijkstra but typically
    /// settles far fewer vertices.
    pub fn shortest_distance(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Cost, CoreError> {
        self.run(net, weights, source, target).map(|(d, _)| d)
    }

    /// Shortest path `source -> target`.
    pub fn shortest_path(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        let (_, meet) = self.run(net, weights, source, target)?;
        // Forward half: walk parents back from the meeting vertex.
        let mut edges = Vec::new();
        let mut cur = meet.0;
        while cur != source.0 {
            let e = self.parent_f[cur as usize];
            edges.push(e);
            cur = net.tail(e).0;
        }
        edges.reverse();
        // Backward half: walk backward parents forward to the target.
        let mut cur = meet.0;
        while cur != target.0 {
            let e = self.parent_b[cur as usize];
            edges.push(e);
            cur = net.head(e).0;
        }
        Ok(Path::from_edges(net, weights, edges))
    }

    /// [`BidirSearch::shortest_distance`] over any [`WeightView`] (e.g. a
    /// live-traffic epoch snapshot).
    pub fn shortest_distance_view<V: WeightView + ?Sized>(
        &mut self,
        net: &RoadNetwork,
        view: &V,
        source: NodeId,
        target: NodeId,
    ) -> Result<Cost, CoreError> {
        self.shortest_distance(net, view.column(), source, target)
    }

    /// [`BidirSearch::shortest_path`] over any [`WeightView`].
    pub fn shortest_path_view<V: WeightView + ?Sized>(
        &mut self,
        net: &RoadNetwork,
        view: &V,
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        self.shortest_path(net, view.column(), source, target)
    }

    fn run(
        &mut self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<(Cost, NodeId), CoreError> {
        if source.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(source));
        }
        if target.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(target));
        }
        if source == target {
            return Err(CoreError::SameSourceTarget(source));
        }
        if weights.len() != net.num_edges() {
            return Err(CoreError::WeightLengthMismatch {
                expected: net.num_edges(),
                got: weights.len(),
            });
        }
        self.begin(net);
        self.poll_budget(0)?;

        self.stamp_f[source.index()] = self.generation;
        self.dist_f[source.index()] = 0;
        self.parent_f[source.index()] = EdgeId::INVALID;
        self.heap_f.push(Reverse((0, source.0)));

        self.stamp_b[target.index()] = self.generation;
        self.dist_b[target.index()] = 0;
        self.parent_b[target.index()] = EdgeId::INVALID;
        self.heap_b.push(Reverse((0, target.0)));

        let mut best: Cost = INFINITY;
        let mut meet = NodeId::INVALID;
        let mut pops_since_check: u64 = 0;

        loop {
            let key_f = self
                .heap_f
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            let key_b = self
                .heap_b
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            if key_f == INFINITY && key_b == INFINITY {
                break;
            }
            // Standard termination: the best possible remaining meeting
            // cost is key_f + key_b.
            if key_f.saturating_add(key_b) >= best {
                break;
            }

            if key_f <= key_b {
                // Expand forward.
                let Some(Reverse((d, v))) = self.heap_f.pop() else {
                    break;
                };
                self.stats.heap_pops += 1;
                pops_since_check += 1;
                if pops_since_check == CHECK_INTERVAL {
                    pops_since_check = 0;
                    self.poll_budget(CHECK_INTERVAL)?;
                }
                if d > self.df(v) {
                    continue;
                }
                self.stats.settled += 1;
                for e in net.out_edges(NodeId(v)) {
                    self.stats.relaxed += 1;
                    let w = weights[e.index()];
                    if w == CLOSED {
                        continue; // incident closure
                    }
                    let head = net.head(e).0;
                    let nd = d + w as Cost;
                    if nd < self.df(head) {
                        self.stamp_f[head as usize] = self.generation;
                        self.dist_f[head as usize] = nd;
                        self.parent_f[head as usize] = e;
                        self.heap_f.push(Reverse((nd, head)));
                        let total = nd.saturating_add(self.db(head));
                        if total < best {
                            best = total;
                            meet = NodeId(head);
                        }
                    }
                }
            } else {
                // Expand backward.
                let Some(Reverse((d, v))) = self.heap_b.pop() else {
                    break;
                };
                self.stats.heap_pops += 1;
                pops_since_check += 1;
                if pops_since_check == CHECK_INTERVAL {
                    pops_since_check = 0;
                    self.poll_budget(CHECK_INTERVAL)?;
                }
                if d > self.db(v) {
                    continue;
                }
                self.stats.settled += 1;
                for e in net.in_edges(NodeId(v)) {
                    self.stats.relaxed += 1;
                    let w = weights[e.index()];
                    if w == CLOSED {
                        continue; // incident closure
                    }
                    let tail = net.tail(e).0;
                    let nd = d + w as Cost;
                    if nd < self.db(tail) {
                        self.stamp_b[tail as usize] = self.generation;
                        self.dist_b[tail as usize] = nd;
                        self.parent_b[tail as usize] = e;
                        self.heap_b.push(Reverse((nd, tail)));
                        let total = nd.saturating_add(self.df(tail));
                        if total < best {
                            best = total;
                            meet = NodeId(tail);
                        }
                    }
                }
            }
        }

        // Account the partial interval so the budget's expansion counter
        // stays cumulative across queries.
        self.budget.charge(pops_since_check);
        self.metrics.record(&self.stats);
        if best == INFINITY {
            Err(CoreError::Unreachable { source, target })
        } else {
            Ok((best, meet))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchSpace;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_unidirectional_on_grid() {
        let net = grid(8);
        let mut uni = SearchSpace::new(&net);
        let mut bi = BidirSearch::new(&net);
        for (s, t) in [(0u32, 63u32), (7, 56), (20, 43), (1, 62), (33, 30)] {
            let d1 = uni
                .shortest_path(&net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            let d2 = bi
                .shortest_path(&net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            assert_eq!(d1.cost_ms, d2.cost_ms, "{s}->{t}");
            assert!(d2.validate(&net));
            assert_eq!(d2.source(), NodeId(s));
            assert_eq!(d2.target(), NodeId(t));
        }
    }

    #[test]
    fn matches_on_one_way_asymmetric_graph() {
        // Directed cycle with a chord: forward and backward distances differ.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for i in 0..6 {
            b.add_edge(
                ids[i],
                ids[(i + 1) % 6],
                EdgeSpec::default().with_weight(100 + i as u32),
            );
        }
        b.add_edge(ids[0], ids[3], EdgeSpec::default().with_weight(250));
        let net = b.build();
        let mut uni = SearchSpace::new(&net);
        let mut bi = BidirSearch::new(&net);
        for s in 0..6u32 {
            for t in 0..6u32 {
                if s == t {
                    continue;
                }
                let d1 = uni
                    .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                    .unwrap();
                let d2 = bi
                    .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                    .unwrap();
                assert_eq!(d1, d2, "{s}->{t}");
            }
        }
    }

    #[test]
    fn unreachable_and_errors() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        let mut bi = BidirSearch::new(&net);
        assert!(matches!(
            bi.shortest_distance(&net, net.weights(), NodeId(1), NodeId(0)),
            Err(CoreError::Unreachable { .. })
        ));
        assert!(matches!(
            bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(0)),
            Err(CoreError::SameSourceTarget(_))
        ));
        assert!(matches!(
            bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(9)),
            Err(CoreError::InvalidNode(_))
        ));
    }

    #[test]
    fn closed_edges_block_both_directions() {
        let net = grid(4);
        let mut bi = BidirSearch::new(&net);
        let base = bi
            .shortest_path(&net, net.weights(), NodeId(0), NodeId(15))
            .unwrap();
        // Close every edge the base route used; the search must reroute
        // (the grid has parallel paths) and never traverse a closed edge.
        let mut overlay = net.weights().to_vec();
        for &e in &base.edges {
            overlay[e.index()] = CLOSED;
        }
        let alt = bi
            .shortest_path_view(&net, &overlay, NodeId(0), NodeId(15))
            .unwrap();
        for &e in &alt.edges {
            assert_ne!(overlay[e.index()], CLOSED);
        }
        // Close everything: unreachable, not a panic.
        let all_closed = vec![CLOSED; net.num_edges()];
        assert!(matches!(
            bi.shortest_distance_view(&net, &all_closed, NodeId(0), NodeId(15)),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn stats_cover_both_directions() {
        let net = grid(8);
        let mut bi = BidirSearch::new(&net);
        bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(63))
            .unwrap();
        let s = bi.last_stats();
        assert!(s.settled > 0);
        assert!(s.settled <= s.heap_pops);
        assert!(s.relaxed > 0);
    }

    #[test]
    fn pre_cancelled_budget_interrupts_the_query() {
        let net = grid(8);
        let mut bi = BidirSearch::new(&net);
        let budget = SearchBudget::new();
        budget.cancel();
        bi.set_budget(budget);
        assert!(matches!(
            bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(63)),
            Err(CoreError::Interrupted)
        ));
        assert_eq!(bi.last_stats().heap_pops, 0);
        // Detaching restores normal behaviour.
        bi.set_budget(SearchBudget::unlimited());
        assert!(bi
            .shortest_distance(&net, net.weights(), NodeId(0), NodeId(63))
            .is_ok());
    }

    #[test]
    fn expansion_cap_accumulates_across_queries() {
        let net = grid(16);
        let mut bi = BidirSearch::new(&net);
        bi.set_budget(SearchBudget::new().with_expansion_cap(CHECK_INTERVAL));
        // Small queries never hit the in-loop interval check, but their
        // residual pops accumulate; eventually the entry poll trips.
        let mut tripped = false;
        for _ in 0..10_000 {
            match bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(255)) {
                Ok(_) => {}
                Err(CoreError::Interrupted) => {
                    tripped = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(tripped, "cumulative expansion cap never tripped");
    }

    #[test]
    fn workspace_reuse() {
        let net = grid(6);
        let mut bi = BidirSearch::new(&net);
        let d1 = bi
            .shortest_distance(&net, net.weights(), NodeId(0), NodeId(35))
            .unwrap();
        for t in 1..30u32 {
            let _ = bi.shortest_distance(&net, net.weights(), NodeId(0), NodeId(t));
        }
        let d2 = bi
            .shortest_distance(&net, net.weights(), NodeId(0), NodeId(35))
            .unwrap();
        assert_eq!(d1, d2);
    }
}
