//! The **Dissimilarity** technique — SSVP-D+ (§2.3 of the paper,
//! Chondrogiannis et al.).
//!
//! Single-source via-paths: grow a forward tree from `s` and a backward
//! tree from `t`; every vertex `u` induces the via-path
//! `sp(s,u) · sp(u,t)` of length `d_f(u) + d_b(u)`. Vertices are visited in
//! ascending via-path length and a via-path is admitted when its
//! dissimilarity to every already-admitted path exceeds the threshold θ
//! (0.5 in the paper), guaranteeing the result set is pairwise dissimilar
//! while keeping paths short.

use std::collections::HashSet;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::{Weight, INFINITY};

use crate::budget::SearchBudget;
use crate::error::CoreError;
use crate::path::Path;
use crate::query::AltQuery;
use crate::search::{Direction, SearchSpace, ShortestPathTree};
use crate::similarity::dissimilarity_to_set;

/// Options specific to the SSVP-D+ algorithm.
#[derive(Clone, Copy, Debug)]
pub struct DissimilarityOptions {
    /// Skip via-paths that revisit a vertex (they contain a loop and can
    /// never be a sensible recommendation).
    pub require_simple: bool,
    /// Upper bound on how many via-nodes are examined, as a multiple of
    /// `k`; guards worst-case latency on dense graphs (the underlying
    /// problem is NP-hard and this is the standard practical cut-off).
    pub max_candidates_factor: usize,
}

impl Default for DissimilarityOptions {
    fn default() -> Self {
        DissimilarityOptions {
            require_simple: true,
            max_candidates_factor: 4000,
        }
    }
}

/// Candidate-funnel counters of one SSVP-D+ call, for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DissimilarityStats {
    /// Via-paths materialized and examined.
    pub candidates: u64,
    /// Via-paths rejected as exact duplicates of earlier ones.
    pub rejected_duplicate: u64,
    /// Via-paths rejected for revisiting a vertex.
    pub rejected_non_simple: u64,
    /// Via-paths rejected for insufficient dissimilarity to the result set.
    pub rejected_dissimilar: u64,
    /// The workspace's [`crate::SearchBudget`] tripped mid-call; the
    /// returned paths are the alternatives admitted up to that point.
    pub interrupted: bool,
}

/// Computes up to `query.k` pairwise-dissimilar paths with SSVP-D+.
pub fn dissimilarity_alternatives(
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &DissimilarityOptions,
) -> Result<Vec<Path>, CoreError> {
    let mut ws = SearchSpace::new(net);
    dissimilarity_alternatives_with(&mut ws, net, weights, source, target, query, options)
}

/// Like [`dissimilarity_alternatives`] but reusing a caller workspace.
pub fn dissimilarity_alternatives_with(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &DissimilarityOptions,
) -> Result<Vec<Path>, CoreError> {
    let mut stats = DissimilarityStats::default();
    dissimilarity_alternatives_observed(
        ws, net, weights, source, target, query, options, &mut stats,
    )
}

/// Like [`dissimilarity_alternatives_with`] but also reporting the
/// candidate funnel of the call into `stats` (which is reset first).
#[allow(clippy::too_many_arguments)]
pub fn dissimilarity_alternatives_observed(
    ws: &mut SearchSpace,
    net: &RoadNetwork,
    weights: &[Weight],
    source: NodeId,
    target: NodeId,
    query: &AltQuery,
    options: &DissimilarityOptions,
    stats: &mut DissimilarityStats,
) -> Result<Vec<Path>, CoreError> {
    *stats = DissimilarityStats::default();
    if query.k == 0 {
        return Ok(Vec::new());
    }
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    let fwd = match ws.shortest_path_tree(net, weights, source, Direction::Forward) {
        Ok(tree) => tree,
        Err(CoreError::Interrupted) => {
            // Interrupted before anything was admitted: empty partial.
            stats.interrupted = true;
            return Ok(Vec::new());
        }
        Err(e) => return Err(e),
    };
    if !fwd.reached(target) {
        return Err(CoreError::Unreachable { source, target });
    }
    let bwd = match ws.shortest_path_tree(net, weights, target, Direction::Backward) {
        Ok(tree) => tree,
        Err(CoreError::Interrupted) => {
            // The forward tree already proves the shortest path; hand it
            // back as the (sole) partial alternative.
            stats.interrupted = true;
            let edges = fwd.path_edges(net, target).unwrap_or_default();
            if edges.is_empty() {
                return Ok(Vec::new());
            }
            return Ok(vec![Path::from_edges(net, weights, edges)]);
        }
        Err(e) => return Err(e),
    };
    Ok(sweep_via_nodes(
        net,
        weights,
        query,
        options,
        stats,
        &fwd,
        &bwd,
        ws.budget(),
    ))
}

/// Like [`dissimilarity_alternatives_observed`], but reusing a prepared
/// tree pair — typically a [`crate::substrate::SearchSubstrate`]'s —
/// instead of growing one per call. `budget` governs the sweep's
/// cooperative polls only; the tree-building cost was paid by whoever
/// grew the trees. The sweep itself is the exact code the
/// self-computing path runs, so results are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn dissimilarity_alternatives_from_trees(
    net: &RoadNetwork,
    weights: &[Weight],
    query: &AltQuery,
    options: &DissimilarityOptions,
    stats: &mut DissimilarityStats,
    fwd: &ShortestPathTree,
    bwd: &ShortestPathTree,
    budget: &SearchBudget,
) -> Result<Vec<Path>, CoreError> {
    *stats = DissimilarityStats::default();
    if query.k == 0 {
        return Ok(Vec::new());
    }
    let (source, target) = (fwd.root, bwd.root);
    if source == target {
        return Err(CoreError::SameSourceTarget(source));
    }
    debug_assert_eq!(fwd.direction, Direction::Forward);
    debug_assert_eq!(bwd.direction, Direction::Backward);
    if !fwd.reached(target) {
        return Err(CoreError::Unreachable { source, target });
    }
    Ok(sweep_via_nodes(
        net, weights, query, options, stats, fwd, bwd, budget,
    ))
}

/// The tree-independent tail of SSVP-D+: visit via-nodes in ascending
/// via-path length and admit pairwise-dissimilar paths. Shared verbatim
/// by [`dissimilarity_alternatives_observed`] (self-computed trees) and
/// [`dissimilarity_alternatives_from_trees`] (substrate-fed trees).
#[allow(clippy::too_many_arguments)]
fn sweep_via_nodes(
    net: &RoadNetwork,
    weights: &[Weight],
    query: &AltQuery,
    options: &DissimilarityOptions,
    stats: &mut DissimilarityStats,
    fwd: &ShortestPathTree,
    bwd: &ShortestPathTree,
    budget: &SearchBudget,
) -> Vec<Path> {
    let target = bwd.root;
    let best = fwd.distance(target);
    let bound = query.cost_bound(best);

    // Via-nodes in ascending via-path length, bounded by the stretch limit.
    let mut candidates: Vec<(u64, u32)> = (0..net.num_nodes() as u32)
        .filter_map(|v| {
            let df = fwd.dist[v as usize];
            let db = bwd.dist[v as usize];
            if df == INFINITY || db == INFINITY {
                return None;
            }
            let via = df + db;
            (via <= bound).then_some((via, v))
        })
        .collect();
    candidates.sort_unstable();

    let max_candidates = query
        .k
        .saturating_mul(options.max_candidates_factor)
        .max(64);
    let mut accepted: Vec<Path> = Vec::with_capacity(query.k);
    let mut seen: HashSet<Vec<u32>> = HashSet::new();

    for &(_via, v) in candidates.iter().take(max_candidates) {
        if accepted.len() >= query.k {
            break;
        }
        // Poll per candidate: materializing and comparing via-paths is
        // the expensive part of the sweep.
        if budget.interrupted() {
            stats.interrupted = true;
            break;
        }
        let v = NodeId(v);
        let Some(prefix) = fwd.path_edges(net, v) else {
            continue;
        };
        let Some(suffix) = bwd.path_edges(net, v) else {
            continue;
        };
        let mut edges = prefix;
        edges.extend_from_slice(&suffix);
        if edges.is_empty() {
            continue;
        }
        let path = Path::from_edges(net, weights, edges);
        stats.candidates += 1;
        if options.require_simple && !path.is_simple() {
            stats.rejected_non_simple += 1;
            continue;
        }
        if !seen.insert(path.key()) {
            stats.rejected_duplicate += 1;
            continue;
        }
        if accepted.is_empty() {
            // The first admissible candidate is the shortest path itself
            // (the target's via-path, or any via-node on the optimal route).
            accepted.push(path);
            continue;
        }
        if dissimilarity_to_set(&path, &accepted, weights) > query.theta {
            accepted.push(path);
        } else {
            stats.rejected_dissimilar += 1;
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::similarity;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn first_result_is_shortest_path() {
        let net = grid(7);
        let paths = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(48),
            &AltQuery::paper(),
            &DissimilarityOptions::default(),
        )
        .unwrap();
        assert!(!paths.is_empty());
        let direct =
            crate::search::shortest_path(&net, net.weights(), NodeId(0), NodeId(48)).unwrap();
        assert_eq!(paths[0].cost_ms, direct.cost_ms);
    }

    #[test]
    fn results_respect_theta() {
        let net = grid(8);
        let q = AltQuery::paper();
        let paths = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &DissimilarityOptions::default(),
        )
        .unwrap();
        assert!(paths.len() >= 2, "got {}", paths.len());
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                let sim = similarity(&paths[i], &paths[j], net.weights());
                assert!(
                    sim < 1.0 - q.theta + 1e-9,
                    "pair ({i},{j}) similarity {sim} violates theta"
                );
            }
        }
    }

    #[test]
    fn results_within_stretch_bound() {
        let net = grid(8);
        let q = AltQuery::paper();
        let paths = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &q,
            &DissimilarityOptions::default(),
        )
        .unwrap();
        let best = paths[0].cost_ms;
        for p in &paths {
            assert!(p.cost_ms <= q.cost_bound(best));
            assert!(p.validate(&net));
            assert!(p.is_simple());
        }
    }

    #[test]
    fn higher_theta_gives_fewer_or_equal_paths() {
        let net = grid(8);
        let loose = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper().with_theta(0.1).with_k(5),
            &DissimilarityOptions::default(),
        )
        .unwrap();
        let strict = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper().with_theta(0.9).with_k(5),
            &DissimilarityOptions::default(),
        )
        .unwrap();
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn via_paths_are_ascending_in_cost() {
        let net = grid(8);
        let paths = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &DissimilarityOptions::default(),
        )
        .unwrap();
        for w in paths.windows(2) {
            assert!(w[0].cost_ms <= w[1].cost_ms, "paths not in ascending cost");
        }
    }

    #[test]
    fn observed_stats_balance_the_funnel() {
        let net = grid(8);
        let mut ws = SearchSpace::new(&net);
        let mut stats = DissimilarityStats::default();
        let paths = dissimilarity_alternatives_observed(
            &mut ws,
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &DissimilarityOptions::default(),
            &mut stats,
        )
        .unwrap();
        let rejected =
            stats.rejected_duplicate + stats.rejected_non_simple + stats.rejected_dissimilar;
        assert_eq!(stats.candidates, paths.len() as u64 + rejected);
        assert!(stats.rejected_dissimilar > 0, "theta filter never fired");
    }

    #[test]
    fn unreachable_is_error() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        assert!(dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(1),
            NodeId(0),
            &AltQuery::paper(),
            &DissimilarityOptions::default(),
        )
        .is_err());
    }

    #[test]
    fn k_zero_and_k_one() {
        let net = grid(5);
        let none = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(24),
            &AltQuery::paper().with_k(0),
            &DissimilarityOptions::default(),
        )
        .unwrap();
        assert!(none.is_empty());
        let one = dissimilarity_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(24),
            &AltQuery::paper().with_k(1),
            &DissimilarityOptions::default(),
        )
        .unwrap();
        assert_eq!(one.len(), 1);
    }
}
