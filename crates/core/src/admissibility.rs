//! Admissible alternatives in the sense of Abraham, Delling, Goldberg &
//! Werneck, *Alternative Routes in Road Networks* — the paper's reference
//! \[2\] and the source of its ε = 1.4 "upper bound" and local-optimality
//! vocabulary.
//!
//! An alternative path P is **admissible** w.r.t. the optimal path OPT
//! when three criteria hold:
//!
//! 1. **Limited sharing**: the weighted overlap with OPT is at most γ
//!    (the alternative is "significantly different"),
//! 2. **Local optimality**: every subpath of weight ≤ T is a shortest
//!    path (no local detours),
//! 3. **Uniformly bounded stretch (UBS)**: *every* subpath of P has
//!    stretch at most 1 + ε, not just P as a whole.
//!
//! Exact verification of (2) and (3) is quadratic in path length, so this
//! module uses the same sliding-window probe strategy as
//! [`crate::quality::local_optimality`] — sound for rejection (a failed
//! probe is a genuine violation) and empirically tight for acceptance.

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::weight::{Cost, Weight};

use crate::path::Path;
use crate::quality::local_optimality;
use crate::search::SearchSpace;
use crate::similarity::overlap_ratio;

/// The (γ, T, ε) thresholds of the admissibility definition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissibilityCriteria {
    /// Maximum weighted sharing with the optimal path, in `[0, 1]`.
    pub gamma: f64,
    /// Local-optimality window as a fraction of the optimal cost.
    pub t_fraction: f64,
    /// Uniformly-bounded-stretch slack: every subpath stretch ≤ 1 + ε.
    pub epsilon_ubs: f64,
    /// Probe budget per criterion.
    pub max_probes: usize,
}

impl Default for AdmissibilityCriteria {
    fn default() -> Self {
        // The literature's common evaluation setting: γ = 0.8, T = 25 % of
        // the optimum, UBS ε = 0.25.
        AdmissibilityCriteria {
            gamma: 0.8,
            t_fraction: 0.25,
            epsilon_ubs: 0.25,
            max_probes: 12,
        }
    }
}

/// Per-path admissibility verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissibilityReport {
    /// Weighted sharing with the optimal path.
    pub sharing: f64,
    /// Sharing criterion satisfied.
    pub sharing_ok: bool,
    /// Local-optimality criterion satisfied (probed).
    pub locally_optimal: bool,
    /// Worst probed subpath stretch.
    pub max_window_stretch: f64,
    /// UBS criterion satisfied (probed).
    pub ubs_ok: bool,
}

impl AdmissibilityReport {
    /// All three criteria hold.
    pub fn admissible(&self) -> bool {
        self.sharing_ok && self.locally_optimal && self.ubs_ok
    }
}

/// Worst stretch over probed windows of roughly `window_fraction ×` path
/// cost (the UBS probe). Returns 1.0 for paths too short to probe.
pub fn max_window_stretch(
    net: &RoadNetwork,
    weights: &[Weight],
    path: &Path,
    window_fraction: f64,
    max_probes: usize,
) -> f64 {
    let t = (path.cost_ms as f64 * window_fraction) as Cost;
    if t == 0 || path.edges.len() < 2 {
        return 1.0;
    }
    let mut prefix: Vec<Cost> = Vec::with_capacity(path.edges.len() + 1);
    prefix.push(0);
    for &e in &path.edges {
        prefix.push(prefix.last().unwrap() + weights[e.index()] as Cost);
    }
    let mut ws = SearchSpace::new(net);
    let mut worst = 1.0f64;
    let mut probes = 0usize;
    let mut i = 0usize;
    while i < path.edges.len() && probes < max_probes {
        let mut j = i + 1;
        while j < path.edges.len() && prefix[j] - prefix[i] < t {
            j += 1;
        }
        let (a, b) = (path.nodes[i], path.nodes[j]);
        if a != b {
            if let Ok(d) = ws.shortest_distance(net, weights, a, b) {
                probes += 1;
                if d > 0 {
                    worst = worst.max((prefix[j] - prefix[i]) as f64 / d as f64);
                }
            }
        }
        i += ((j - i) / 2).max(1);
    }
    worst
}

/// Evaluates a path against the admissibility criteria.
pub fn admissibility(
    net: &RoadNetwork,
    weights: &[Weight],
    alternative: &Path,
    optimal: &Path,
    criteria: &AdmissibilityCriteria,
) -> AdmissibilityReport {
    let sharing = overlap_ratio(alternative, optimal, weights);
    let lo = local_optimality(
        net,
        weights,
        alternative,
        criteria.t_fraction,
        criteria.max_probes,
    );
    let stretch = max_window_stretch(
        net,
        weights,
        alternative,
        criteria.t_fraction,
        criteria.max_probes,
    );
    AdmissibilityReport {
        sharing,
        sharing_ok: sharing <= criteria.gamma + 1e-9,
        locally_optimal: lo.is_locally_optimal(),
        max_window_stretch: stretch,
        ubs_ok: stretch <= 1.0 + criteria.epsilon_ubs + 1e-9,
    }
}

/// Fraction of a technique's alternatives (the routes after the first)
/// that are admissible. `None` when the set has no alternatives.
pub fn admissible_share(
    net: &RoadNetwork,
    weights: &[Weight],
    paths: &[Path],
    criteria: &AdmissibilityCriteria,
) -> Option<f64> {
    let (optimal, alts) = paths.split_first()?;
    if alts.is_empty() {
        return None;
    }
    let admissible = alts
        .iter()
        .filter(|p| admissibility(net, weights, p, optimal, criteria).admissible())
        .count();
    Some(admissible as f64 / alts.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plateau::{plateau_alternatives, PlateauOptions};
    use crate::query::AltQuery;
    use crate::search::shortest_path;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::csr::RoadNetwork;
    use arp_roadnet::geo::Point;
    use arp_roadnet::ids::NodeId;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    fn path_via(net: &RoadNetwork, nodes: &[u32]) -> Path {
        let edges = nodes
            .windows(2)
            .map(|w| net.find_edge(NodeId(w[0]), NodeId(w[1])).unwrap())
            .collect();
        Path::from_edges(net, net.weights(), edges)
    }

    #[test]
    fn optimal_path_fails_sharing_only() {
        let net = grid(6);
        let opt = shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        let report = admissibility(
            &net,
            net.weights(),
            &opt,
            &opt,
            &AdmissibilityCriteria::default(),
        );
        assert!(!report.sharing_ok, "a copy of OPT shares 100%");
        assert!(report.locally_optimal);
        assert!(report.ubs_ok);
        assert!(!report.admissible());
    }

    #[test]
    fn disjoint_shortest_alternative_is_admissible() {
        let net = grid(6);
        // OPT along the top+right L; alternative along left+bottom L:
        // both are shortest paths, disjoint except endpoints.
        let opt = path_via(&net, &[0, 1, 2, 3, 4, 5, 11, 17, 23, 29, 35]);
        let alt = path_via(&net, &[0, 6, 12, 18, 24, 30, 31, 32, 33, 34, 35]);
        let report = admissibility(
            &net,
            net.weights(),
            &alt,
            &opt,
            &AdmissibilityCriteria::default(),
        );
        assert!(report.sharing_ok, "sharing = {}", report.sharing);
        assert!(report.locally_optimal);
        assert!(report.ubs_ok, "stretch = {}", report.max_window_stretch);
        assert!(report.admissible());
    }

    #[test]
    fn zigzag_fails_local_optimality_and_ubs() {
        let net = grid(6);
        let opt = shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        // A heavy zig-zag: down-up-down wiggles across the grid.
        let zig = path_via(
            &net,
            &[
                0, 6, 7, 1, 2, 8, 9, 3, 4, 10, 11, 17, 16, 22, 23, 29, 28, 34, 35,
            ],
        );
        let report = admissibility(
            &net,
            net.weights(),
            &zig,
            &opt,
            &AdmissibilityCriteria::default(),
        );
        assert!(!report.locally_optimal || !report.ubs_ok, "{report:?}");
        assert!(!report.admissible());
    }

    #[test]
    fn max_window_stretch_of_shortest_path_is_one() {
        let net = grid(6);
        let opt = shortest_path(&net, net.weights(), NodeId(0), NodeId(35)).unwrap();
        let s = max_window_stretch(&net, net.weights(), &opt, 0.3, 12);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn plateau_alternatives_are_mostly_admissible() {
        // The headline theorem of [2]: plateau paths are locally optimal;
        // with the default γ they should overwhelmingly pass.
        let net = grid(8);
        let paths = plateau_alternatives(
            &net,
            net.weights(),
            NodeId(0),
            NodeId(63),
            &AltQuery::paper(),
            &PlateauOptions::default(),
        )
        .unwrap();
        if paths.len() >= 2 {
            let share = admissible_share(
                &net,
                net.weights(),
                &paths,
                &AdmissibilityCriteria::default(),
            )
            .unwrap();
            assert!(share >= 0.5, "plateau admissible share {share}");
        }
    }

    #[test]
    fn admissible_share_edge_cases() {
        let net = grid(4);
        let opt = shortest_path(&net, net.weights(), NodeId(0), NodeId(15)).unwrap();
        assert!(
            admissible_share(&net, net.weights(), &[], &AdmissibilityCriteria::default()).is_none()
        );
        assert!(admissible_share(
            &net,
            net.weights(),
            &[opt],
            &AdmissibilityCriteria::default()
        )
        .is_none());
    }
}
