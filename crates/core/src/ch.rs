//! Contraction Hierarchies (CH) — an exact shortest-path index.
//!
//! The paper's introduction points at the index-based shortest-path line
//! of work (hub labeling, maintainable shortest-path indexes) as the
//! substrate modern routing engines run on; this module provides the
//! classic representative. Nodes are contracted in importance order with
//! witness searches deciding which shortcuts are needed; queries run a
//! bidirectional upward Dijkstra over the augmented graph and typically
//! settle orders of magnitude fewer vertices than plain Dijkstra.
//!
//! The index answers distance queries exactly (verified against Dijkstra
//! in the tests) and can unpack shortcut paths back to original edges.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::{EdgeId, NodeId};
use arp_roadnet::weight::{Cost, Weight, WeightView, CLOSED, INFINITY};

use crate::budget::{SearchBudget, CHECK_INTERVAL};
use crate::error::CoreError;
use crate::metrics::{SearchMetrics, SearchStats};
use crate::path::Path;

/// An edge of the augmented (original + shortcut) graph.
#[derive(Clone, Copy, Debug)]
struct ChEdge {
    /// Other endpoint.
    to: u32,
    /// Weight in ms.
    weight: Weight,
    /// For originals: the network edge. For shortcuts: `EdgeId::INVALID`.
    original: EdgeId,
    /// For shortcuts: the contracted middle vertex.
    middle: u32,
}

/// A built contraction hierarchy over one network + weight table.
pub struct ContractionHierarchy {
    /// Rank (contraction order) per node; higher = more important.
    rank: Vec<u32>,
    /// Upward adjacency: edges `(v, w)` with `rank[w] > rank[v]`.
    up: Vec<Vec<ChEdge>>,
    /// Downward adjacency used by the backward search: edges `(w, v)` in
    /// the original direction with `rank[v] > rank[w]`, stored at `w`.
    down: Vec<Vec<ChEdge>>,
    /// Number of shortcuts added (diagnostics).
    num_shortcuts: usize,
}

/// Preprocessing parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChConfig {
    /// Witness-search settle limit: higher = fewer unnecessary shortcuts,
    /// slower preprocessing.
    pub witness_settle_limit: usize,
    /// Weight of the "deleted neighbours" term in the priority function.
    pub deleted_neighbours_weight: f64,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            witness_settle_limit: 60,
            deleted_neighbours_weight: 1.0,
        }
    }
}

/// Mutable overlay graph used during contraction.
struct OverlayGraph {
    /// Forward adjacency per node.
    fwd: Vec<Vec<ChEdge>>,
    /// Backward adjacency per node (edges stored at their head).
    bwd: Vec<Vec<ChEdge>>,
    contracted: Vec<bool>,
}

impl OverlayGraph {
    fn new(net: &RoadNetwork, weights: &[Weight]) -> OverlayGraph {
        let n = net.num_nodes();
        let mut fwd: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        for e in net.edges() {
            let (t, h) = (net.tail(e).0, net.head(e).0);
            if t == h || weights[e.index()] == CLOSED {
                // Self-loops never help; closed edges (live-traffic
                // incidents) are excluded at build so no shortcut can
                // tunnel through a closure.
                continue;
            }
            let edge = ChEdge {
                to: h,
                weight: weights[e.index()],
                original: e,
                middle: u32::MAX,
            };
            fwd[t as usize].push(edge);
            bwd[h as usize].push(ChEdge { to: t, ..edge });
        }
        OverlayGraph {
            fwd,
            bwd,
            contracted: vec![false; n],
        }
    }

    /// Local witness search: is there a path `u -> w` avoiding `via` with
    /// cost <= `limit`? Bounded by `settle_limit` settled vertices.
    fn witness_exists(
        &self,
        u: u32,
        w: u32,
        via: u32,
        limit: Cost,
        settle_limit: usize,
        dist: &mut Vec<(u32, Cost)>,
    ) -> bool {
        // Tiny Dijkstra over the remaining overlay, using a scratch list
        // instead of a full distance array (frontiers are tiny).
        dist.clear();
        let get = |dist: &[(u32, Cost)], v: u32| -> Cost {
            dist.iter()
                .find(|&&(x, _)| x == v)
                .map(|&(_, d)| d)
                .unwrap_or(INFINITY)
        };
        let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        dist.push((u, 0));
        heap.push(Reverse((0, u)));
        let mut settled = 0usize;
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > get(dist, v) || d > limit {
                continue;
            }
            if v == w {
                return true;
            }
            settled += 1;
            if settled > settle_limit {
                break;
            }
            for e in &self.fwd[v as usize] {
                if e.to == via || self.contracted[e.to as usize] {
                    continue;
                }
                let nd = d + e.weight as Cost;
                if nd <= limit && nd < get(dist, e.to) {
                    dist.retain(|&(x, _)| x != e.to);
                    dist.push((e.to, nd));
                    heap.push(Reverse((nd, e.to)));
                }
            }
        }
        false
    }

    /// The shortcuts contracting `v` would need: `(u, w, weight, via)`.
    fn required_shortcuts(
        &self,
        v: u32,
        settle_limit: usize,
        scratch: &mut Vec<(u32, Cost)>,
    ) -> Vec<(u32, u32, Weight)> {
        let mut out = Vec::new();
        for ie in &self.bwd[v as usize] {
            let u = ie.to;
            if self.contracted[u as usize] {
                continue;
            }
            for oe in &self.fwd[v as usize] {
                let w = oe.to;
                if w == u || self.contracted[w as usize] {
                    continue;
                }
                let through = ie.weight as Cost + oe.weight as Cost;
                if !self.witness_exists(u, w, v, through, settle_limit, scratch) {
                    out.push((u, w, through.min(u32::MAX as Cost - 1) as Weight));
                }
            }
        }
        out
    }

    fn add_shortcut(&mut self, u: u32, w: u32, weight: Weight, via: u32) {
        let edge = ChEdge {
            to: w,
            weight,
            original: EdgeId::INVALID,
            middle: via,
        };
        self.fwd[u as usize].push(edge);
        self.bwd[w as usize].push(ChEdge { to: u, ..edge });
    }
}

impl ContractionHierarchy {
    /// Builds the hierarchy for `net` under `weights`.
    pub fn build(net: &RoadNetwork, weights: &[Weight]) -> Result<ContractionHierarchy, CoreError> {
        Self::build_with(net, weights, &ChConfig::default())
    }

    /// [`ContractionHierarchy::build`] over any [`WeightView`] (e.g. a
    /// live-traffic epoch snapshot). The index is valid only for the
    /// epoch it was built on; a tick requires a rebuild.
    pub fn build_view<V: WeightView + ?Sized>(
        net: &RoadNetwork,
        view: &V,
    ) -> Result<ContractionHierarchy, CoreError> {
        Self::build(net, view.column())
    }

    /// Builds with explicit parameters.
    pub fn build_with(
        net: &RoadNetwork,
        weights: &[Weight],
        config: &ChConfig,
    ) -> Result<ContractionHierarchy, CoreError> {
        if weights.len() != net.num_edges() {
            return Err(CoreError::WeightLengthMismatch {
                expected: net.num_edges(),
                got: weights.len(),
            });
        }
        let n = net.num_nodes();
        let mut overlay = OverlayGraph::new(net, weights);
        let mut rank = vec![0u32; n];
        let mut deleted_neighbours = vec![0u32; n];
        let mut scratch: Vec<(u32, Cost)> = Vec::new();

        // Lazy priority queue keyed by (priority, node).
        let priority = |overlay: &OverlayGraph,
                        deleted: &[u32],
                        v: u32,
                        scratch: &mut Vec<(u32, Cost)>|
         -> i64 {
            let shortcuts = overlay
                .required_shortcuts(v, 16, scratch) // cheap estimate
                .len() as i64;
            let degree = (overlay.fwd[v as usize]
                .iter()
                .filter(|e| !overlay.contracted[e.to as usize])
                .count()
                + overlay.bwd[v as usize]
                    .iter()
                    .filter(|e| !overlay.contracted[e.to as usize])
                    .count()) as i64;
            let edge_difference = shortcuts - degree;
            edge_difference * 4
                + (deleted[v as usize] as f64 * config.deleted_neighbours_weight) as i64
        };

        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
        for v in 0..n as u32 {
            let p = priority(&overlay, &deleted_neighbours, v, &mut scratch);
            heap.push(Reverse((p, v)));
        }

        let mut next_rank = 0u32;
        let mut num_shortcuts = 0usize;
        while let Some(Reverse((p, v))) = heap.pop() {
            if overlay.contracted[v as usize] {
                continue;
            }
            // Lazy update: re-evaluate and re-queue if stale.
            let current = priority(&overlay, &deleted_neighbours, v, &mut scratch);
            if current > p {
                heap.push(Reverse((current, v)));
                continue;
            }
            // Contract v.
            let shortcuts =
                overlay.required_shortcuts(v, config.witness_settle_limit, &mut scratch);
            for &(u, w, weight) in &shortcuts {
                overlay.add_shortcut(u, w, weight, v);
                num_shortcuts += 1;
            }
            overlay.contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            for e in overlay.fwd[v as usize].clone() {
                if !overlay.contracted[e.to as usize] {
                    deleted_neighbours[e.to as usize] += 1;
                }
            }
            for e in overlay.bwd[v as usize].clone() {
                if !overlay.contracted[e.to as usize] {
                    deleted_neighbours[e.to as usize] += 1;
                }
            }
        }

        // Split the final overlay into upward and downward graphs.
        let mut up: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        let mut down: Vec<Vec<ChEdge>> = vec![Vec::new(); n];
        for v in 0..n {
            for e in &overlay.fwd[v] {
                if rank[e.to as usize] > rank[v] {
                    up[v].push(*e);
                } else {
                    // Downward edge v -> e.to stored at its head for the
                    // backward search.
                    down[e.to as usize].push(ChEdge { to: v as u32, ..*e });
                }
            }
        }

        Ok(ContractionHierarchy {
            rank,
            up,
            down,
            num_shortcuts,
        })
    }

    /// Number of shortcuts in the index.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Contraction rank of a node.
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v.index()]
    }

    /// Exact shortest-path distance, or `None` when unreachable.
    ///
    /// Allocates a fresh workspace; batch callers should reuse a
    /// [`ChSearch`] instead.
    pub fn distance(&self, source: NodeId, target: NodeId) -> Option<Cost> {
        ChSearch::new(self).distance(self, source, target)
    }

    /// Runs the bidirectional upward search. Returns
    /// `Ok(None)` when unreachable, `Err(Interrupted)` when `budget`
    /// trips, otherwise `(distance, meeting node, fwd labels, bwd labels)`.
    #[allow(clippy::type_complexity)]
    fn query(
        &self,
        source: NodeId,
        target: NodeId,
        budget: &SearchBudget,
    ) -> Result<
        Option<(
            Cost,
            u32,
            Vec<(u32, Cost, ChEdge)>,
            Vec<(u32, Cost, ChEdge)>,
        )>,
        CoreError,
    > {
        if source == target {
            return Ok(None);
        }
        if budget.interrupted() {
            return Err(CoreError::Interrupted);
        }
        let sentinel = ChEdge {
            to: u32::MAX,
            weight: 0,
            original: EdgeId::INVALID,
            middle: u32::MAX,
        };
        // Sparse label lists (u32 node, dist, parent edge in that search).
        let mut fwd: Vec<(u32, Cost, ChEdge)> = vec![(source.0, 0, sentinel)];
        let mut bwd: Vec<(u32, Cost, ChEdge)> = vec![(target.0, 0, sentinel)];
        let mut heap_f: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        let mut heap_b: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        heap_f.push(Reverse((0, source.0)));
        heap_b.push(Reverse((0, target.0)));

        let get = |labels: &[(u32, Cost, ChEdge)], v: u32| -> Cost {
            labels
                .iter()
                .find(|&&(x, _, _)| x == v)
                .map(|&(_, d, _)| d)
                .unwrap_or(INFINITY)
        };

        let mut best = INFINITY;
        let mut meet = u32::MAX;
        let mut pops_since_check: u64 = 0;
        loop {
            let kf = heap_f.peek().map(|Reverse((d, _))| *d).unwrap_or(INFINITY);
            let kb = heap_b.peek().map(|Reverse((d, _))| *d).unwrap_or(INFINITY);
            if kf.min(kb) >= best {
                break;
            }
            pops_since_check += 1;
            if pops_since_check == CHECK_INTERVAL {
                pops_since_check = 0;
                if budget.charge(CHECK_INTERVAL) {
                    return Err(CoreError::Interrupted);
                }
            }
            if kf <= kb && kf != INFINITY {
                let Some(Reverse((d, v))) = heap_f.pop() else {
                    break;
                };
                if d > get(&fwd, v) {
                    continue;
                }
                let db = get(&bwd, v);
                if db != INFINITY && d + db < best {
                    best = d + db;
                    meet = v;
                }
                for e in &self.up[v as usize] {
                    let nd = d + e.weight as Cost;
                    if nd < get(&fwd, e.to) {
                        fwd.retain(|&(x, _, _)| x != e.to);
                        fwd.push((e.to, nd, ChEdge { to: v, ..*e }));
                        heap_f.push(Reverse((nd, e.to)));
                    }
                }
            } else if kb != INFINITY {
                let Some(Reverse((d, v))) = heap_b.pop() else {
                    break;
                };
                if d > get(&bwd, v) {
                    continue;
                }
                let df = get(&fwd, v);
                if df != INFINITY && d + df < best {
                    best = d + df;
                    meet = v;
                }
                for e in &self.down[v as usize] {
                    // e.to is the tail of a downward edge (e.to -> v);
                    // in the backward search we move from v to e.to going up.
                    let nd = d + e.weight as Cost;
                    if nd < get(&bwd, e.to) {
                        bwd.retain(|&(x, _, _)| x != e.to);
                        bwd.push((e.to, nd, ChEdge { to: v, ..*e }));
                        heap_b.push(Reverse((nd, e.to)));
                    }
                }
            } else {
                break;
            }
        }

        // Account the partial interval; the budget's expansion counter
        // stays cumulative across queries.
        budget.charge(pops_since_check);
        if best == INFINITY {
            Ok(None)
        } else {
            Ok(Some((best, meet, fwd, bwd)))
        }
    }

    /// Exact shortest path with shortcut unpacking.
    pub fn shortest_path(
        &self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
    ) -> Result<Path, CoreError> {
        self.shortest_path_within(net, weights, source, target, &SearchBudget::unlimited())
    }

    /// [`ContractionHierarchy::shortest_path`] under a cooperative
    /// [`SearchBudget`]: a trip aborts the query phase with
    /// [`CoreError::Interrupted`].
    pub fn shortest_path_within(
        &self,
        net: &RoadNetwork,
        weights: &[Weight],
        source: NodeId,
        target: NodeId,
        budget: &SearchBudget,
    ) -> Result<Path, CoreError> {
        if source.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(source));
        }
        if target.index() >= net.num_nodes() {
            return Err(CoreError::InvalidNode(target));
        }
        if source == target {
            return Err(CoreError::SameSourceTarget(source));
        }
        let Some((_, meet, fwd, bwd)) = self.query(source, target, budget)? else {
            return Err(CoreError::Unreachable { source, target });
        };

        let find = |labels: &[(u32, Cost, ChEdge)], v: u32| -> (Cost, ChEdge) {
            labels
                .iter()
                .find(|&&(x, _, _)| x == v)
                .map(|&(_, d, e)| (d, e))
                .expect("label exists on the found path")
        };

        // Forward half: walk from meet back to source; parent edge's `to`
        // holds the predecessor; (pred -> v) is the travel direction.
        let mut ch_edges_fwd: Vec<(u32, u32, ChEdge)> = Vec::new();
        let mut v = meet;
        while v != source.0 {
            let (_, pe) = find(&fwd, v);
            ch_edges_fwd.push((pe.to, v, pe));
            v = pe.to;
        }
        ch_edges_fwd.reverse();
        // Backward half: walk from meet to target; the label at u holds the
        // downward edge (u -> succ) in travel direction.
        let mut ch_edges_bwd: Vec<(u32, u32, ChEdge)> = Vec::new();
        let mut u = meet;
        while u != target.0 {
            let (_, pe) = find(&bwd, u);
            ch_edges_bwd.push((u, pe.to, pe));
            u = pe.to;
        }

        // Unpack shortcuts recursively into original EdgeIds.
        let mut edges: Vec<EdgeId> = Vec::new();
        for (a, b, e) in ch_edges_fwd.into_iter().chain(ch_edges_bwd) {
            self.unpack(a, b, &e, &mut edges);
        }
        Ok(Path::from_edges(net, weights, edges))
    }

    fn unpack(&self, a: u32, b: u32, e: &ChEdge, out: &mut Vec<EdgeId>) {
        if !e.original.is_invalid() {
            out.push(e.original);
            return;
        }
        let mid = e.middle;
        debug_assert_ne!(mid, u32::MAX, "shortcut must have a middle vertex");
        // Find the two constituent edges (a -> mid) and (mid -> b) with the
        // matching total weight, among up/down edges of mid's neighbours.
        let left = self
            .edge_between(a, mid)
            .expect("shortcut left child exists");
        let right = self
            .edge_between(mid, b)
            .expect("shortcut right child exists");
        self.unpack(a, mid, &left, out);
        self.unpack(mid, b, &right, out);
    }

    /// Finds the lightest CH edge `x -> y` in the augmented graph.
    fn edge_between(&self, x: u32, y: u32) -> Option<ChEdge> {
        let mut best: Option<ChEdge> = None;
        for e in &self.up[x as usize] {
            if e.to == y && best.is_none_or(|b| e.weight < b.weight) {
                best = Some(*e);
            }
        }
        // Downward edges x -> y are stored at y.
        for e in &self.down[y as usize] {
            if e.to == x && best.is_none_or(|b| e.weight < b.weight) {
                best = Some(ChEdge { to: y, ..*e });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchSpace;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < n {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + n],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn distances_match_dijkstra_on_grid() {
        let net = grid(7);
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        for s in (0..49u32).step_by(5) {
            for t in (0..49u32).step_by(7) {
                if s == t {
                    continue;
                }
                let expect = ws
                    .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                    .unwrap();
                let got = ch.distance(NodeId(s), NodeId(t)).unwrap();
                assert_eq!(got, expect, "{s}->{t}");
            }
        }
    }

    #[test]
    fn closed_edges_are_excluded_from_the_index() {
        let net = grid(4);
        let ws_base = ContractionHierarchy::build(&net, net.weights())
            .unwrap()
            .distance(NodeId(0), NodeId(15))
            .expect("open grid is connected");
        // Close every out-edge of the source except one: routes must
        // avoid closures entirely (no shortcut tunnels through).
        let mut overlay = net.weights().to_vec();
        let first_out: Vec<EdgeId> = net.out_edges(NodeId(0)).collect();
        overlay[first_out[0].index()] = CLOSED;
        let ch = ContractionHierarchy::build_view(&net, &overlay).unwrap();
        let p = ch
            .shortest_path(&net, &overlay, NodeId(0), NodeId(15))
            .unwrap();
        for &e in &p.edges {
            assert_ne!(overlay[e.index()], CLOSED);
        }
        assert!(p.cost_ms >= ws_base);
        // Fully-closed graph: unreachable, not a panic.
        let all_closed = vec![CLOSED; net.num_edges()];
        let ch = ContractionHierarchy::build(&net, &all_closed).unwrap();
        assert_eq!(ch.distance(NodeId(0), NodeId(15)), None);
    }

    #[test]
    fn paths_unpack_to_valid_original_edges() {
        let net = grid(6);
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        for (s, t) in [(0u32, 35u32), (5, 30), (14, 21), (1, 34)] {
            let p = ch
                .shortest_path(&net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            assert!(p.validate(&net), "{s}->{t}");
            assert_eq!(p.source(), NodeId(s));
            assert_eq!(p.target(), NodeId(t));
            let expect = ws
                .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                .unwrap();
            assert_eq!(p.cost_ms, expect);
        }
    }

    #[test]
    fn works_on_directed_asymmetric_graph() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..8)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for i in 0..8 {
            b.add_edge(
                ids[i],
                ids[(i + 1) % 8],
                EdgeSpec::default().with_weight(100 + i as u32 * 10),
            );
        }
        b.add_edge(ids[0], ids[4], EdgeSpec::default().with_weight(350));
        b.add_edge(ids[5], ids[2], EdgeSpec::default().with_weight(90));
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(&net);
        for s in 0..8u32 {
            for t in 0..8u32 {
                if s == t {
                    continue;
                }
                let expect = ws
                    .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                    .ok();
                let got = ch.distance(NodeId(s), NodeId(t));
                assert_eq!(got, expect, "{s}->{t}");
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        assert_eq!(ch.distance(NodeId(1), NodeId(0)), None);
        assert!(ch.distance(NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn ranks_are_a_permutation() {
        let net = grid(5);
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut ranks: Vec<u32> = (0..25).map(|v| ch.rank(NodeId(v))).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..25).collect::<Vec<u32>>());
    }

    #[test]
    fn shortcut_count_is_moderate_on_grids() {
        let net = grid(8);
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        // Grids need some shortcuts but far fewer than n^2.
        assert!(
            ch.num_shortcuts() < net.num_edges() * 4,
            "{}",
            ch.num_shortcuts()
        );
    }

    #[test]
    fn wrong_weight_length_rejected() {
        let net = grid(3);
        assert!(matches!(
            ContractionHierarchy::build(&net, &[1, 2, 3]),
            Err(CoreError::WeightLengthMismatch { .. })
        ));
    }

    #[test]
    fn deleted_neighbours_weight_changes_contraction_order() {
        // Regression: the knob used to be read into `let _ = ...` while
        // the priority hardcoded `* 1.0`, so no setting could change the
        // order. A strongly weighted deleted-neighbours term must now
        // produce a different rank permutation (both stay exact).
        let net = grid(6);
        let default =
            ContractionHierarchy::build_with(&net, net.weights(), &ChConfig::default()).unwrap();
        let heavy = ContractionHierarchy::build_with(
            &net,
            net.weights(),
            &ChConfig {
                deleted_neighbours_weight: 1000.0,
                ..ChConfig::default()
            },
        )
        .unwrap();
        let ranks = |ch: &ContractionHierarchy| -> Vec<u32> {
            (0..net.num_nodes() as u32)
                .map(|v| ch.rank(NodeId(v)))
                .collect()
        };
        assert_ne!(
            ranks(&default),
            ranks(&heavy),
            "a non-default deleted_neighbours_weight must change the order"
        );
        let mut ws = SearchSpace::new(&net);
        for (s, t) in [(0u32, 35u32), (5, 30), (14, 21)] {
            let expect = ws
                .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                .ok();
            assert_eq!(heavy.distance(NodeId(s), NodeId(t)), expect, "{s}->{t}");
        }
    }

    #[test]
    fn matches_on_city_network() {
        let city =
            arp_citygen::generate(arp_citygen::City::Copenhagen, arp_citygen::Scale::Tiny, 3);
        let net = &city.network;
        let ch = ContractionHierarchy::build(net, net.weights()).unwrap();
        let mut ws = SearchSpace::new(net);
        let n = net.num_nodes() as u32;
        for i in 0..12u32 {
            let s = (i * 37) % n;
            let t = (i * 101 + 7) % n;
            if s == t {
                continue;
            }
            let expect = ws
                .shortest_distance(net, net.weights(), NodeId(s), NodeId(t))
                .ok();
            assert_eq!(ch.distance(NodeId(s), NodeId(t)), expect, "{s}->{t}");
        }
    }
}

/// Reusable dense workspace for CH distance queries.
///
/// Uses generation-stamped distance arrays like
/// [`crate::search::SearchSpace`], so repeated queries touch only the
/// (few) vertices the upward searches actually settle.
pub struct ChSearch {
    dist_f: Vec<Cost>,
    dist_b: Vec<Cost>,
    stamp_f: Vec<u32>,
    stamp_b: Vec<u32>,
    generation: u32,
    heap_f: BinaryHeap<Reverse<(Cost, u32)>>,
    heap_b: BinaryHeap<Reverse<(Cost, u32)>>,
    stats: SearchStats,
    metrics: SearchMetrics,
    budget: SearchBudget,
}

impl ChSearch {
    /// A workspace sized for the hierarchy's node count.
    pub fn new(ch: &ContractionHierarchy) -> ChSearch {
        let n = ch.rank.len();
        ChSearch {
            dist_f: vec![INFINITY; n],
            dist_b: vec![INFINITY; n],
            stamp_f: vec![0; n],
            stamp_b: vec![0; n],
            generation: 0,
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            stats: SearchStats::default(),
            metrics: SearchMetrics::default(),
            budget: SearchBudget::unlimited(),
        }
    }

    /// Attaches pre-resolved counters; every subsequent query flushes its
    /// [`SearchStats`] (both upward searches combined) into them.
    pub fn set_metrics(&mut self, metrics: SearchMetrics) {
        self.metrics = metrics;
    }

    /// Attaches a cooperative [`SearchBudget`], polled every
    /// [`CHECK_INTERVAL`] heap pops. [`ChSearch::distance`] folds a trip
    /// into `None`; use [`ChSearch::try_distance`] to tell an interrupted
    /// query apart from an unreachable pair.
    pub fn set_budget(&mut self, budget: SearchBudget) {
        self.budget = budget;
    }

    /// The workspace's current budget.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Work counters of the most recently completed query.
    pub fn last_stats(&self) -> SearchStats {
        self.stats
    }

    #[inline]
    fn poll_budget(&mut self, pops: u64) -> Result<(), CoreError> {
        if self.budget.is_limited() {
            self.stats.budget_checks += 1;
            if self.budget.charge(pops) {
                self.metrics.record(&self.stats);
                return Err(CoreError::Interrupted);
            }
        }
        Ok(())
    }

    #[inline]
    fn df(&self, v: u32) -> Cost {
        if self.stamp_f[v as usize] == self.generation {
            self.dist_f[v as usize]
        } else {
            INFINITY
        }
    }

    #[inline]
    fn db(&self, v: u32) -> Cost {
        if self.stamp_b[v as usize] == self.generation {
            self.dist_b[v as usize]
        } else {
            INFINITY
        }
    }

    /// Exact shortest-path distance, or `None` when unreachable or when
    /// `source == target`.
    ///
    /// An attached budget that trips also yields `None`; callers that
    /// must distinguish use [`ChSearch::try_distance`].
    pub fn distance(
        &mut self,
        ch: &ContractionHierarchy,
        source: NodeId,
        target: NodeId,
    ) -> Option<Cost> {
        self.try_distance(ch, source, target).unwrap_or(None)
    }

    /// Budget-aware variant of [`ChSearch::distance`]:
    /// `Err(`[`CoreError::Interrupted`]`)` when the attached
    /// [`SearchBudget`] trips mid-query, `Ok(None)` when unreachable.
    pub fn try_distance(
        &mut self,
        ch: &ContractionHierarchy,
        source: NodeId,
        target: NodeId,
    ) -> Result<Option<Cost>, CoreError> {
        if source == target || source.index() >= ch.rank.len() || target.index() >= ch.rank.len() {
            return Ok(None);
        }
        self.stats = SearchStats::default();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp_f.fill(0);
            self.stamp_b.fill(0);
            self.generation = 1;
        }
        self.heap_f.clear();
        self.heap_b.clear();

        self.stamp_f[source.index()] = self.generation;
        self.dist_f[source.index()] = 0;
        self.heap_f.push(Reverse((0, source.0)));
        self.stamp_b[target.index()] = self.generation;
        self.dist_b[target.index()] = 0;
        self.heap_b.push(Reverse((0, target.0)));
        self.poll_budget(0)?;

        let mut best = INFINITY;
        let mut pops_since_check: u64 = 0;
        loop {
            let kf = self
                .heap_f
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            let kb = self
                .heap_b
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            if kf.min(kb) >= best {
                break;
            }
            if kf <= kb && kf != INFINITY {
                let Some(Reverse((d, v))) = self.heap_f.pop() else {
                    break;
                };
                self.stats.heap_pops += 1;
                pops_since_check += 1;
                if pops_since_check == CHECK_INTERVAL {
                    pops_since_check = 0;
                    self.poll_budget(CHECK_INTERVAL)?;
                }
                if d > self.df(v) {
                    continue;
                }
                self.stats.settled += 1;
                let db = self.db(v);
                if db != INFINITY && d + db < best {
                    best = d + db;
                }
                for e in &ch.up[v as usize] {
                    self.stats.relaxed += 1;
                    let nd = d + e.weight as Cost;
                    if nd < self.df(e.to) {
                        self.stamp_f[e.to as usize] = self.generation;
                        self.dist_f[e.to as usize] = nd;
                        self.heap_f.push(Reverse((nd, e.to)));
                    }
                }
            } else if kb != INFINITY {
                let Some(Reverse((d, v))) = self.heap_b.pop() else {
                    break;
                };
                self.stats.heap_pops += 1;
                pops_since_check += 1;
                if pops_since_check == CHECK_INTERVAL {
                    pops_since_check = 0;
                    self.poll_budget(CHECK_INTERVAL)?;
                }
                if d > self.db(v) {
                    continue;
                }
                self.stats.settled += 1;
                let df = self.df(v);
                if df != INFINITY && d + df < best {
                    best = d + df;
                }
                for e in &ch.down[v as usize] {
                    self.stats.relaxed += 1;
                    let nd = d + e.weight as Cost;
                    if nd < self.db(e.to) {
                        self.stamp_b[e.to as usize] = self.generation;
                        self.dist_b[e.to as usize] = nd;
                        self.heap_b.push(Reverse((nd, e.to)));
                    }
                }
            } else {
                break;
            }
        }
        // Account the partial interval; the budget's expansion counter
        // stays cumulative across queries.
        self.budget.charge(pops_since_check);
        self.metrics.record(&self.stats);
        Ok((best != INFINITY).then_some(best))
    }
}

#[cfg(test)]
mod ch_search_tests {
    use super::*;
    use crate::search::SearchSpace;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;

    #[test]
    fn dense_workspace_matches_dijkstra_with_reuse() {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..8 {
            for x in 0..8 {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..8usize {
            for x in 0..8usize {
                let i = y * 8 + x;
                if x + 1 < 8 {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
                if y + 1 < 8 {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 8],
                        EdgeSpec::category(RoadCategory::Primary),
                    );
                }
            }
        }
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut search = ChSearch::new(&ch);
        let mut ws = SearchSpace::new(&net);
        for s in (0..64u32).step_by(3) {
            for t in (0..64u32).step_by(5) {
                if s == t {
                    continue;
                }
                let expect = ws
                    .shortest_distance(&net, net.weights(), NodeId(s), NodeId(t))
                    .unwrap();
                assert_eq!(
                    search.distance(&ch, NodeId(s), NodeId(t)),
                    Some(expect),
                    "{s}->{t}"
                );
            }
        }
    }

    #[test]
    fn cancelled_budget_interrupts_try_distance() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for i in 0..3 {
            b.add_bidirectional(
                ids[i],
                ids[i + 1],
                EdgeSpec::category(RoadCategory::Primary),
            );
        }
        let net = b.build();
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let mut search = ChSearch::new(&ch);
        let budget = SearchBudget::new();
        budget.cancel();
        search.set_budget(budget);
        assert!(matches!(
            search.try_distance(&ch, NodeId(0), NodeId(3)),
            Err(CoreError::Interrupted)
        ));
        // `distance` folds the interruption into None.
        assert_eq!(search.distance(&ch, NodeId(0), NodeId(3)), None);
        // The packed-path query honours the budget too.
        assert!(matches!(
            ch.shortest_path_within(&net, net.weights(), NodeId(0), NodeId(3), search.budget()),
            Err(CoreError::Interrupted)
        ));
        search.set_budget(SearchBudget::unlimited());
        assert!(search.distance(&ch, NodeId(0), NodeId(3)).is_some());
    }
}
