//! Criterion benchmarks for the four techniques across the three study
//! cities — the §2 cost claims: Plateaus ≈ two Dijkstra searches plus a
//! linear join; Penalty ≈ k penalized searches; Dissimilarity the
//! slowest (via-node enumeration + pairwise dissimilarity checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arp_citygen::{City, Scale};
use arp_core::prelude::*;

fn technique_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("techniques");
    group.sample_size(20);

    for city_kind in City::ALL {
        let city = arp_bench::generate_city(city_kind, Scale::Small);
        let net = city.network;
        let queries = arp_bench::random_queries(&net, 8, 3 * 60_000, 40 * 60_000, 7);
        assert!(!queries.is_empty(), "{city_kind}: no benchmark queries");
        let q = AltQuery::paper();

        group.bench_with_input(
            BenchmarkId::new("dijkstra_baseline", city_kind.name()),
            &queries,
            |b, queries| {
                let mut ws = SearchSpace::new(&net);
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(ws.shortest_path(&net, net.weights(), s, t).unwrap().cost_ms);
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("plateaus", city_kind.name()),
            &queries,
            |b, queries| {
                let opts = PlateauOptions::default();
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(
                            plateau_alternatives(&net, net.weights(), s, t, &q, &opts)
                                .unwrap()
                                .len(),
                        );
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("penalty", city_kind.name()),
            &queries,
            |b, queries| {
                let opts = PenaltyOptions::default();
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(
                            penalty_alternatives(&net, net.weights(), s, t, &q, &opts)
                                .unwrap()
                                .len(),
                        );
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("dissimilarity", city_kind.name()),
            &queries,
            |b, queries| {
                let opts = DissimilarityOptions::default();
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(
                            dissimilarity_alternatives(&net, net.weights(), s, t, &q, &opts)
                                .unwrap()
                                .len(),
                        );
                    }
                });
            },
        );

        let google = GoogleLikeProvider::new(&net, 7);
        group.bench_with_input(
            BenchmarkId::new("google_like", city_kind.name()),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(
                            google
                                .alternatives(&net, net.weights(), s, t, &q)
                                .unwrap()
                                .len(),
                        );
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("yen_k3", city_kind.name()),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(
                            yen_k_shortest_paths(&net, net.weights(), s, t, 3)
                                .unwrap()
                                .len(),
                        );
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, technique_benches);
criterion_main!(benches);
