//! Criterion benchmarks for the shortest-path engine: one-to-one Dijkstra
//! with early termination, A*, and full shortest-path trees (the dominant
//! cost of Plateaus and Dissimilarity per §2.2/§2.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arp_citygen::{City, Scale};
use arp_core::search::{Direction, SearchSpace};
use arp_core::{BidirSearch, ChSearch, ContractionHierarchy};

fn search_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(30);

    for scale in [Scale::Small, Scale::Medium] {
        let city = arp_bench::generate_city(City::Melbourne, scale);
        let net = city.network;
        let label = format!("{}n", net.num_nodes());
        let queries = arp_bench::random_queries(&net, 8, 60_000, 60 * 60_000, 3);

        group.bench_with_input(
            BenchmarkId::new("dijkstra_1to1", &label),
            &queries,
            |b, queries| {
                let mut ws = SearchSpace::new(&net);
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(ws.shortest_path(&net, net.weights(), s, t).unwrap().cost_ms);
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("astar_1to1", &label),
            &queries,
            |b, queries| {
                let mut ws = SearchSpace::new(&net);
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(ws.astar(&net, net.weights(), s, t).unwrap().cost_ms);
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("spt_forward", &label),
            &queries,
            |b, queries| {
                let mut ws = SearchSpace::new(&net);
                b.iter(|| {
                    for &(s, _, _) in queries {
                        let tree = ws
                            .shortest_path_tree(&net, net.weights(), s, Direction::Forward)
                            .unwrap();
                        black_box(tree.dist.len());
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("spt_backward", &label),
            &queries,
            |b, queries| {
                let mut ws = SearchSpace::new(&net);
                b.iter(|| {
                    for &(_, t, _) in queries {
                        let tree = ws
                            .shortest_path_tree(&net, net.weights(), t, Direction::Backward)
                            .unwrap();
                        black_box(tree.dist.len());
                    }
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("bidirectional_1to1", &label),
            &queries,
            |b, queries| {
                let mut bi = BidirSearch::new(&net);
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(bi.shortest_distance(&net, net.weights(), s, t).unwrap());
                    }
                });
            },
        );

        // CH preprocessing is done once outside the measured loop; queries
        // then show the index speed-up over plain Dijkstra.
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("ch_query", &label),
            &queries,
            |b, queries| {
                let mut search = ChSearch::new(&ch);
                b.iter(|| {
                    for &(s, t, _) in queries {
                        black_box(search.distance(&ch, s, t).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, search_benches);
criterion_main!(benches);
