//! Criterion benchmarks for the data pipeline (§3's Road Network
//! Constructor) and the route-quality metrics that feed the perception
//! model: OSM XML parse, rectangle filter, network construction, spatial
//! matching, and similarity/quality computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arp_citygen::{City, Scale};
use arp_core::prelude::*;
use arp_core::quality::route_set_quality;
use arp_core::similarity::diversity;
use arp_osm::constructor::{build_road_network, ConstructorConfig};
use arp_osm::export::network_to_osm;
use arp_osm::filter::filter_bbox;
use arp_osm::writer::write_osm_xml;
use arp_osm::xml::parse_osm_xml;
use arp_roadnet::spatial::SpatialIndex;

fn pipeline_benches(c: &mut Criterion) {
    let city = arp_bench::generate_city(City::Melbourne, Scale::Small);
    let net = &city.network;
    let osm = network_to_osm(net);
    let xml = write_osm_xml(&osm);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    group.bench_function("osm_xml_parse", |b| {
        b.iter(|| black_box(parse_osm_xml(&xml).unwrap().num_ways()));
    });

    group.bench_function("osm_xml_write", |b| {
        b.iter(|| black_box(write_osm_xml(&osm).len()));
    });

    group.bench_function("bbox_filter", |b| {
        let bb = net.bbox();
        let quarter = arp_roadnet::geo::BoundingBox::new(
            bb.min_lon,
            bb.min_lat,
            bb.min_lon + bb.width_deg() / 2.0,
            bb.min_lat + bb.height_deg() / 2.0,
        );
        b.iter(|| black_box(filter_bbox(&osm, quarter).num_nodes()));
    });

    group.bench_function("road_network_constructor", |b| {
        b.iter(|| {
            let (net, _) = build_road_network(&osm, &ConstructorConfig::default()).unwrap();
            black_box(net.num_edges())
        });
    });

    group.bench_function("spatial_index_build", |b| {
        b.iter(|| black_box(SpatialIndex::build(net).num_cells()));
    });

    group.bench_function("nearest_node_query", |b| {
        let idx = SpatialIndex::build(net);
        let bb = net.bbox();
        let points: Vec<arp_roadnet::geo::Point> = (0..64)
            .map(|i| {
                arp_roadnet::geo::Point::new(
                    bb.min_lon + bb.width_deg() * ((i * 13 % 64) as f64 / 64.0),
                    bb.min_lat + bb.height_deg() * ((i * 29 % 64) as f64 / 64.0),
                )
            })
            .collect();
        b.iter(|| {
            for &p in &points {
                black_box(idx.nearest_node(net, p));
            }
        });
    });

    // Quality metrics over a realistic alternatives set.
    let queries = arp_bench::random_queries(net, 4, 5 * 60_000, 40 * 60_000, 5);
    let &(s, t, best) = queries.first().expect("query");
    let paths = plateau_alternatives(
        net,
        net.weights(),
        s,
        t,
        &AltQuery::paper(),
        &PlateauOptions::default(),
    )
    .unwrap();

    group.bench_function("diversity_metric", |b| {
        b.iter(|| black_box(diversity(&paths, net.weights())));
    });

    group.bench_function("route_set_quality", |b| {
        b.iter(|| black_box(route_set_quality(net, net.weights(), &paths, best).diversity));
    });

    group.finish();
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);
