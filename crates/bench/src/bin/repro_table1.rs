//! Reproduces **Table 1** (all 237 responses): mean rating and standard
//! deviation per approach, overall and per length bin.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_table1
//! ```

use arp_userstudy::paper;
use arp_userstudy::tables::{max_mean_deviation, render, render_vs_paper, table1};

fn main() {
    let (outcome, _) = arp_bench::calibrated_study();
    let table = table1(outcome);

    let mut report = String::new();
    report.push_str(&render(&table));
    report.push('\n');
    report.push_str(&render_vs_paper(&table, &paper::TABLE1));
    let dev = max_mean_deviation(&table, &paper::TABLE1);
    report.push_str(&format!("\nmax |measured - paper| mean: {dev:.3}\n"));

    println!("{report}");
    let path = arp_bench::write_report("table1.txt", &report);
    println!("report written to {}", path.display());
}
