//! Reproduces **Table 2** (Melbourne residents only, 156 responses).
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_table2
//! ```

use arp_userstudy::paper;
use arp_userstudy::tables::{max_mean_deviation, render, render_vs_paper, table2};

fn main() {
    let (outcome, _) = arp_bench::calibrated_study();
    let table = table2(outcome);

    let mut report = String::new();
    report.push_str(&render(&table));
    report.push('\n');
    report.push_str(&render_vs_paper(&table, &paper::TABLE2));
    let dev = max_mean_deviation(&table, &paper::TABLE2);
    report.push_str(&format!("\nmax |measured - paper| mean: {dev:.3}\n"));

    println!("{report}");
    let path = arp_bench::write_report("table2.txt", &report);
    println!("report written to {}", path.display());
}
