//! Live-traffic replay: a full rush-hour day against the serving stack.
//!
//! Drives the deterministic [`arp_traffic::TrafficFeed`] through all 24
//! ticks of its day against the real `arp-serve` pipeline (admission,
//! epoch-keyed route cache, technique fan-out) and measures what the
//! epoch machinery is for:
//!
//! * **route-flip rate** — how often a tick's weight change flips the
//!   first-ranked route of at least one technique (the paper's
//!   data-divergence mechanism, §4.2, now happening *live*),
//! * **cache-hit decay and recovery** — every tick logically invalidates
//!   the whole route cache (epoch-keyed lanes), so the first pass after a
//!   tick misses and the second pass must hit again: epoch-scoped
//!   invalidation, not a cache flush,
//! * **latency under churn** — per-request p50/p95 across the day.
//!
//! The run *asserts* the recovery property (second pass after every tick
//! hits all four lanes) rather than just reporting it. Report lands in
//! `reports/traffic.txt`.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_traffic
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use arp_citygen::Scale;
use arp_demo::backend::DemoBackend;
use arp_demo::query::{QueryProcessor, SnappedQuery};
use arp_serve::{RouteService, ServeConfig};
use arp_traffic::{CityProfile, TrafficFeed};

/// Distinct queries replayed each tick.
const DISTINCT: usize = 10;
/// Ticks of the feed's day (one epoch each).
const TICKS: u64 = 24;

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let index = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[index]
}

fn main() {
    let city = arp_bench::generate_city(arp_citygen::City::Melbourne, Scale::Small);
    let name = city.name.clone();
    let pairs = arp_bench::random_queries(&city.network, DISTINCT, 3 * 60_000, 40 * 60_000, 17);
    let processor = Arc::new(QueryProcessor::new(name.clone(), city.network, 17));
    let registry = processor.registry().clone();
    let service = RouteService::new(
        DemoBackend::new(Arc::clone(&processor)),
        ServeConfig::default(),
        &registry,
    );
    let queries: Vec<SnappedQuery> = pairs
        .iter()
        .map(|&(s, t, _)| SnappedQuery {
            source: s,
            target: t,
        })
        .collect();

    let feed = TrafficFeed::new(arp_bench::MASTER_SEED, CityProfile::for_city_name(&name));
    let hits = || registry.counter_value("arp_serve_cache_hits_total", &[]);
    let misses = || registry.counter_value("arp_serve_cache_misses_total", &[]);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Live-traffic replay, {name}: {DISTINCT} distinct queries x 2 passes per tick, \
         {TICKS} feed ticks (one epoch each), release build"
    );
    let _ = writeln!(
        report,
        "feed: {:?} profile, seed {}, rush-hour peaks at ticks 8 and 17\n",
        feed.profile(),
        arp_bench::MASTER_SEED
    );
    let _ = writeln!(
        report,
        "  {:<5} {:>6} {:>5} {:>7} {:>8} {:>6} {:>10} {:>9} {:>9}",
        "tick", "epoch", "ops", "closed", "flips", "fails", "hit rate", "p50 ms", "p95 ms"
    );

    // First-ranked route per (query, approach) from the previous tick —
    // the flip detector compares against it.
    let mut previous: Vec<Vec<Option<Vec<u32>>>> = vec![vec![None; 4]; DISTINCT];
    let mut total_flips = 0usize;
    let mut flip_opportunities = 0usize;
    let mut all_latencies: Vec<f64> = Vec::new();

    for tick in 0..TICKS {
        let outcome = processor
            .traffic()
            .advance_tick(&feed)
            .expect("feed deltas are valid by construction");
        service.note_epoch_invalidations();

        let (h0, m0) = (hits(), misses());
        let mut latencies: Vec<f64> = Vec::new();
        let mut flipped = 0usize;
        let mut failed = 0usize;
        // Two passes: the first re-populates the cache under the new
        // epoch, the second must be served from it.
        for pass in 0..2 {
            let hits_before_pass = hits();
            for (qi, &snapped) in queries.iter().enumerate() {
                let started = Instant::now();
                let resp = service.route(processor.prepare_query(snapped));
                latencies.push(started.elapsed().as_secs_f64() * 1e3);
                let resp = match resp {
                    Ok(resp) => resp,
                    Err(_) => {
                        // An incident closure can (rarely) disconnect a
                        // pair; the service degrades it to an error
                        // response, which is itself the designed
                        // behaviour — count it and move on.
                        failed += 1;
                        continue;
                    }
                };
                assert_eq!(resp.epoch, outcome.epoch, "response pinned a stale epoch");
                if pass == 1 {
                    continue; // flips are judged once per tick
                }
                let mut any_flip = false;
                for (ai, approach) in resp.approaches.iter().enumerate() {
                    let first: Option<Vec<u32>> = approach
                        .routes
                        .first()
                        .map(|r| r.edges.iter().map(|e| e.0).collect());
                    if let Some(prev) = &previous[qi][ai] {
                        flip_opportunities += 1;
                        if first.as_ref() != Some(prev) {
                            any_flip = true;
                        }
                    }
                    previous[qi][ai] = first;
                }
                if any_flip {
                    flipped += 1;
                }
            }
            if pass == 1 {
                // The recovery assertion: the epoch bump invalidated the
                // old entries, the first pass repopulated, so the second
                // pass of every non-failing query hits all four lanes.
                let expected = (queries.len() - failed.min(queries.len())) as u64 * 4;
                let pass_hits = hits() - hits_before_pass;
                assert!(
                    pass_hits >= expected,
                    "tick {tick}: second pass hit {pass_hits} lanes, expected >= {expected} \
                     — epoch-keyed cache failed to recover"
                );
            }
        }
        total_flips += flipped;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (h1, m1) = (hits(), misses());
        let tick_lookups = (h1 - h0) + (m1 - m0);
        let hit_rate = if tick_lookups == 0 {
            0.0
        } else {
            (h1 - h0) as f64 / tick_lookups as f64
        };
        let _ = writeln!(
            report,
            "  {:<5} {:>6} {:>5} {:>7} {:>8} {:>6} {:>9.0}% {:>9.2} {:>9.2}",
            tick + 1,
            outcome.epoch,
            outcome.applied,
            outcome.closures_active,
            flipped,
            failed,
            hit_rate * 100.0,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
        );
        all_latencies.extend(latencies);
    }

    all_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let epoch_invalidations =
        registry.counter_value("arp_serve_cache_epoch_invalidations_total", &[]);
    let _ = writeln!(
        report,
        "\nday summary: {} requests, {} route-flip ticks / {} query-ticks observed, \
         {} cached routes epoch-invalidated",
        all_latencies.len(),
        total_flips,
        flip_opportunities / 4,
        epoch_invalidations,
    );
    let _ = writeln!(
        report,
        "latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        percentile(&all_latencies, 0.50),
        percentile(&all_latencies, 0.95),
        percentile(&all_latencies, 0.99),
    );
    let _ = writeln!(
        report,
        "\nproperties checked: every response re-pinned the tick's epoch exactly; \
         after every tick the second pass was served from the epoch-keyed cache \
         (invalidation is epoch-scoped, untouched shards age out lazily)."
    );
    assert!(
        total_flips > 0,
        "a full rush-hour day must flip at least one first-ranked route"
    );
    assert!(
        epoch_invalidations > 0,
        "ticks must invalidate cached routes"
    );

    let path = arp_bench::write_report("traffic.txt", &report);
    println!("{report}");
    println!("report written to {}", path.display());
}
