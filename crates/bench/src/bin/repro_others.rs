//! §2.4 "Other techniques" comparison: the paper argues (a) naive Yen
//! k-shortest paths are "all expected to be very similar to each other",
//! (b) edge-exclusion / limited-overlap variants (ESX-style) fix that at
//! extra cost, (c) Pareto/skyline paths are a different axis entirely.
//! This experiment quantifies those claims against the three study
//! techniques on the same query batch.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_others
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use arp_core::prelude::*;
use arp_core::quality::route_set_quality;

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;
    let queries = arp_bench::random_queries(
        net,
        30,
        8 * 60_000,
        45 * 60_000,
        arp_bench::MASTER_SEED ^ 0x07E5,
    );
    let q = AltQuery::paper();

    struct Row {
        name: &'static str,
        routes: f64,
        stretch: f64,
        diversity: f64,
        ms_per_query: f64,
    }
    let mut rows: Vec<Row> = Vec::new();

    let mut run =
        |name: &'static str,
         f: &mut dyn FnMut(arp_roadnet::NodeId, arp_roadnet::NodeId) -> Option<Vec<Path>>| {
            let mut routes = 0.0;
            let mut stretch = 0.0;
            let mut diversity = 0.0;
            let mut n = 0usize;
            let started = Instant::now();
            for &(s, t, best) in &queries {
                let Some(paths) = f(s, t) else { continue };
                if paths.is_empty() {
                    continue;
                }
                let report = route_set_quality(net, net.weights(), &paths, best);
                routes += report.count as f64;
                stretch += report.mean_stretch;
                diversity += report.diversity;
                n += 1;
            }
            let elapsed = started.elapsed().as_secs_f64() * 1000.0 / n.max(1) as f64;
            let nf = n.max(1) as f64;
            rows.push(Row {
                name,
                routes: routes / nf,
                stretch: stretch / nf,
                diversity: diversity / nf,
                ms_per_query: elapsed,
            });
        };

    run("plateaus", &mut |s, t| {
        plateau_alternatives(net, net.weights(), s, t, &q, &PlateauOptions::default()).ok()
    });
    run("penalty", &mut |s, t| {
        penalty_alternatives(net, net.weights(), s, t, &q, &PenaltyOptions::default()).ok()
    });
    run("dissimilarity (SSVP-D+)", &mut |s, t| {
        dissimilarity_alternatives(
            net,
            net.weights(),
            s,
            t,
            &q,
            &DissimilarityOptions::default(),
        )
        .ok()
    });
    run("yen k=3 (naive KSP)", &mut |s, t| {
        yen_k_shortest_paths(net, net.weights(), s, t, 3).ok()
    });
    run("esx (k-SPwLO)", &mut |s, t| {
        esx_alternatives(net, net.weights(), s, t, &q, &EsxOptions::default()).ok()
    });
    run("pareto (time x distance)", &mut |s, t| {
        pareto_paths(net, net.weights(), s, t, &ParetoOptions::default())
            .ok()
            .map(|rs| rs.into_iter().take(q.k).map(|r| r.path).collect())
    });

    let mut report = String::new();
    let _ = writeln!(
        report,
        "§2.4 other-techniques comparison over {} queries on {}",
        queries.len(),
        city.name
    );
    let _ = writeln!(
        report,
        "\n{:<26} {:>7} {:>9} {:>10} {:>10}",
        "technique", "routes", "stretch", "diversity", "ms/query"
    );
    for r in &rows {
        let _ = writeln!(
            report,
            "{:<26} {:>7.2} {:>9.3} {:>10.3} {:>10.2}",
            r.name, r.routes, r.stretch, r.diversity, r.ms_per_query
        );
    }

    let yen = rows.iter().find(|r| r.name.starts_with("yen")).unwrap();
    let dedicated_min_div = rows
        .iter()
        .filter(|r| !r.name.starts_with("yen") && !r.name.starts_with("pareto"))
        .map(|r| r.diversity)
        .fold(f64::INFINITY, f64::min);
    let _ =
        writeln!(
        report,
        "\nclaim checks:\n  yen diversity ({:.3}) below every dedicated technique (min {:.3}): {}",
        yen.diversity,
        dedicated_min_div,
        if yen.diversity < dedicated_min_div { "YES" } else { "NO" }
    );
    let _ = writeln!(
        report,
        "  yen slower than plateaus: {}",
        if yen.ms_per_query > rows[0].ms_per_query {
            "YES"
        } else {
            "NO"
        }
    );

    println!("{report}");
    let path = arp_bench::write_report("others.txt", &report);
    println!("report written to {}", path.display());
}
