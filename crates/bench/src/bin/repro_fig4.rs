//! Reproduces **Fig. 4**: the data-mismatch case study. The paper found a
//! query where Google's third ("purple") route looks slower than the
//! Plateaus purple route under OpenStreetMap data, yet is *faster* when
//! Google's own data prices both — evidence that the providers disagree
//! because their underlying data differs, not because one is worse.
//!
//! This binary scans queries for exactly that double flip between the
//! Google-like provider (private traffic data) and Plateaus (public OSM
//! data), then prints the four-way cost table for the first hits.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_fig4
//! ```

use std::fmt::Write as _;

use arp_core::prelude::*;
use arp_core::similarity::similarity;
use arp_roadnet::weight::ms_to_minutes_f64;

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;
    let google = GoogleLikeProvider::new(net, arp_bench::MASTER_SEED);
    let query = AltQuery::paper();

    let queries = arp_bench::random_queries(
        net,
        120,
        8 * 60_000,
        60 * 60_000,
        arp_bench::MASTER_SEED ^ 0xF164,
    );

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig. 4 reproduction: routes that flip between data sets ({} candidate queries)",
        queries.len()
    );
    let _ = writeln!(
        report,
        "\n{:>6} {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>9}",
        "s", "t", "G/osm(min)", "P/osm(min)", "G/priv(min)", "P/priv(min)", "overlap"
    );

    let mut flips = 0usize;
    let mut weaker = 0usize;
    for &(s, t, _fast) in &queries {
        let Ok(g_routes) = google.alternatives(net, net.weights(), s, t, &query) else {
            continue;
        };
        let Ok(p_paths) =
            plateau_alternatives(net, net.weights(), s, t, &query, &PlateauOptions::default())
        else {
            continue;
        };
        // Compare the last ("purple") route of each approach, like the
        // paper does; skip queries where either returns fewer than 2.
        let (Some(g_last), Some(p_last)) = (g_routes.last(), p_paths.last()) else {
            continue;
        };
        if g_routes.len() < 2 || p_paths.len() < 2 {
            continue;
        }
        let g_path = &g_last.path;
        let p_path = p_last;
        if g_path.edges == p_path.edges {
            continue; // same purple route, nothing to compare
        }
        let g_osm = g_path.cost_under(net.weights());
        let p_osm = p_path.cost_under(net.weights());
        let g_priv = g_path.cost_under(google.private_weights());
        let p_priv = p_path.cost_under(google.private_weights());

        // The paper's Fig. 4 pattern: Google's route slower on OSM data but
        // faster on Google's data.
        let full_flip = g_osm > p_osm && g_priv < p_priv;
        let one_sided = g_osm > p_osm;
        if one_sided {
            weaker += 1;
        }
        if full_flip && flips < 8 {
            flips += 1;
            let _ = writeln!(
                report,
                "{:>6} {:>6} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>8.0}%",
                s.0,
                t.0,
                ms_to_minutes_f64(g_osm),
                ms_to_minutes_f64(p_osm),
                ms_to_minutes_f64(g_priv),
                ms_to_minutes_f64(p_priv),
                similarity(g_path, p_path, net.weights()) * 100.0
            );
        }
    }

    let _ = writeln!(
        report,
        "\nqueries where the Google-like purple route is slower under OSM data: {weaker}"
    );
    let _ = writeln!(
        report,
        "queries with the full Fig. 4 flip (slower on OSM data AND faster on its own data): {flips} shown (capped at 8)"
    );
    let _ = writeln!(
        report,
        "\nconclusion reproduced (at least one full flip found): {}",
        if flips > 0 { "YES" } else { "NO" }
    );

    println!("{report}");
    let path = arp_bench::write_report("fig4.txt", &report);
    println!("report written to {}", path.display());
}
