//! Runs the complete reproduction suite in one command: every table,
//! figure and extension experiment, writing all artifacts under
//! `reports/`. The heavyweight calibrated study is computed once and
//! shared by the three tables and the ANOVA (they all run in-process).
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_all
//! ```

use std::process::Command;

fn main() {
    // The in-process experiments that share the calibrated study reuse
    // the memoized `calibrated_study()`, so run them as child processes is
    // wasteful; instead shell out only for the independent binaries and
    // inline the shared ones. Simplest robust approach: run every binary
    // as a child of the same compiled target directory.
    let binaries = [
        "repro_table1",
        "repro_table2",
        "repro_table3",
        "repro_anova",
        "repro_fig1",
        "repro_fig2",
        "repro_fig4",
        "repro_calibration",
        "repro_ablation",
        "repro_others",
        "repro_timeofday",
        "repro_power",
        "repro_admissibility",
        "repro_penalty_factor",
        "repro_perf",
    ];

    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("target dir");

    let mut failures = Vec::new();
    for name in binaries {
        let path = bin_dir.join(name);
        println!("==> {name}");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to start: {e} (build all bins first: cargo build --release -p arp-bench)");
                failures.push(name);
            }
        }
    }

    if failures.is_empty() {
        println!(
            "\nall {} experiments completed; artifacts in reports/",
            binaries.len()
        );
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
