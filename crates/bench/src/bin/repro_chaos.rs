//! Chaos drill for the fault-tolerant serving pipeline: sweeps flaky
//! fault rates over two technique lanes on all three study cities and
//! *asserts* the degraded-response ladder holds — availability stays at
//! or above 99% under p = 0.25 lane flakiness, degraded responses are
//! never served from the route cache (repeats self-heal), and an open
//! circuit breaker caps the worker time a dead lane can burn. The report
//! lands in `reports/chaos.txt` and feeds EXPERIMENTS.md; CI fails if it
//! is missing or empty.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_chaos
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use arp_citygen::{City, Scale};
use arp_demo::backend::DemoBackend;
use arp_demo::query::{PreparedQuery, QueryProcessor, SnappedQuery};
use arp_obs::Registry;
use arp_serve::{sites, BreakerConfig, FaultKind, FaultPlan, RouteService, ServeConfig};

/// Distinct queries per city.
const DISTINCT: usize = 12;
/// Times each distinct query is issued in the availability sweep.
const REPEATS: usize = 5;
/// The two technique lanes the flaky faults target; the other two stay
/// healthy, so a 200 with at least their routes is always possible.
const FLAKY_LANES: [&str; 2] = ["google_like", "penalty"];

struct CityFixture {
    name: String,
    processor: Arc<QueryProcessor>,
    queries: Vec<SnappedQuery>,
}

fn fixture(city: City) -> CityFixture {
    let generated = arp_bench::generate_city(city, Scale::Small);
    let name = generated.name.clone();
    let queries =
        arp_bench::random_queries(&generated.network, DISTINCT, 3 * 60_000, 40 * 60_000, 7)
            .into_iter()
            .map(|(s, t, _)| SnappedQuery {
                source: s,
                target: t,
            })
            .collect();
    let processor = Arc::new(QueryProcessor::new(name.clone(), generated.network, 7));
    CityFixture {
        name,
        processor,
        queries,
    }
}

fn flaky_plan(p: f64, seed_base: u64) -> FaultPlan {
    let mut plan = FaultPlan::disabled();
    if p > 0.0 {
        for (i, lane) in FLAKY_LANES.iter().enumerate() {
            plan = plan.with(
                sites::lane(lane),
                FaultKind::Flaky {
                    p,
                    seed: seed_base + i as u64,
                },
            );
        }
    }
    plan
}

fn service(
    fx: &CityFixture,
    config: ServeConfig,
    registry: &Registry,
) -> RouteService<DemoBackend> {
    RouteService::new(
        DemoBackend::new(Arc::clone(&fx.processor)),
        config,
        registry,
    )
}

fn main() {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Chaos drill: flaky faults on lanes {} and {}, release build",
        FLAKY_LANES[0], FLAKY_LANES[1]
    );

    availability_sweep(&mut report);
    degraded_is_never_cached(&mut report);
    breaker_caps_wasted_work(&mut report);
    journal_fault_rejects_without_publishing(&mut report);

    println!("{report}");
    let path = arp_bench::write_report("chaos.txt", &report);
    println!("report written to {}", path.display());
}

/// For each city and fault rate: issue the workload, count healthy /
/// degraded / errored replies, and assert ≥99% availability (a 200 with
/// at least one route) at p ≤ 0.25.
fn availability_sweep(report: &mut String) {
    let _ = writeln!(
        report,
        "\nAvailability sweep ({} requests per rate: {DISTINCT} distinct x {REPEATS})",
        DISTINCT * REPEATS
    );
    for city in [City::Melbourne, City::Dhaka, City::Copenhagen] {
        let fx = fixture(city);
        let _ = writeln!(report, "\n  {}", fx.name);
        let _ = writeln!(
            report,
            "    {:<10} {:>8} {:>10} {:>8} {:>10} {:>10}",
            "flaky p", "healthy", "degraded", "errors", "avail %", "injected"
        );
        for &p in &[0.0, 0.10, 0.25, 0.50] {
            let registry = Registry::new();
            let config = ServeConfig {
                faults: flaky_plan(p, 40),
                ..ServeConfig::default()
            };
            let service = service(&fx, config, &registry);
            let (mut healthy, mut degraded, mut errors, mut with_routes) = (0u64, 0u64, 0u64, 0u64);
            for _ in 0..REPEATS {
                for request in &fx.queries {
                    match service.route(PreparedQuery::new(*request)) {
                        Ok(resp) => {
                            if resp.approaches.iter().any(|a| !a.routes.is_empty()) {
                                with_routes += 1;
                            }
                            if resp.degraded {
                                degraded += 1;
                            } else {
                                healthy += 1;
                            }
                            if p == 0.0 {
                                assert!(
                                    !resp.degraded && resp.lane_status.is_empty(),
                                    "faults disabled must leave the response pristine"
                                );
                            }
                        }
                        Err(_) => errors += 1,
                    }
                }
            }
            let total = (DISTINCT * REPEATS) as u64;
            let availability = with_routes as f64 / total as f64 * 100.0;
            let injected: u64 = FLAKY_LANES
                .iter()
                .map(|lane| {
                    registry.counter_value(
                        "arp_serve_faults_injected_total",
                        &[("site", &sites::lane(lane)), ("kind", "flaky")],
                    )
                })
                .sum();
            let _ = writeln!(
                report,
                "    {:<10.2} {:>8} {:>10} {:>8} {:>9.1}% {:>10}",
                p, healthy, degraded, errors, availability, injected
            );
            if p <= 0.25 {
                assert!(
                    availability >= 99.0,
                    "{}: availability {availability:.1}% under p={p} flakiness",
                    fx.name
                );
            }
        }
    }
}

/// Degraded responses must never land in the route cache: under heavy
/// lane flakiness, repeating a query self-heals (each repeat re-attempts
/// only the lanes that failed; completed lanes come from the cache), and
/// once a query is healthy it stays healthy. A cached degraded response
/// would stay degraded forever.
fn degraded_is_never_cached(report: &mut String) {
    let fx = fixture(City::Melbourne);
    let registry = Registry::new();
    let config = ServeConfig {
        faults: flaky_plan(0.5, 90),
        // Sideline the breakers: a min_volume above the window length can
        // never be met, so heavy flakiness exercises retry + cache
        // semantics without open-circuit cooldowns stalling the repeats.
        breaker: BreakerConfig {
            min_volume: usize::MAX,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let service = service(&fx, config, &registry);

    let mut heal_attempts = Vec::new();
    for request in &fx.queries {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let resp = service
                .route(PreparedQuery::new(*request))
                .expect("two lanes are always healthy");
            if !resp.degraded {
                break;
            }
            assert!(
                attempts < 64,
                "query never healed — a degraded response may have been cached"
            );
        }
        // All four lanes are now cached; the repeat is served healthy
        // from the cache even though the fault plan is still armed.
        let again = service
            .route(PreparedQuery::new(*request))
            .expect("cached repeat");
        assert!(
            !again.degraded,
            "a degraded response was served from the cache"
        );
        heal_attempts.push(attempts);
    }
    let max = heal_attempts.iter().max().copied().unwrap_or(0);
    let mean = heal_attempts.iter().sum::<u32>() as f64 / heal_attempts.len() as f64;
    let _ = writeln!(
        report,
        "\nDegraded-never-cached (Melbourne, flaky p=0.50 on both lanes):\n    \
         every query healthy within {max} repeats (mean {mean:.1}); \
         cached repeats stay healthy with faults still armed"
    );
}

/// With one lane failing on every attempt, the circuit breaker opens
/// after `min_volume` recorded failures and everything after
/// short-circuits: the dead lane consumes no further worker time while
/// the other three techniques keep serving.
fn breaker_caps_wasted_work(report: &mut String) {
    const OUTAGE_REQUESTS: usize = 60;
    let fx = fixture(City::Copenhagen);
    let registry = Registry::new();
    let config = ServeConfig {
        faults: FaultPlan::disabled().with(
            sites::lane("penalty"),
            FaultKind::Error("injected outage".to_string()),
        ),
        breaker: BreakerConfig {
            window: 16,
            min_volume: 4,
            error_rate: 0.5,
            // Longer than the run: once open, the breaker stays open.
            cooldown_ms: 600_000,
        },
        // No route cache, so every request would otherwise re-run the
        // failing lane.
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let service = service(&fx, config, &registry);
    for i in 0..OUTAGE_REQUESTS {
        let resp = service
            .route(PreparedQuery::new(fx.queries[i % fx.queries.len()]))
            .expect("three healthy lanes always serve");
        assert!(
            resp.degraded,
            "the dead lane must mark the response degraded"
        );
        let served = resp
            .approaches
            .iter()
            .filter(|a| !a.routes.is_empty())
            .count();
        assert_eq!(served, 3, "three healthy techniques keep serving");
    }
    let lane = |reason: &str| {
        registry.counter_value(
            "arp_serve_lane_failures_total",
            &[("technique", "penalty"), ("reason", reason)],
        )
    };
    let retries = registry.counter_value(
        "arp_serve_retries_total",
        &[("technique", "penalty"), ("outcome", "failure")],
    );
    let attempts = lane("error") + retries;
    let short_circuited = lane("open_circuit");
    // Every attempt fails, so the breaker opens after min_volume (4)
    // recorded failures — two requests' worth with one retry each. Leave
    // slack for retry accounting, but the bound must stay far below the
    // 60 requests: that gap is the worker time the breaker reclaimed.
    assert!(
        attempts <= 8,
        "breaker let {attempts} attempts through before opening"
    );
    assert!(
        short_circuited >= (OUTAGE_REQUESTS as u64).saturating_sub(8),
        "only {short_circuited} of {OUTAGE_REQUESTS} requests were short-circuited"
    );
    let _ = writeln!(
        report,
        "\nBreaker caps wasted work (Copenhagen, lane.penalty=error, cache off):\n    \
         {OUTAGE_REQUESTS} requests: {attempts} failing attempts reached the worker pool, \
         {short_circuited} short-circuited by the open breaker; all requests served 3/4 techniques"
    );
}

/// Disk-full / EIO during a journal append, modelled by the
/// `journal.append` failpoint: every `POST /api/traffic` answers `503`,
/// the epoch never moves (nothing unjournaled is ever published), every
/// rejection is counted, and the route-serving breaker ladder is
/// untouched — a storage outage on the ingest path must not degrade
/// route serving.
fn journal_fault_rejects_without_publishing(report: &mut String) {
    const ATTEMPTS: usize = 10;
    let generated = arp_bench::generate_city(City::Melbourne, Scale::Small);
    let dir = std::env::temp_dir().join(format!("arp_chaos_journal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let processor = QueryProcessor::new(generated.name.clone(), generated.network, 7)
        .with_traffic_durability(arp_traffic::DurabilityConfig::new(&dir))
        .expect("fresh state dir recovers clean");
    let config = ServeConfig {
        faults: FaultPlan::disabled().with(
            sites::JOURNAL_APPEND.to_string(),
            FaultKind::Error("injected disk full".to_string()),
        ),
        ..ServeConfig::default()
    };
    let app = arp_demo::DemoApp::with_config(processor, config);

    for _ in 0..ATTEMPTS {
        let resp = app.handle("POST", "/api/traffic", "cat:primary*1.5; close:3@2");
        assert_eq!(
            resp.status, 503,
            "append failure must be a 503: {}",
            resp.body
        );
        assert!(resp.retry_after.is_some(), "503 carries a retry hint");
    }
    assert_eq!(
        app.processor.traffic().epoch(),
        0,
        "no epoch may publish without its journal record"
    );
    let injected = app.processor.registry().counter_value(
        "arp_serve_faults_injected_total",
        &[("site", sites::JOURNAL_APPEND), ("kind", "error")],
    );
    assert_eq!(injected as usize, ATTEMPTS, "every rejection is counted");
    // The journal never saw a record: recovery from this directory is a
    // clean start at epoch 0.
    let journal_len = std::fs::metadata(dir.join(arp_traffic::JOURNAL_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    assert_eq!(
        journal_len, 0,
        "a failed append must not leave bytes behind"
    );
    // Route serving is unaffected: health stays ready, breakers closed.
    let health = app.handle("GET", "/api/health", "");
    assert_eq!(health.status, 200, "{}", health.body);
    assert!(
        health.body.contains("\"status\":\"ready\""),
        "{}",
        health.body
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = writeln!(
        report,
        "\nJournal-append fault (Melbourne, journal.append=error, durable state):\n    \
         {ATTEMPTS} delta posts: all 503 with Retry-After, epoch stayed 0, \
         {injected} injections counted, journal empty, serving health ready"
    );
}
