//! Wall-clock performance table (the §2 cost claims) as a text artifact —
//! the same measurements `cargo bench` makes with criterion, condensed
//! into one table per city for EXPERIMENTS.md. Each city also gets an
//! `arp-obs` search-work snapshot (settled nodes, heap pops, relaxed
//! edges per technique); see DESIGN.md §7 for the metric names.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_perf
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use arp_citygen::{City, Scale};
use arp_core::prelude::*;
use arp_core::search::{Direction, SearchSpace};
use arp_core::{ChSearch, ChTopology, ContractionHierarchy};

fn time_per_query(mut f: impl FnMut(), queries: usize, reps: usize) -> f64 {
    // Warm-up round.
    f();
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    started.elapsed().as_secs_f64() * 1000.0 / (reps * queries) as f64
}

fn row(report: &mut String, name: &str, ms: f64) {
    let _ = writeln!(report, "  {name:<26} {ms:>9.3} ms/query");
}

fn row_total(report: &mut String, name: &str, ms: f64, shortcuts: usize) {
    let _ = writeln!(
        report,
        "  {name:<26} {ms:>9.1} ms total ({shortcuts} shortcuts)"
    );
}

/// Total settled nodes recorded across the four technique lanes.
fn total_settled(registry: &arp_obs::Registry) -> u64 {
    ["google_like", "plateaus", "dissimilarity", "penalty"]
        .iter()
        .map(|t| registry.counter_value("arp_search_settled_nodes_total", &[("technique", t)]))
        .sum()
}

fn main() {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Wall-clock per-query timings (ms), 8 queries x 5 reps, release build"
    );
    let mut substrate_lines: Vec<String> = Vec::new();
    let mut ch_lines: Vec<String> = Vec::new();

    for city_kind in City::ALL {
        let city = arp_bench::generate_city(city_kind, Scale::Small);
        let net = city.network;
        let queries = arp_bench::random_queries(&net, 8, 3 * 60_000, 40 * 60_000, 7);
        let q = AltQuery::paper();
        let reps = 5;

        let _ = writeln!(
            report,
            "\n{} ({} nodes, {} edges)",
            city.name,
            net.num_nodes(),
            net.num_edges()
        );

        let mut ws = SearchSpace::new(&net);
        row(
            &mut report,
            "dijkstra 1-to-1",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = ws.shortest_path(&net, net.weights(), s, t);
                    }
                },
                queries.len(),
                reps,
            ),
        );
        let mut ws2 = SearchSpace::new(&net);
        row(
            &mut report,
            "shortest-path tree",
            time_per_query(
                || {
                    for &(s, _, _) in &queries {
                        let _ = ws2.shortest_path_tree(&net, net.weights(), s, Direction::Forward);
                    }
                },
                queries.len(),
                reps,
            ),
        );
        let mut bi = BidirSearch::new(&net);
        row(
            &mut report,
            "bidirectional dijkstra",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = bi.shortest_distance(&net, net.weights(), s, t);
                    }
                },
                queries.len(),
                reps,
            ),
        );
        let ch_build_start = Instant::now();
        let ch = ContractionHierarchy::build(&net, net.weights()).unwrap();
        let ch_build = ch_build_start.elapsed().as_secs_f64() * 1000.0;
        let mut chq = ChSearch::new(&ch);
        row(
            &mut report,
            "CH query",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = chq.distance(&ch, s, t);
                    }
                },
                queries.len(),
                reps,
            ),
        );
        row_total(
            &mut report,
            "CH preprocessing",
            ch_build,
            ch.num_shortcuts(),
        );
        row(
            &mut report,
            "plateaus k=3",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = plateau_alternatives(
                            &net,
                            net.weights(),
                            s,
                            t,
                            &q,
                            &PlateauOptions::default(),
                        );
                    }
                },
                queries.len(),
                reps,
            ),
        );
        row(
            &mut report,
            "penalty k=3",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = penalty_alternatives(
                            &net,
                            net.weights(),
                            s,
                            t,
                            &q,
                            &PenaltyOptions::default(),
                        );
                    }
                },
                queries.len(),
                reps,
            ),
        );
        row(
            &mut report,
            "dissimilarity k=3",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = dissimilarity_alternatives(
                            &net,
                            net.weights(),
                            s,
                            t,
                            &q,
                            &DissimilarityOptions::default(),
                        );
                    }
                },
                queries.len(),
                reps,
            ),
        );
        row(
            &mut report,
            "esx k=3",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ =
                            esx_alternatives(&net, net.weights(), s, t, &q, &EsxOptions::default());
                    }
                },
                queries.len(),
                reps,
            ),
        );
        row(
            &mut report,
            "yen k=3",
            time_per_query(
                || {
                    for &(s, t, _) in &queries {
                        let _ = yen_k_shortest_paths(&net, net.weights(), s, t, 3);
                    }
                },
                queries.len(),
                reps,
            ),
        );

        // Search-work counters: one instrumented pass of the four demo
        // providers over the same queries, into a fresh per-city registry.
        let registry = arp_obs::Registry::new();
        let providers = instrumented_providers(&net, arp_bench::MASTER_SEED, &registry);
        for provider in &providers {
            for &(s, t, _) in &queries {
                let _ = provider.alternatives(&net, net.weights(), s, t, &q);
            }
        }
        let _ = writeln!(report, "  search work over {} queries:", queries.len());
        report.push_str(&arp_bench::metrics_snapshot(&registry));

        // Substrate on/off comparison: total settled nodes per request
        // across the four technique lanes. The "on" column charges the
        // substrate's own two tree builds once per request, exactly as
        // the serving layer accounts them.
        let off_registry = arp_obs::Registry::new();
        let off_providers = instrumented_providers(&net, arp_bench::MASTER_SEED, &off_registry);
        for provider in &off_providers {
            for &(s, t, _) in &queries {
                let _ = provider.alternatives_with_budget(
                    &net,
                    net.weights(),
                    s,
                    t,
                    &q,
                    &SearchBudget::unlimited(),
                );
            }
        }
        let settled_off = total_settled(&off_registry);

        let on_registry = arp_obs::Registry::new();
        let on_providers = instrumented_providers(&net, arp_bench::MASTER_SEED, &on_registry);
        let mut substrate_settled = 0u64;
        for &(s, t, _) in &queries {
            let sub = SearchSubstrate::build(&net, net.weights(), s, t, &SearchBudget::unlimited())
                .expect("benchmark queries are routable");
            substrate_settled += sub.build_stats().settled;
            let ctx = ProviderContext::with_substrate(&sub);
            for provider in &on_providers {
                let _ = provider.alternatives_in_context(
                    &net,
                    net.weights(),
                    s,
                    t,
                    &q,
                    &SearchBudget::unlimited(),
                    &ctx,
                );
            }
        }
        let settled_on = total_settled(&on_registry) + substrate_settled;
        let n_queries = queries.len() as u64;
        let reduction = 100.0 * (1.0 - settled_on as f64 / settled_off as f64);
        substrate_lines.push(format!(
            "  {:<14} {:>12} {:>12} {:>11.1}%",
            city.name,
            settled_off / n_queries,
            settled_on / n_queries,
            reduction
        ));

        // CH index tier on/off: the same substrate (two trees + base
        // route), built by two full Dijkstras versus by the customized
        // CH (bidirectional upward search + two PHAST sweeps). Outputs
        // are byte-identical, so this isolates the build cost — the
        // serving layer's fast path when the epoch's metric is ready.
        let topo_start = Instant::now();
        let topo = ChTopology::build(&net);
        let topo_ms = topo_start.elapsed().as_secs_f64() * 1000.0;
        let _ = writeln!(
            report,
            "  {:<26} {topo_ms:>9.1} ms total ({} arcs, {} triangles)",
            "CCH topology build",
            topo.num_arcs(),
            topo.num_triangles()
        );
        let customize_start = Instant::now();
        let metric = topo
            .customize(&net, net.weights())
            .expect("base column customizes");
        let customize_ms = customize_start.elapsed().as_secs_f64() * 1000.0;
        let _ = writeln!(
            report,
            "  {:<26} {customize_ms:>9.1} ms total (per-epoch cost)",
            "CCH customization"
        );

        let budget = SearchBudget::unlimited();
        let mut build_settled_off = 0u64;
        let mut build_settled_on = 0u64;
        for &(s, t, _) in &queries {
            build_settled_off += SearchSubstrate::build(&net, net.weights(), s, t, &budget)
                .expect("benchmark queries are routable")
                .build_stats()
                .settled;
            build_settled_on +=
                SearchSubstrate::build_with_ch(&net, net.weights(), &topo, &metric, s, t, &budget)
                    .expect("benchmark queries are routable")
                    .build_stats()
                    .settled;
        }
        let build_off_ms = time_per_query(
            || {
                for &(s, t, _) in &queries {
                    let _ = SearchSubstrate::build(&net, net.weights(), s, t, &budget);
                }
            },
            queries.len(),
            reps,
        );
        let build_on_ms = time_per_query(
            || {
                for &(s, t, _) in &queries {
                    let _ = SearchSubstrate::build_with_ch(
                        &net,
                        net.weights(),
                        &topo,
                        &metric,
                        s,
                        t,
                        &budget,
                    );
                }
            },
            queries.len(),
            reps,
        );
        ch_lines.push(format!(
            "  {:<14} {:>12} {:>12} {:>10.1}x {:>9.3} {:>9.3}",
            city.name,
            build_settled_off / n_queries,
            build_settled_on / n_queries,
            build_settled_off as f64 / build_settled_on as f64,
            build_off_ms,
            build_on_ms,
        ));
    }

    let _ = writeln!(
        report,
        "\nSubstrate on/off sweep (settled nodes per request, four lanes; \
         'on' includes the shared build):"
    );
    let _ = writeln!(
        report,
        "  {:<14} {:>12} {:>12} {:>12}",
        "city", "off", "on", "reduction"
    );
    for line in &substrate_lines {
        let _ = writeln!(report, "{line}");
    }

    let _ = writeln!(
        report,
        "\nCH index tier on/off sweep (substrate build: settled nodes and ms \
         per request; identical output bytes):"
    );
    let _ = writeln!(
        report,
        "  {:<14} {:>12} {:>12} {:>11} {:>9} {:>9}",
        "city", "dijkstra", "ch-tier", "settled-x", "off-ms", "on-ms"
    );
    for line in &ch_lines {
        let _ = writeln!(report, "{line}");
    }

    println!("{report}");
    let path = arp_bench::write_report("perf.txt", &report);
    println!("report written to {}", path.display());
}
