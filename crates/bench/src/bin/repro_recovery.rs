//! Crash-recovery equivalence drill for the durable traffic state: on
//! all three study cities, drive a reference run through a mixed
//! delta/tick schedule, then crash it at random points — a byte-level
//! truncation of the write-ahead journal, roughly a third of them mid-
//! record (a torn tail) — and *assert* that the recovered process serves
//! byte-identical routes: the weight state replays epoch for epoch, the
//! recovered epoch's routes match the reference's routes at that epoch,
//! and driving the remaining schedule lands on the reference's final
//! routes exactly. A per-city quarantine drill additionally flips a bit
//! mid-journal (with a snapshot present) and asserts the state degrades
//! to the snapshot epoch instead of refusing to start.
//!
//! The report lands in `reports/recovery.txt`; CI fails on any route
//! mismatch or if fewer than 20 crash points ran.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_recovery
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use arp_citygen::{City, Scale};
use arp_core::SearchBudget;
use arp_demo::query::{QueryProcessor, SnappedQuery};
use arp_roadnet::csr::RoadNetwork;
use arp_traffic::{
    CityProfile, DurabilityConfig, RecoveryStatus, TrafficDelta, TrafficFeed, JOURNAL_FILE,
};

/// Random byte-level crash points per city (3 cities → 21, plus one
/// quarantine drill each → 24 total; CI gates on ≥ 20).
const CRASH_POINTS_PER_CITY: usize = 7;
/// Route-comparison query pairs per city.
const PAIRS: usize = 2;
/// Seed for the crash-point positions.
const MASTER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The event schedule every run replays: `Some(delta)` is an operator
/// delta through the ingest path, `None` a feed tick. Mixes category and
/// edge factors, relative-TTL closures (expiring mid-history), an
/// absolute-expiry closure, a reopen, a factor removal and a `clear` so
/// the journal exercises every op the grammar has.
fn schedule() -> Vec<Option<&'static str>> {
    vec![
        Some("cat:primary*1.4"),
        None,
        None,
        Some("close:7@2; edge:11*1.8"),
        None,
        None,
        None,
        Some("close:13@@9"),
        None,
        None,
        Some("cat:residential*1.6; close:21@5"),
        None,
        None,
        None,
        None,
        Some("reopen:21; edge:11*1.2"),
        None,
        None,
        Some("cat:primary*1.1; edge:33*2.0"),
        None,
        None,
        None,
        Some("close:5"),
        None,
        None,
        Some("edge:33*1.0; cat:residential*1.3"),
        None,
        None,
        None,
        None,
    ]
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A byte-exact signature of the routes all four techniques serve for
/// the comparison pairs under the processor's *current* traffic epoch:
/// per approach, every route's exact cost and full edge sequence. Two
/// states are route-equivalent iff their signatures are equal.
fn route_signature(processor: &QueryProcessor, pairs: &[SnappedQuery]) -> String {
    let mut sig = String::new();
    for pair in pairs {
        let prepared = processor.prepare_query(*pair);
        for slot in 0..processor.technique_slots() {
            match processor.compute_slot_prepared(&prepared, slot, &SearchBudget::unlimited()) {
                Ok((approach, _)) => {
                    let _ = write!(sig, "{}:", approach.label);
                    for route in &approach.routes {
                        let _ = write!(sig, "{}|{:?};", route.cost_ms, route.edges);
                    }
                }
                // A closure may disconnect a pair mid-history; the error
                // is part of the signature and must reproduce too.
                Err(e) => {
                    let _ = write!(sig, "{}:ERR {e};", processor.slot_label(slot));
                }
            }
        }
        sig.push('\n');
    }
    sig
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arp_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_processor(
    name: &str,
    net: &RoadNetwork,
    dir: &Path,
) -> (QueryProcessor, arp_traffic::RecoveryReport) {
    let mut config = DurabilityConfig::new(dir);
    // Keep the whole history in the journal so a byte cut can land on
    // any record; the quarantine drill flushes its own snapshot.
    config.snapshot_every = 0;
    let processor = QueryProcessor::new(name.to_string(), net.clone(), 7)
        .with_traffic_durability(config)
        .expect("recovery never refuses to start");
    let report = processor
        .recovery_report()
        .expect("durability enabled")
        .clone();
    (processor, report)
}

/// Applies event `i` of the schedule to a processor's traffic state.
fn apply_event(processor: &QueryProcessor, feed: &TrafficFeed, event: Option<&str>) {
    match event {
        Some(delta) => {
            processor
                .traffic()
                .apply_delta(&TrafficDelta::parse(delta).unwrap())
                .expect("schedule deltas are valid");
        }
        None => {
            processor.traffic().advance_tick(feed).expect("tick");
        }
    }
}

struct CityOutcome {
    name: String,
    crash_points: usize,
    torn: usize,
    mismatches: usize,
    quarantine_ok: bool,
}

fn drill_city(city: City, seed_lane: u64) -> CityOutcome {
    let generated = arp_bench::generate_city(city, Scale::Small);
    let name = generated.name.clone();
    let net = generated.network;
    let feed = TrafficFeed::new(11, CityProfile::for_city_name(&name));
    let pairs: Vec<SnappedQuery> =
        arp_bench::random_queries(&net, PAIRS, 3 * 60_000, 40 * 60_000, 7)
            .into_iter()
            .map(|(s, t, _)| SnappedQuery {
                source: s,
                target: t,
            })
            .collect();
    let events = schedule();

    // Reference run: never crashes, journals everything, and records the
    // route signature at every epoch (epoch e = first e events applied).
    let ref_dir = temp_dir(&format!("{name}_ref"));
    let (reference, report) = durable_processor(&name, &net, &ref_dir);
    assert_eq!(report.status, RecoveryStatus::Clean, "{report:?}");
    let mut ref_sigs = vec![route_signature(&reference, &pairs)];
    for event in &events {
        apply_event(&reference, &feed, *event);
        ref_sigs.push(route_signature(&reference, &pairs));
    }
    assert_eq!(reference.traffic().epoch() as usize, events.len());
    let journal = std::fs::read(ref_dir.join(JOURNAL_FILE)).unwrap();
    drop(reference);

    // The journal's record boundaries (offset = record start), from the
    // length prefixes: a cut exactly here is a clean prefix, anywhere
    // else a torn tail.
    let mut boundaries = Vec::new();
    let mut offset = 0usize;
    while offset + 8 <= journal.len() {
        let len = u32::from_le_bytes(journal[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
        boundaries.push(offset.min(journal.len()));
    }

    // Kill-at-random-record: cut the journal at a random byte — every
    // third point exactly at a record boundary (a clean prefix), the
    // rest anywhere (almost always mid-record, a torn tail) — recover,
    // and demand byte-identical routes at the recovered epoch AND after
    // driving the remaining schedule to the end.
    let mut rng = MASTER_SEED ^ seed_lane;
    let (mut torn, mut mismatches) = (0usize, 0usize);
    for point in 0..CRASH_POINTS_PER_CITY {
        let cut = if point % 3 == 2 {
            boundaries[(splitmix64(&mut rng) as usize) % boundaries.len()]
        } else {
            1 + (splitmix64(&mut rng) as usize) % journal.len()
        };
        let dir = temp_dir(&format!("{name}_crash{point}"));
        std::fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).unwrap();

        let (recovered, report) = durable_processor(&name, &net, &dir);
        assert!(
            report.quarantined.is_empty(),
            "a truncation is a torn tail, never a quarantine: {report:?}"
        );
        if report.torn_tails > 0 {
            torn += 1;
        }
        let epoch = report.epoch as usize;
        assert!(epoch <= events.len(), "{report:?}");
        if route_signature(&recovered, &pairs) != ref_sigs[epoch] {
            eprintln!("{name} crash point {point}: route mismatch at recovered epoch {epoch}");
            mismatches += 1;
        }
        // The crashed-and-recovered process must now evolve exactly like
        // the process that never crashed.
        for event in &events[epoch..] {
            apply_event(&recovered, &feed, *event);
        }
        if route_signature(&recovered, &pairs) != ref_sigs[events.len()] {
            eprintln!("{name} crash point {point}: route mismatch after replaying the rest");
            mismatches += 1;
        }
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Quarantine drill: snapshot at epoch k, journal for the rest, then
    // a bit flipped mid-journal. Recovery must quarantine the journal,
    // fall back to the snapshot epoch's exact routes, report Degraded,
    // and keep serving.
    let k = events.len() - 6;
    let dir = temp_dir(&format!("{name}_quarantine"));
    let (victim, _) = durable_processor(&name, &net, &dir);
    for event in &events[..k] {
        apply_event(&victim, &feed, *event);
    }
    assert!(victim.traffic().flush_snapshot().unwrap());
    for event in &events[k..] {
        apply_event(&victim, &feed, *event);
    }
    drop(victim);
    let journal_path = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal_path).unwrap();
    bytes[10] ^= 0x10; // inside the first record's payload, mid-file
    std::fs::write(&journal_path, &bytes).unwrap();

    let (degraded, report) = durable_processor(&name, &net, &dir);
    let quarantine_ok = report.status == RecoveryStatus::Degraded
        && !report.quarantined.is_empty()
        && report.epoch as usize == k
        && route_signature(&degraded, &pairs) == ref_sigs[k]
        && degraded
            .traffic()
            .apply_delta(&TrafficDelta::parse("cat:primary*1.2").unwrap())
            .is_ok();
    if !quarantine_ok {
        eprintln!("{name} quarantine drill failed: {report:?}");
    }
    drop(degraded);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);

    CityOutcome {
        name,
        crash_points: CRASH_POINTS_PER_CITY + 1,
        torn,
        mismatches: mismatches + usize::from(!quarantine_ok),
        quarantine_ok,
    }
}

fn main() {
    let events = schedule();
    let ticks = events.iter().filter(|e| e.is_none()).count();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Crash-recovery equivalence: {} events per run ({} deltas, {ticks} ticks), \
         {CRASH_POINTS_PER_CITY} random journal cuts + 1 quarantine drill per city, \
         {PAIRS} query pairs x 4 techniques compared byte for byte",
        events.len(),
        events.len() - ticks,
    );

    let mut total_points = 0usize;
    let mut total_mismatches = 0usize;
    for (lane, city) in [City::Melbourne, City::Dhaka, City::Copenhagen]
        .into_iter()
        .enumerate()
    {
        let outcome = drill_city(city, lane as u64 + 1);
        let _ =
            writeln!(
            report,
            "  {:<12} {} crash points ({} torn tails), {} route mismatches, quarantine drill {}",
            outcome.name,
            outcome.crash_points,
            outcome.torn,
            outcome.mismatches,
            if outcome.quarantine_ok { "ok" } else { "FAILED" },
        );
        total_points += outcome.crash_points;
        total_mismatches += outcome.mismatches;
    }
    let _ = writeln!(
        report,
        "\ntotal: {total_points} crash points across 3 cities, {total_mismatches} route mismatches"
    );

    println!("{report}");
    let path = arp_bench::write_report("recovery.txt", &report);
    println!("report written to {}", path.display());

    assert!(
        total_points >= 20,
        "need at least 20 crash points, ran {total_points}"
    );
    assert_eq!(
        total_mismatches, 0,
        "crash recovery diverged from the reference"
    );
}
