//! Power analysis of the study design — quantifying the paper's own
//! caution ("we recommend the readers to interpret these results with
//! caution"): at the observed effect sizes, what was the probability the
//! n = 237 study would detect a real difference, and how many responses
//! would 80 % power have required?
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_power
//! ```

use std::fmt::Write as _;

use arp_userstudy::power::{required_n, simulate_power, PowerDesign};

fn main() {
    let design = PowerDesign::paper_observed();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Monte-Carlo power analysis of the one-way ANOVA design\n\
         effect: means {:?}, sd {:.2}, alpha {:.2}, {} simulations/point",
        design.means, design.sd, design.alpha, design.simulations
    );

    let _ = writeln!(report, "\n{:>12} {:>10}", "n per group", "power");
    for &n in &[50usize, 100, 237, 500, 1_000, 2_000, 4_000] {
        let p = simulate_power(&design, n, arp_bench::MASTER_SEED ^ n as u64);
        let _ = writeln!(report, "{n:>12} {p:>10.2}");
    }

    let at_paper_n = simulate_power(&design, 237, arp_bench::MASTER_SEED);
    let needed = required_n(&design, 0.8, 50_000, arp_bench::MASTER_SEED);
    let _ = writeln!(
        report,
        "\npower at the paper's n = 237: {at_paper_n:.2} (conventional target: 0.80)"
    );
    match needed {
        Some(n) => {
            let _ = writeln!(
                report,
                "approximate n per group for 80% power: {n} (~{}x the study size)",
                (n as f64 / 237.0).round()
            );
        }
        None => {
            let _ = writeln!(report, "80% power not reachable below n = 50,000");
        }
    }
    let _ = writeln!(
        report,
        "\nconclusion: at the observed effect sizes the study was underpowered,\n\
         which is consistent with — and explains — the non-significant ANOVA;\n\
         the paper's caution about interpreting the ratings is warranted."
    );

    println!("{report}");
    let path = arp_bench::write_report("power.txt", &report);
    println!("report written to {}", path.display());
}
