//! Why the paper queries Google's API **at 3 am** (§4.2): "To minimize
//! the impact of real-time traffic … we call Google Maps API to retrieve
//! the routes at 3:00 am on the next day (assuming minimal traffic on
//! roads at that time)."
//!
//! This experiment sweeps the time of day the commercial provider's data
//! represents and measures how much its recommendations disagree with the
//! OSM-weight optimum: the mismatch rate and the wasted time of its first
//! route under public pricing. At 3 am the disagreement is smallest —
//! validating the paper's protocol choice — and at peak hour the
//! data-source confound would have dominated the study.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_timeofday
//! ```

use std::fmt::Write as _;

use arp_core::prelude::*;
use arp_core::provider::TrafficModel;

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;
    let queries = arp_bench::random_queries(
        net,
        60,
        8 * 60_000,
        50 * 60_000,
        arp_bench::MASTER_SEED ^ 0x703A,
    );
    let q = AltQuery::paper();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Time-of-day sweep: commercial provider vs OSM optimum over {} queries",
        queries.len()
    );
    let _ = writeln!(
        report,
        "\n{:>6} {:>11} {:>14} {:>18}",
        "hour", "congestion", "mismatch-rate", "mean first-route"
    );
    let _ = writeln!(
        report,
        "{:>6} {:>11} {:>14} {:>18}",
        "", "", "(%)", "excess (%)"
    );

    let mut best_hour = (0.0f64, f64::INFINITY);
    for &hour in &[3.0f64, 6.0, 8.0, 11.0, 14.0, 17.0, 20.0, 23.0] {
        let model = TrafficModel::at_hour(arp_bench::MASTER_SEED, hour);
        let provider = GoogleLikeProvider::with_model(net, model);
        let mut mismatches = 0usize;
        let mut excess_sum = 0.0;
        let mut n = 0usize;
        for &(s, t, best) in &queries {
            let Ok(routes) = provider.alternatives(net, net.weights(), s, t, &q) else {
                continue;
            };
            let Some(first) = routes.first() else {
                continue;
            };
            n += 1;
            if first.public_cost_ms > best {
                mismatches += 1;
            }
            excess_sum += (first.public_cost_ms as f64 / best as f64 - 1.0) * 100.0;
        }
        let rate = mismatches as f64 / n.max(1) as f64 * 100.0;
        let excess = excess_sum / n.max(1) as f64;
        if excess < best_hour.1 {
            best_hour = (hour, excess);
        }
        let _ = writeln!(
            report,
            "{:>6.0} {:>11.2} {:>14.0} {:>18.2}",
            hour, model.congestion, rate, excess
        );
    }

    let _ = writeln!(
        report,
        "\nleast-disagreement hour: {:.0}:00 (paper queries at 3:00) — protocol validated: {}",
        best_hour.0,
        if (best_hour.0 - 3.0).abs() < 3.5 || best_hour.0 >= 22.0 {
            "YES"
        } else {
            "NO"
        }
    );

    println!("{report}");
    let path = arp_bench::write_report("timeofday.txt", &report);
    println!("report written to {}", path.display());
}
