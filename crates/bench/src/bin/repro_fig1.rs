//! Reproduces **Fig. 1**: the plateau construction. Grows the forward and
//! backward shortest-path trees for one long-distance query, joins them,
//! lists the most prominent plateaus (Fig. 1c) and the alternative paths
//! built from the top-5 plateaus (Fig. 1d).
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_fig1
//! ```

use std::fmt::Write as _;

use arp_core::plateau::find_plateaus;
use arp_core::search::{Direction, SearchSpace};
use arp_core::Path;
use arp_roadnet::weight::{ms_to_display_minutes, INFINITY};

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;

    // One long query, like Cambridge -> Manchester in the paper's figure.
    let queries =
        arp_bench::random_queries(net, 1, 25 * 60_000, 80 * 60_000, arp_bench::MASTER_SEED);
    let &(s, t, fastest) = queries
        .first()
        .expect("a long query exists at Medium scale");

    let mut ws = SearchSpace::new(net);
    let fwd = ws
        .shortest_path_tree(net, net.weights(), s, Direction::Forward)
        .unwrap();
    let bwd = ws
        .shortest_path_tree(net, net.weights(), t, Direction::Backward)
        .unwrap();

    let mut report = String::new();
    let reached_f = fwd.dist.iter().filter(|&&d| d != INFINITY).count();
    let reached_b = bwd.dist.iter().filter(|&&d| d != INFINITY).count();
    let _ = writeln!(report, "Fig. 1 reproduction: plateaus for {s} -> {t}");
    let _ = writeln!(
        report,
        "  fastest path: {} min",
        ms_to_display_minutes(fastest)
    );
    let _ = writeln!(
        report,
        "  (a) forward tree T_f reaches {reached_f} vertices"
    );
    let _ = writeln!(
        report,
        "  (b) backward tree T_b reaches {reached_b} vertices"
    );

    let mut plateaus = find_plateaus(net, &fwd, &bwd);
    plateaus.sort_by_key(|p| std::cmp::Reverse(p.weight_ms));
    let _ = writeln!(
        report,
        "  (c) {} plateaus found; ten most prominent:",
        plateaus.len()
    );
    let _ = writeln!(
        report,
        "      {:>4} {:>12} {:>10} {:>12} {:>12}",
        "#", "plateau(min)", "edges", "via(min)", "stretch"
    );
    for (i, pl) in plateaus.iter().take(10).enumerate() {
        let _ = writeln!(
            report,
            "      {:>4} {:>12.1} {:>10} {:>12} {:>12.3}",
            i + 1,
            pl.weight_ms as f64 / 60_000.0,
            pl.edges.len(),
            ms_to_display_minutes(pl.via_cost_ms),
            pl.via_cost_ms as f64 / fastest as f64
        );
    }

    // (d) the five alternative paths from the five longest plateaus.
    let _ = writeln!(report, "  (d) alternative paths from the top-5 plateaus:");
    for (i, pl) in plateaus.iter().take(5).enumerate() {
        let Some(prefix) = fwd.path_edges(net, pl.start) else {
            continue;
        };
        let Some(suffix) = bwd.path_edges(net, pl.end) else {
            continue;
        };
        let mut edges = prefix;
        edges.extend_from_slice(&pl.edges);
        edges.extend_from_slice(&suffix);
        let path = Path::from_edges(net, net.weights(), edges);
        let _ = writeln!(
            report,
            "      path {}: {:>3} min, {:>5.1} km, {} vertices, simple: {}",
            i + 1,
            ms_to_display_minutes(path.cost_ms),
            path.length_m(net) / 1000.0,
            path.nodes.len(),
            path.is_simple()
        );
    }

    // Sanity line mirroring the paper's claim: the longest plateau is the
    // shortest path itself.
    let top = &plateaus[0];
    let _ = writeln!(
        report,
        "\nclaim check — longest plateau spans the optimal route: {}",
        top.via_cost_ms == fastest && top.start == s && top.end == t
    );

    println!("{report}");
    let path = arp_bench::write_report("fig1.txt", &report);
    println!("report written to {}", path.display());
}
