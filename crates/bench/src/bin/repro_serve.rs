//! Serving-layer throughput/latency table: queries per second and
//! p50/p99 latency of the `arp-serve` pipeline for 1/4/8 workers with the
//! route cache on and off, under a concurrent mixed workload of repeated
//! and unique queries — plus a deadline sweep that *asserts* cooperative
//! cancellation reclaims worker time compared to lanes that ignore the
//! cancel token. The report lands in `reports/serve.txt` and feeds
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_serve
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arp_citygen::Scale;
use arp_demo::backend::DemoBackend;
use arp_demo::query::{PreparedQuery, QueryProcessor, SnappedQuery};
use arp_obs::Registry;
use arp_serve::{CancelToken, LaneError, LaneOutcome, RouteBackend, RouteService, ServeConfig};

/// Client threads issuing requests concurrently.
const CLIENTS: usize = 4;
/// Distinct queries in the workload.
const DISTINCT: usize = 16;
/// Times each distinct query is issued (mixed/interleaved).
const REPEATS: usize = 6;

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let index = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[index]
}

fn main() {
    let city = arp_bench::generate_city(arp_citygen::City::Melbourne, Scale::Small);
    let name = city.name.clone();
    let queries = arp_bench::random_queries(&city.network, DISTINCT, 3 * 60_000, 40 * 60_000, 11);
    let processor = Arc::new(QueryProcessor::new(name.clone(), city.network, 11));

    // The request sequence interleaves the distinct queries so repeats are
    // spread across the run (and across client threads).
    let requests: Vec<SnappedQuery> = (0..DISTINCT * REPEATS)
        .map(|i| {
            let (s, t, _) = queries[i % DISTINCT];
            SnappedQuery {
                source: s,
                target: t,
            }
        })
        .collect();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Serving-layer throughput, {name}: {} requests ({DISTINCT} distinct x {REPEATS}), {CLIENTS} client threads, release build",
        requests.len()
    );
    let _ = writeln!(
        report,
        "\n  {:<22} {:>9} {:>10} {:>10} {:>10}",
        "configuration", "qps", "p50 ms", "p99 ms", "hit rate"
    );

    for &workers in &[1usize, 4, 8] {
        for &cache_on in &[false, true] {
            let registry = Registry::new();
            let config = ServeConfig {
                workers,
                queue_capacity: 64,
                max_inflight: 64,
                cache_capacity: if cache_on { 4096 } else { 0 },
                ..ServeConfig::default()
            };
            let service = Arc::new(RouteService::new(
                DemoBackend::new(Arc::clone(&processor)),
                config,
                &registry,
            ));

            let started = Instant::now();
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let service = Arc::clone(&service);
                    let requests = requests.clone();
                    std::thread::spawn(move || {
                        let mut latencies_ms = Vec::new();
                        for request in requests.iter().skip(client).step_by(CLIENTS) {
                            let t0 = Instant::now();
                            service
                                .route(PreparedQuery::new(*request))
                                .expect("route request");
                            latencies_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
                        }
                        latencies_ms
                    })
                })
                .collect();
            let mut latencies_ms: Vec<f64> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect();
            let wall_s = started.elapsed().as_secs_f64();
            latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));

            let hits = registry.counter_value("arp_serve_cache_hits_total", &[]);
            let misses = registry.counter_value("arp_serve_cache_misses_total", &[]);
            let hit_rate = if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            };
            let _ = writeln!(
                report,
                "  {:<22} {:>9.1} {:>10.2} {:>10.2} {:>9.0}%",
                format!(
                    "{workers} workers, cache {}",
                    if cache_on { "on" } else { "off" }
                ),
                latencies_ms.len() as f64 / wall_s,
                percentile(&latencies_ms, 0.50),
                percentile(&latencies_ms, 0.99),
                hit_rate * 100.0,
            );
        }
    }

    deadline_sweep(&mut report);

    println!("{report}");
    let path = arp_bench::write_report("serve.txt", &report);
    println!("report written to {}", path.display());
}

/// A synthetic backend whose four lanes each spin for a fixed duration in
/// 1 ms slices, accumulating the wall time every lane actually burned
/// into a shared counter. Cooperative lanes poll the cancel token each
/// slice; non-cooperative lanes ignore it and always run to completion.
struct SpinBackend {
    cooperative: bool,
    work: Duration,
    busy_ns: Arc<AtomicU64>,
}

impl RouteBackend for SpinBackend {
    type Request = u32;
    type Part = ();
    type Response = bool;

    fn lanes(&self) -> usize {
        4
    }

    fn lane_key(&self, request: &u32, lane: usize) -> String {
        format!("spin:{request}:{lane}")
    }

    fn compute(&self, _request: &u32, _lane: usize) -> Result<(), String> {
        std::thread::sleep(self.work);
        Ok(())
    }

    fn assemble(&self, _request: &u32, _parts: Vec<()>) -> bool {
        false
    }

    fn compute_cancellable(
        &self,
        _request: &u32,
        _lane: usize,
        token: &CancelToken,
    ) -> Result<LaneOutcome<()>, LaneError> {
        let start = Instant::now();
        while start.elapsed() < self.work {
            if self.cooperative && token.is_cancelled() {
                self.busy_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return Ok(LaneOutcome::Truncated(()));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(LaneOutcome::Complete(()))
    }

    fn assemble_partial(&self, _request: &u32, parts: Vec<Option<()>>) -> Option<bool> {
        parts.iter().any(Option::is_some).then_some(true)
    }
}

/// Runs the same over-deadline workload against cooperative and
/// non-cooperative lanes and asserts that cancellation reclaims worker
/// time — the whole point of threading a budget through the searches.
fn deadline_sweep(report: &mut String) {
    const SWEEP_REQUESTS: u32 = 8;
    let work = Duration::from_millis(60);
    let deadline = Duration::from_millis(12);

    let mut busy_s = [0.0f64; 2];
    for (index, cooperative) in [false, true].into_iter().enumerate() {
        let busy_ns = Arc::new(AtomicU64::new(0));
        let config = ServeConfig {
            workers: 4,
            cache_capacity: 0,
            deadline,
            cancel_grace: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let service = RouteService::new(
            SpinBackend {
                cooperative,
                work,
                busy_ns: Arc::clone(&busy_ns),
            },
            config,
            &registry,
        );
        for request in 0..SWEEP_REQUESTS {
            // Over-deadline requests answer truncated (cooperative) or
            // late-but-collected (non-cooperative); neither is a failure
            // the sweep cares about.
            let _ = service.route(request);
        }
        // Join the workers so every lane's busy time is accounted for.
        service.shutdown();
        busy_s[index] = busy_ns.load(Ordering::Relaxed) as f64 / 1e9;
    }

    let [ignored_s, cooperative_s] = busy_s;
    let reclaimed = 100.0 * (1.0 - cooperative_s / ignored_s);
    let _ = writeln!(
        report,
        "\nDeadline sweep: {SWEEP_REQUESTS} requests, 4 lanes x {} ms synthetic work, {} ms deadline",
        work.as_millis(),
        deadline.as_millis()
    );
    let _ = writeln!(
        report,
        "  lanes ignoring the cancel token burned {ignored_s:.2} worker-seconds"
    );
    let _ = writeln!(
        report,
        "  cooperative lanes burned {cooperative_s:.2} worker-seconds ({reclaimed:.0}% reclaimed)"
    );
    assert!(
        cooperative_s < ignored_s * 0.5,
        "cooperative cancellation must reclaim worker time: \
         {cooperative_s:.2}s cooperative vs {ignored_s:.2}s ignored"
    );
}
