//! Admissibility evaluation in the sense of Abraham et al. \[2\] — the
//! paper's theoretical reference for alternative quality. For every
//! technique, what fraction of its alternatives (routes after the first)
//! pass the (γ, T, ε) admissibility test: limited sharing with the
//! optimum, local optimality, uniformly bounded stretch?
//!
//! Reference \[2\] proves plateau paths are locally optimal; the measured
//! table quantifies how the heuristics (Penalty, SSVP-D+, the commercial
//! provider) compare on the same formal yardstick.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_admissibility
//! ```

use std::fmt::Write as _;

use arp_core::admissibility::{admissibility, AdmissibilityCriteria};
use arp_core::prelude::*;

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;
    let queries = arp_bench::random_queries(
        net,
        30,
        8 * 60_000,
        45 * 60_000,
        arp_bench::MASTER_SEED ^ 0xAD15,
    );
    let q = AltQuery::paper();
    let criteria = AdmissibilityCriteria::default();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Admissibility (Abraham et al. [2]) over {} queries on {}: gamma={}, T={}·OPT, UBS eps={}",
        queries.len(),
        city.name,
        criteria.gamma,
        criteria.t_fraction,
        criteria.epsilon_ubs
    );
    let _ = writeln!(
        report,
        "\n{:<26} {:>6} {:>12} {:>12} {:>8} {:>12}",
        "technique", "alts", "sharing-ok", "locally-opt", "ubs-ok", "admissible"
    );

    for provider in standard_providers(net, arp_bench::MASTER_SEED) {
        let mut alts = 0usize;
        let mut sharing_ok = 0usize;
        let mut lo_ok = 0usize;
        let mut ubs_ok = 0usize;
        let mut admissible = 0usize;
        for &(s, t, _) in &queries {
            let Ok(routes) = provider.alternatives(net, net.weights(), s, t, &q) else {
                continue;
            };
            if routes.len() < 2 {
                continue;
            }
            // The optimum is the public shortest path, not necessarily the
            // provider's first route (the Google-like provider may differ).
            let Ok(opt) = shortest_path(net, net.weights(), s, t) else {
                continue;
            };
            for r in routes.iter().skip(1) {
                let rep = admissibility(net, net.weights(), &r.path, &opt, &criteria);
                alts += 1;
                sharing_ok += rep.sharing_ok as usize;
                lo_ok += rep.locally_optimal as usize;
                ubs_ok += rep.ubs_ok as usize;
                admissible += rep.admissible() as usize;
            }
        }
        let pct = |x: usize| x as f64 / alts.max(1) as f64 * 100.0;
        let _ = writeln!(
            report,
            "{:<26} {:>6} {:>11.0}% {:>11.0}% {:>7.0}% {:>11.0}%",
            provider.kind().to_string(),
            alts,
            pct(sharing_ok),
            pct(lo_ok),
            pct(ubs_ok),
            pct(admissible)
        );
    }

    let _ = writeln!(
        report,
        "\nclaim check ([2]): plateau alternatives are locally optimal by construction,\n\
         so Plateaus should lead the locally-opt column."
    );

    println!("{report}");
    let path = arp_bench::write_report("admissibility.txt", &report);
    println!("report written to {}", path.display());
}
