//! Reproduces the §4.1 one-way ANOVA: p-values for all respondents
//! (paper: 0.16), residents (0.68) and non-residents (0.18) — the paper's
//! headline finding that no approach is significantly better rated.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_anova
//! ```

use std::fmt::Write as _;

use arp_userstudy::posthoc::{kruskal_wallis, pairwise_welch};
use arp_userstudy::tables::{anova_report, render_anova};

fn main() {
    let (outcome, _) = arp_bench::calibrated_study();
    let report = anova_report(outcome);
    let mut text = render_anova(&report);

    // Post-hoc checks beyond the paper: Kruskal–Wallis (proper for
    // ordinal Likert data) and Bonferroni-adjusted pairwise Welch tests —
    // both should agree with the ANOVA's non-significance.
    let groups: Vec<Vec<f64>> = (0..4).map(|a| outcome.ratings_of(a, None, None)).collect();
    let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
    if let Some(kw) = kruskal_wallis(&refs) {
        let _ = writeln!(
            text,
            "\nKruskal-Wallis (all respondents): H({:.0}) = {:.3}, p = {:.3}, significant at 0.05: {}",
            kw.df,
            kw.h,
            kw.p_value,
            if kw.p_value < 0.05 { "yes" } else { "no" }
        );
    }
    let names = arp_userstudy::paper::APPROACHES;
    let _ = writeln!(text, "\nPairwise Welch t-tests (Bonferroni-adjusted):");
    for c in pairwise_welch(&refs) {
        let _ = writeln!(
            text,
            "  {:<13} vs {:<13} diff {:+.3}  t({:.0}) = {:+.2}  p_adj = {:.3}",
            names[c.a], names[c.b], c.mean_diff, c.df, c.t, c.p_adjusted
        );
    }
    println!("{text}");

    // The reproduction's success criterion is the *conclusion*, not the
    // exact p: all three tests must be non-significant at α = 0.05.
    let mut verdict = text.clone();
    let all_ns = [report.all, report.residents, report.non_residents]
        .iter()
        .all(|r| r.map(|r| !r.significant(0.05)).unwrap_or(false));
    verdict.push_str(&format!(
        "\nconclusion reproduced (all three tests non-significant): {}\n",
        if all_ns { "YES" } else { "NO" }
    ));
    println!(
        "conclusion reproduced (all three tests non-significant): {}",
        if all_ns { "YES" } else { "NO" }
    );
    let path = arp_bench::write_report("anova.txt", &verdict);
    println!("report written to {}", path.display());
}
