//! Reproduces **Table 3** (non-residents only, 81 responses).
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_table3
//! ```

use arp_userstudy::paper;
use arp_userstudy::tables::{max_mean_deviation, render, render_vs_paper, table3};

fn main() {
    let (outcome, _) = arp_bench::calibrated_study();
    let table = table3(outcome);

    let mut report = String::new();
    report.push_str(&render(&table));
    report.push('\n');
    report.push_str(&render_vs_paper(&table, &paper::TABLE3));
    let dev = max_mean_deviation(&table, &paper::TABLE3);
    report.push_str(&format!("\nmax |measured - paper| mean: {dev:.3}\n"));

    println!("{report}");
    let path = arp_bench::write_report("table3.txt", &report);
    println!("report written to {}", path.display());
}
