//! Reproduces the §3 travel-time calibration experiment: "for each road
//! segment that is not a freeway/motorway, we multiply the edge weight by
//! 1.3. Our trials showed that this results in a reasonably good estimate
//! of actual travel time when the roads have no congestion."
//!
//! We simulate "actual" uncongested driving times by adding a fixed
//! intersection/turn delay to every non-freeway segment (stops, lights,
//! slowing for turns — the effects the paper says raw `length/maxspeed`
//! misses), then sweep the non-freeway factor and report the estimation
//! error per factor. The error curve should bottom out near ×1.3.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_calibration
//! ```

use std::fmt::Write as _;

use arp_core::search::SearchSpace;
use arp_roadnet::weight::{Weight, WeightConfig};

/// Mean delay per non-freeway segment from intersections/lights/turns, in
/// ms. City blocks are short, so ~4–5 s per segment is the empirically
/// sensible uncongested overhead.
const INTERSECTION_DELAY_MS: u32 = 4_500;

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;

    // "Actual" driving time: raw physics plus per-segment delay.
    let raw = WeightConfig::uncalibrated();
    let raw_weights: Vec<Weight> = net
        .edges()
        .map(|e| {
            raw.travel_time_ms(
                net.length_m(e) as f64,
                net.speed_kmh(e) as f64,
                net.category(e),
            )
        })
        .collect();
    let actual: Vec<Weight> = net
        .edges()
        .map(|e| {
            let base = raw_weights[e.index()];
            if net.category(e).is_freeway() {
                base
            } else {
                base + INTERSECTION_DELAY_MS
            }
        })
        .collect();

    // Sampled routes: price actual vs estimated along real shortest paths.
    let queries = arp_bench::random_queries(
        net,
        60,
        5 * 60_000,
        60 * 60_000,
        arp_bench::MASTER_SEED ^ 0xCA11,
    );
    let mut ws = SearchSpace::new(net);
    let paths: Vec<_> = queries
        .iter()
        .filter_map(|&(s, t, _)| ws.shortest_path(net, &actual, s, t).ok())
        .collect();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "§3 calibration reproduction: factor sweep over {} routes (delay model: +{INTERSECTION_DELAY_MS} ms per non-freeway segment)",
        paths.len()
    );
    let _ = writeln!(
        report,
        "\n{:>8} {:>16} {:>14}",
        "factor", "mean |err| (%)", "mean bias (%)"
    );

    let mut best_factor = 1.0;
    let mut best_err = f64::INFINITY;
    for step in 0..=12 {
        let factor = 1.0 + step as f64 * 0.05;
        let estimate: Vec<Weight> = net
            .edges()
            .map(|e| {
                let base = raw_weights[e.index()] as f64;
                if net.category(e).is_freeway() {
                    base as Weight
                } else {
                    (base * factor).round() as Weight
                }
            })
            .collect();
        let mut abs_err = 0.0;
        let mut bias = 0.0;
        for p in &paths {
            let a = p.cost_under(&actual) as f64;
            let e = p.cost_under(&estimate) as f64;
            abs_err += ((e - a) / a).abs();
            bias += (e - a) / a;
        }
        let abs_err = abs_err / paths.len() as f64 * 100.0;
        let bias = bias / paths.len() as f64 * 100.0;
        if abs_err < best_err {
            best_err = abs_err;
            best_factor = factor;
        }
        let _ = writeln!(report, "{factor:>8.2} {abs_err:>16.2} {bias:>14.2}");
    }

    let _ = writeln!(
        report,
        "\nbest factor: {best_factor:.2} (paper uses 1.30); reproduced (within ±0.10): {}",
        if (best_factor - 1.3f64).abs() <= 0.10 + 1e-9 {
            "YES"
        } else {
            "NO"
        }
    );

    println!("{report}");
    let path = arp_bench::write_report("calibration.txt", &report);
    println!("report written to {}", path.display());
}
