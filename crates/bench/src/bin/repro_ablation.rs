//! Ablation study over the design choices DESIGN.md §6 calls out:
//!
//! 1. Penalty: penalize only forward edges vs. forward + reverse;
//!    similarity rejection filter on/off.
//! 2. Plateaus: overlap pruning threshold.
//! 3. Dissimilarity: θ sweep {0.3, 0.5, 0.7}.
//! 4. The §4.2-#4 "commercial" filters (overlap pruning, local
//!    optimality, comfort ranking) applied to Penalty's raw output.
//!
//! Metrics: success@k, mean stretch, diversity, local optimality — the
//! objective counterparts of what the study participants rated.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_ablation
//! ```

use std::fmt::Write as _;

use arp_core::prelude::*;
use arp_core::quality::route_set_quality;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;

struct Row {
    name: String,
    routes: f64,
    stretch: f64,
    diversity: f64,
    local_opt: f64,
    turns_per_km: f64,
}

fn evaluate(
    net: &RoadNetwork,
    queries: &[(NodeId, NodeId, u64)],
    name: &str,
    mut run: impl FnMut(NodeId, NodeId) -> Option<Vec<Path>>,
) -> Row {
    let mut routes = 0.0;
    let mut stretch = 0.0;
    let mut diversity = 0.0;
    let mut local_opt = 0.0;
    let mut turns = 0.0;
    let mut n = 0usize;
    for &(s, t, best) in queries {
        let Some(paths) = run(s, t) else { continue };
        if paths.is_empty() {
            continue;
        }
        let q = route_set_quality(net, net.weights(), &paths, best);
        routes += q.count as f64;
        stretch += q.mean_stretch;
        diversity += q.diversity;
        local_opt += q.mean_local_optimality;
        turns += q.mean_turns_per_km;
        n += 1;
    }
    let n = n.max(1) as f64;
    Row {
        name: name.to_string(),
        routes: routes / n,
        stretch: stretch / n,
        diversity: diversity / n,
        local_opt: local_opt / n,
        turns_per_km: turns / n,
    }
}

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;
    let queries = arp_bench::random_queries(
        net,
        40,
        8 * 60_000,
        50 * 60_000,
        arp_bench::MASTER_SEED ^ 0xAB1A,
    );
    let base_query = AltQuery::paper();

    let mut rows: Vec<Row> = Vec::new();

    // 1. Penalty variants.
    for (name, opts) in [
        (
            "penalty fwd-only, no sim filter",
            PenaltyOptions {
                max_similarity: 1.0,
                penalize_reverse: false,
            },
        ),
        (
            "penalty fwd+rev, no sim filter",
            PenaltyOptions {
                max_similarity: 1.0,
                penalize_reverse: true,
            },
        ),
        (
            "penalty fwd+rev, sim<=0.9 (default)",
            PenaltyOptions {
                max_similarity: 0.9,
                penalize_reverse: true,
            },
        ),
        (
            "penalty fwd+rev, sim<=0.6",
            PenaltyOptions {
                max_similarity: 0.6,
                penalize_reverse: true,
            },
        ),
    ] {
        rows.push(evaluate(net, &queries, name, |s, t| {
            penalty_alternatives(net, net.weights(), s, t, &base_query, &opts).ok()
        }));
    }

    // 2. Plateau overlap pruning.
    for (name, max_similarity) in [
        ("plateau sim<=1.0 (no pruning)", 1.0),
        ("plateau sim<=0.9 (default)", 0.9),
        ("plateau sim<=0.6", 0.6),
    ] {
        let opts = arp_core::plateau::PlateauOptions {
            max_similarity,
            min_plateau_fraction: 0.01,
        };
        rows.push(evaluate(net, &queries, name, |s, t| {
            plateau_alternatives(net, net.weights(), s, t, &base_query, &opts).ok()
        }));
    }

    // 3. Dissimilarity θ sweep.
    for theta in [0.3, 0.5, 0.7] {
        let q = base_query.with_theta(theta);
        rows.push(evaluate(
            net,
            &queries,
            &format!("dissimilarity theta={theta}"),
            |s, t| {
                dissimilarity_alternatives(
                    net,
                    net.weights(),
                    s,
                    t,
                    &q,
                    &DissimilarityOptions::default(),
                )
                .ok()
            },
        ));
    }

    // 4. §4.2-#4 commercial filters on Penalty's raw output.
    let raw_opts = PenaltyOptions {
        max_similarity: 1.0,
        penalize_reverse: true,
    };
    let commercial = FilterConfig::commercial();
    rows.push(evaluate(
        net,
        &queries,
        "penalty raw + commercial filters",
        |s, t| {
            penalty_alternatives(net, net.weights(), s, t, &base_query, &raw_opts)
                .ok()
                .map(|paths| apply_filters(net, net.weights(), paths, base_query.k, &commercial))
        },
    ));

    // 5. Turn-aware routing (§4.2: "less zig-zag is better"): replace the
    // recommended first route with the turn-aware optimum.
    rows.push(evaluate(net, &queries, "turn-aware first route", |s, t| {
        arp_core::turn_aware_shortest_path(
            net,
            net.weights(),
            &arp_core::TurnModel::default(),
            s,
            t,
        )
        .ok()
        .map(|mut p| {
            // Price without the synthetic turn penalties for comparison.
            p.cost_ms = p.cost_under(net.weights());
            vec![p]
        })
    }));
    rows.push(evaluate(net, &queries, "plain first route", |s, t| {
        shortest_path(net, net.weights(), s, t)
            .ok()
            .map(|p| vec![p])
    }));

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Ablation study over {} queries on {}",
        queries.len(),
        city.name
    );
    let _ = writeln!(
        report,
        "\n{:<38} {:>7} {:>9} {:>10} {:>10} {:>9}",
        "configuration", "routes", "stretch", "diversity", "local-opt", "turns/km"
    );
    for r in &rows {
        let _ = writeln!(
            report,
            "{:<38} {:>7.2} {:>9.3} {:>10.3} {:>10.3} {:>9.2}",
            r.name, r.routes, r.stretch, r.diversity, r.local_opt, r.turns_per_km
        );
    }

    let _ = writeln!(report, "\nexpected shapes:");
    let _ = writeln!(
        report,
        "  - tighter similarity filters raise diversity, may lower route count"
    );
    let _ = writeln!(
        report,
        "  - higher theta raises diversity and lowers route count"
    );
    let _ = writeln!(
        report,
        "  - commercial filters raise local optimality of the set"
    );
    let _ = writeln!(
        report,
        "  - turn-aware routing cuts turns/km at a small stretch cost"
    );

    println!("{report}");
    let path = arp_bench::write_report("ablation.txt", &report);
    println!("report written to {}", path.display());
}
