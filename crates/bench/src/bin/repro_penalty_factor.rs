//! Reproduces the penalty-factor recommendation the study adopts:
//! "As suggested in \[4\], for the Penalty approach, the penalty that we
//! apply to each edge is 1.4" (§3).
//!
//! Reference \[4\] (Bader et al.) evaluates penalty factors by the quality
//! of the resulting *alternative graph*: enough extra road offered
//! (totalDistance up), routes staying near-optimal (averageDistance low),
//! and a manageable number of decision points. This binary sweeps the
//! factor and prints those metrics plus route-set diversity; 1.4 should
//! sit at the knee — smaller factors fail to produce alternatives,
//! larger ones inflate averageDistance.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_penalty_factor
//! ```

use std::fmt::Write as _;

use arp_core::altgraph::alt_graph_metrics;
use arp_core::prelude::*;
use arp_core::similarity::diversity;

fn main() {
    let city = arp_bench::melbourne_medium();
    let net = &city.network;
    let queries = arp_bench::random_queries(
        net,
        30,
        8 * 60_000,
        45 * 60_000,
        arp_bench::MASTER_SEED ^ 0xFAC7,
    );

    let mut report = String::new();
    let _ = writeln!(
        report,
        "Penalty-factor sweep ([4]'s alternative-graph metrics) over {} queries",
        queries.len()
    );
    let _ = writeln!(
        report,
        "\n{:>8} {:>7} {:>10} {:>14} {:>14} {:>10}",
        "factor", "routes", "diversity", "totalDistance", "avgDistance", "decisions"
    );

    struct Score {
        factor: f64,
        routes: f64,
        diversity: f64,
        total: f64,
        avg: f64,
    }
    let mut scores: Vec<Score> = Vec::new();

    for step in 0..=8 {
        let factor = 1.1 + step as f64 * 0.1;
        let q = AltQuery::paper().with_penalty_factor(factor);
        let opts = PenaltyOptions::default();
        let mut routes = 0.0;
        let mut div = 0.0;
        let mut total = 0.0;
        let mut avg = 0.0;
        let mut decisions = 0.0;
        let mut n = 0usize;
        for &(s, t, best) in &queries {
            let Ok(paths) = penalty_alternatives(net, net.weights(), s, t, &q, &opts) else {
                continue;
            };
            if paths.is_empty() {
                continue;
            }
            let m = alt_graph_metrics(net, net.weights(), &paths, best);
            if !m.average_distance.is_finite() {
                continue;
            }
            routes += paths.len() as f64;
            div += diversity(&paths, net.weights());
            total += m.total_distance;
            avg += m.average_distance;
            decisions += m.decision_edges as f64;
            n += 1;
        }
        let nf = n.max(1) as f64;
        let _ = writeln!(
            report,
            "{:>8.1} {:>7.2} {:>10.3} {:>14.3} {:>14.3} {:>10.1}",
            factor,
            routes / nf,
            div / nf,
            total / nf,
            avg / nf,
            decisions / nf
        );
        scores.push(Score {
            factor,
            routes: routes / nf,
            diversity: div / nf,
            total: total / nf,
            avg: avg / nf,
        });
    }

    // The knee: smallest factor whose diversity and totalDistance are
    // within 95% of the sweep's plateau (bigger factors only add
    // averageDistance).
    let max_div = scores.iter().map(|s| s.diversity).fold(0.0, f64::max);
    let max_total = scores.iter().map(|s| s.total).fold(0.0, f64::max);
    let knee = scores
        .iter()
        .find(|s| s.diversity >= 0.92 * max_div && s.total >= 0.92 * max_total && s.routes >= 2.5)
        .map(|s| s.factor);
    let _ = writeln!(
        report,
        "\nknee of the sweep (diversity & totalDistance plateau, k routes delivered): {}",
        knee.map(|f| format!("{f:.1}"))
            .unwrap_or_else(|| "none".into())
    );
    let reproduced = knee.is_some_and(|f| (1.2..=1.5).contains(&f));
    let _ = writeln!(
        report,
        "paper/[4] use 1.4; reproduced (knee within 1.2..=1.5): {}",
        if reproduced { "YES" } else { "NO" }
    );
    let _ = writeln!(
        report,
        "(averageDistance grows monotonically with the factor: {})",
        scores.windows(2).all(|w| w[1].avg >= w[0].avg - 0.02)
    );

    println!("{report}");
    let path = arp_bench::write_report("penalty_factor.txt", &report);
    println!("report written to {}", path.display());
}
