//! Reproduces **Figs. 2–3**: the demo UI artifacts. Runs one query
//! through the full demo stack (geo-matching → four approaches → A–D
//! blinding → minute rounding), writes the interactive HTML page the
//! server serves, a GeoJSON of the displayed routes, and exercises the
//! feedback form round-trip.
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_fig2
//! ```

use std::fmt::Write as _;

use arp_demo::prelude::*;
use arp_demo::query::QueryProcessor;
use arp_roadnet::geo::Point;

fn main() {
    let city = arp_bench::generate_city(arp_citygen::City::Melbourne, arp_citygen::Scale::Small);
    let processor = QueryProcessor::new(city.name.clone(), city.network, arp_bench::MASTER_SEED);
    let app = DemoApp::new(processor);

    // Fig. 2(a): the user clicks source and target inside the rectangle.
    let bb = app.processor.network().bbox();
    let s = Point::new(
        bb.min_lon + bb.width_deg() * 0.3,
        bb.min_lat + bb.height_deg() * 0.35,
    );
    let t = Point::new(
        bb.min_lon + bb.width_deg() * 0.75,
        bb.min_lat + bb.height_deg() * 0.7,
    );

    // Fig. 2(b): the four approaches' routes, blinded A-D.
    let resp = app.processor.process(s, t).expect("routable demo query");
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig. 2 reproduction: demo query through the full stack"
    );
    let _ = writeln!(
        report,
        "  matched {} -> {}, fastest {} min",
        resp.source, resp.target, resp.fastest_minutes
    );
    for a in &resp.approaches {
        let minutes: Vec<String> = a
            .routes
            .iter()
            .map(|r| format!("{} min", r.minutes))
            .collect();
        let _ = writeln!(report, "  Approach {}: {}", a.label, minutes.join(", "));
    }

    // Artifacts: the served page and the routes as GeoJSON.
    let page = app.handle("GET", "/", "");
    let page_path = arp_bench::write_report("fig2_demo.html", &page.body);
    let geojson = response_to_geojson(&resp);
    let geo_path = arp_bench::write_report("fig2_routes.geojson", &geojson);

    // Fig. 3: submit a rating through the API and read the summary back.
    let rate = app.handle(
        "POST",
        "/api/rate",
        r#"{"a": 4, "b": 5, "c": 4, "d": 3, "resident": true, "fastest_minutes": 20, "comment": "demo round-trip"}"#,
    );
    assert_eq!(rate.status, 200, "{}", rate.body);
    let results = app.handle("GET", "/api/results", "");
    let _ = writeln!(report, "\nFig. 3 reproduction: rating round-trip");
    let _ = writeln!(report, "  POST /api/rate -> {}", rate.body);
    let _ = writeln!(report, "  GET /api/results -> {}", results.body);
    let _ = writeln!(report, "\nartifacts:");
    let _ = writeln!(report, "  demo page: {}", page_path.display());
    let _ = writeln!(report, "  routes geojson: {}", geo_path.display());

    println!("{report}");
    let path = arp_bench::write_report("fig2.txt", &report);
    println!("report written to {}", path.display());
}
