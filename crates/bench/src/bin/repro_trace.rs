//! Request tracing: span-tree integrity and sampling overhead.
//!
//! Two phases on all three cities, against the real `arp-serve`
//! pipeline (admission, cache, technique fan-out):
//!
//! * **Phase A — well-nestedness.** Sample rate 1.0 over a mixed
//!   workload (healthy fan-outs, cached repeats, and fault-injected
//!   degraded requests with retries): every kept trace must be a
//!   well-nested tree — one root, resolvable parent links, children
//!   contained in their parents — for **100% of requests**, asserted
//!   per request and reported per city.
//! * **Phase B — overhead.** The tentpole's cost claim: p50 latency
//!   with tracing at 10% sampling vs. tracing compiled in but disabled
//!   (`TraceConfig::disabled()`), cache off so every request does real
//!   route work, batches interleaved so clock drift hits both arms
//!   alike. The run asserts overhead **< 3%** per city.
//!
//! Report lands in `reports/trace.txt` (CI gates on both properties).
//!
//! ```sh
//! cargo run --release -p arp-bench --bin repro_trace
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use arp_citygen::{City, Scale};
use arp_demo::backend::DemoBackend;
use arp_demo::query::{QueryProcessor, SnappedQuery};
use arp_obs::{SpanStatus, TraceConfig};
use arp_serve::{FaultPlan, RouteService, ServeConfig};

/// Distinct queries per city.
const DISTINCT: usize = 12;
/// Interleaved measurement rounds per arm in Phase B.
const ROUNDS: usize = 8;

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let index = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[index]
}

fn snapped(
    pairs: &[(arp_roadnet::ids::NodeId, arp_roadnet::ids::NodeId, u64)],
) -> Vec<SnappedQuery> {
    pairs
        .iter()
        .map(|&(s, t, _)| SnappedQuery {
            source: s,
            target: t,
        })
        .collect()
}

fn main() {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Request tracing: span-tree integrity and sampling overhead \
         ({DISTINCT} distinct queries per city, release build, seed {})",
        arp_bench::MASTER_SEED
    );

    let _ = writeln!(
        report,
        "\nPhase A - well-nestedness at sample 1.0 (healthy + cached + degraded-with-retry workload)"
    );
    let mut nested_total = 0usize;
    let mut traces_total = 0usize;
    let mut city_overheads: Vec<(City, f64, f64, f64)> = Vec::new();

    for city in City::ALL {
        let generated = arp_bench::generate_city(city, Scale::Small);
        let name = generated.name.clone();
        let pairs = arp_bench::random_queries(
            &generated.network,
            DISTINCT,
            3 * 60_000,
            40 * 60_000,
            arp_bench::MASTER_SEED,
        );
        let queries = snapped(&pairs);
        let processor = Arc::new(QueryProcessor::new(
            name.clone(),
            generated.network,
            arp_bench::MASTER_SEED,
        ));
        let registry = processor.registry().clone();

        // --- Phase A: every request traced, mixed outcomes. ---
        let trace_all = TraceConfig {
            enabled: true,
            sample: 1.0,
            buffer: 4096,
            // 1 ms threshold: real route work crosses it, so the slow
            // tail rule and its counter get exercised too.
            slow_ms: 1,
        };
        let healthy = RouteService::new(
            DemoBackend::new(Arc::clone(&processor)),
            ServeConfig {
                trace: trace_all,
                ..ServeConfig::default()
            },
            &registry,
        );
        let degraded = RouteService::new(
            DemoBackend::new(Arc::clone(&processor)),
            ServeConfig {
                trace: TraceConfig {
                    enabled: true,
                    sample: 1.0,
                    buffer: 4096,
                    slow_ms: 0,
                },
                faults: FaultPlan::parse("lane.penalty=error:trace bench fault")
                    .expect("static spec"),
                ..ServeConfig::default()
            },
            &registry,
        );

        let mut nested = 0usize;
        let mut total = 0usize;
        let mut spans = 0usize;
        let mut audit =
            |service: &RouteService<DemoBackend>, query: SnappedQuery, want: Option<SpanStatus>| {
                let (receipt, result) = service.route_traced(processor.prepare_query(query));
                assert!(result.is_ok(), "{name}: route failed in phase A");
                assert!(receipt.kept, "{name}: sample 1.0 must keep every trace");
                if let Some(status) = want {
                    assert_eq!(receipt.status, status, "{name}: unexpected status");
                }
                let trace = service
                    .tracer()
                    .trace(receipt.id)
                    .expect("kept trace resolvable by id");
                total += 1;
                spans += trace.spans.len();
                if trace.well_nested() {
                    nested += 1;
                } else {
                    panic!("{name}: malformed span tree: {:?}", trace.spans);
                }
            };
        for &query in &queries {
            audit(&healthy, query, Some(SpanStatus::Ok)); // cold: full fan-out
            audit(&healthy, query, Some(SpanStatus::Ok)); // warm: cache hits
            audit(&degraded, query, Some(SpanStatus::Degraded)); // fault + retry
        }
        nested_total += nested;
        traces_total += total;
        let _ = writeln!(
            report,
            "  {:<11} traces {nested}/{total} well-nested (100%), {spans} spans, \
             {} slow-tagged",
            name,
            registry.counter_value("arp_trace_slow_requests_total", &[])
        );

        // --- Phase B: p50 overhead, 10% sampling vs. disabled. ---
        let arm = |trace: TraceConfig| -> RouteService<DemoBackend> {
            RouteService::new(
                DemoBackend::new(Arc::clone(&processor)),
                ServeConfig {
                    cache_capacity: 0, // every request does real route work
                    trace,
                    ..ServeConfig::default()
                },
                &registry,
            )
        };
        let off = arm(TraceConfig::disabled());
        let on = arm(TraceConfig {
            enabled: true,
            sample: 0.1,
            buffer: 256,
            slow_ms: 0,
        });
        let mut lat_off: Vec<f64> = Vec::new();
        let mut lat_on: Vec<f64> = Vec::new();
        for round in 0..=ROUNDS {
            // Alternate which arm goes first so drift cancels; round 0
            // warms both arms and is discarded.
            let order: [(&RouteService<DemoBackend>, bool); 2] = if round % 2 == 0 {
                [(&off, false), (&on, true)]
            } else {
                [(&on, true), (&off, false)]
            };
            for (service, traced) in order {
                for &query in &queries {
                    let started = Instant::now();
                    let result = service.route(processor.prepare_query(query));
                    let elapsed = started.elapsed().as_secs_f64() * 1e3;
                    assert!(result.is_ok(), "{name}: route failed in phase B");
                    if round > 0 {
                        if traced {
                            lat_on.push(elapsed);
                        } else {
                            lat_off.push(elapsed);
                        }
                    }
                }
            }
        }
        lat_off.sort_by(|a, b| a.partial_cmp(b).unwrap());
        lat_on.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50_off = percentile(&lat_off, 0.50);
        let p50_on = percentile(&lat_on, 0.50);
        let overhead = (p50_on - p50_off) / p50_off * 100.0;
        city_overheads.push((city, p50_off, p50_on, overhead));
    }

    let _ = writeln!(
        report,
        "\nall traces well-nested: {nested_total}/{traces_total} (100%)"
    );
    assert_eq!(
        nested_total, traces_total,
        "every span tree must be well-nested"
    );

    let _ = writeln!(
        report,
        "\nPhase B - p50 overhead at 10% sampling vs. compiled-in-but-disabled \
         (cache off, {ROUNDS} interleaved rounds per arm)"
    );
    // Re-run the loop's collected numbers into the report (kept separate
    // from the loop so phase A lines group together in the file).
    for &(city, p50_off, p50_on, overhead) in &city_overheads {
        let _ = writeln!(
            report,
            "  {:<11} p50 off {p50_off:.2} ms  on {p50_on:.2} ms  overhead {overhead:+.1}% (10% sampling)",
            format!("{city:?}")
        );
        assert!(
            overhead < 3.0,
            "{city:?}: tracing overhead {overhead:.1}% breaches the 3% budget"
        );
    }

    let _ = writeln!(
        report,
        "\nproperties checked: every trace at sample 1.0 was kept, resolvable by id \
         and well-nested (one root, resolved parents, contained children); \
         p50 overhead with tracing enabled at 10% sampling stayed under 3% \
         of the compiled-in-but-disabled baseline on every city."
    );

    let path = arp_bench::write_report("trace.txt", &report);
    println!("{report}");
    println!("report written to {}", path.display());
}
