#![warn(missing_docs)]
//! # arp-bench
//!
//! The reproduction harness: one binary per table/figure of the paper
//! (`repro_table1` … `repro_fig4`, see DESIGN.md's per-experiment index)
//! plus criterion microbenchmarks for the algorithms' §2 cost claims.
//!
//! This library hosts shared helpers: city caching, deterministic query
//! generation, and text-report plumbing used by every `repro_*` binary.

use std::path::PathBuf;
use std::sync::OnceLock;

use arp_citygen::{City, GeneratedCity, Scale};
use arp_core::search::{Direction, SearchSpace};
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_roadnet::weight::INFINITY;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The workspace-level seed every experiment derives from, so the whole
/// reproduction is a pure function of this constant.
pub const MASTER_SEED: u64 = 20220509; // ICDE 2022 week

/// Generates (and memoizes per process) the default experiment city:
/// Melbourne at Medium scale.
pub fn melbourne_medium() -> &'static GeneratedCity {
    static CITY: OnceLock<GeneratedCity> = OnceLock::new();
    CITY.get_or_init(|| arp_citygen::generate(City::Melbourne, Scale::Medium, MASTER_SEED))
}

/// Generates a city fresh (no memoization) — for sweeps over cities.
pub fn generate_city(city: City, scale: Scale) -> GeneratedCity {
    arp_citygen::generate(city, scale, MASTER_SEED)
}

/// Deterministic random routable query pairs with a minimum fastest time.
///
/// Uses one forward shortest-path tree per source, like the study sampler,
/// to guarantee routability and measure the fastest travel time.
pub fn random_queries(
    net: &RoadNetwork,
    count: usize,
    min_ms: u64,
    max_ms: u64,
    seed: u64,
) -> Vec<(NodeId, NodeId, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ws = SearchSpace::new(net);
    let mut out = Vec::with_capacity(count);
    let n = net.num_nodes() as u32;
    let mut guard = 0;
    while out.len() < count && guard < count * 20 {
        guard += 1;
        let s = NodeId(rng.random_range(0..n));
        let Ok(tree) = ws.shortest_path_tree(net, net.weights(), s, Direction::Forward) else {
            continue;
        };
        let candidates: Vec<u32> = (0..n)
            .filter(|&v| {
                v != s.0
                    && tree.dist[v as usize] != INFINITY
                    && tree.dist[v as usize] >= min_ms
                    && tree.dist[v as usize] <= max_ms
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        for _ in 0..4 {
            if out.len() >= count {
                break;
            }
            let t = candidates[rng.random_range(0..candidates.len())];
            out.push((s, NodeId(t), tree.dist[t as usize]));
        }
    }
    out
}

/// The four demo techniques' metric label values, in provider order.
pub const TECHNIQUE_SLUGS: [&str; 4] = ["google_like", "plateaus", "dissimilarity", "penalty"];

/// Formats the per-technique work counters (calls, settled nodes, heap
/// pops, relaxed edges, candidates vs admitted routes) accumulated in
/// `registry` — the snapshot table `repro_perf` prints under each city's
/// timing rows. See DESIGN.md §7 for the metric names behind each column.
pub fn metrics_snapshot(registry: &arp_obs::Registry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<15} {:>6} {:>10} {:>10} {:>10} {:>6} {:>6}",
        "technique", "calls", "settled", "heap-pops", "relaxed", "cand", "admit"
    );
    for technique in TECHNIQUE_SLUGS {
        let labels = [("technique", technique)];
        let c = |name: &str| registry.counter_value(name, &labels);
        let _ = writeln!(
            out,
            "  {:<15} {:>6} {:>10} {:>10} {:>10} {:>6} {:>6}",
            technique,
            c("arp_technique_calls_total"),
            c("arp_search_settled_nodes_total"),
            c("arp_search_heap_pops_total"),
            c("arp_search_relaxed_edges_total"),
            c("arp_technique_candidates_total"),
            c("arp_technique_admitted_total"),
        );
    }
    out
}

/// Writes a report file under `reports/` (created on demand) and echoes
/// the path, so every repro binary leaves an artifact for EXPERIMENTS.md.
pub fn write_report(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("reports");
    std::fs::create_dir_all(&dir).expect("create reports dir");
    let dir = dir.canonicalize().expect("canonicalize reports dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write report");
    path
}

/// Runs the full-size calibrated reproduction study (237 responses on
/// Melbourne at Medium scale, calibration fitted for 3 rounds), memoized
/// per process so the three table binaries can share it.
pub fn calibrated_study() -> &'static (arp_userstudy::StudyOutcome, arp_userstudy::Calibration) {
    static STUDY: OnceLock<(arp_userstudy::StudyOutcome, arp_userstudy::Calibration)> =
        OnceLock::new();
    STUDY.get_or_init(|| {
        let city = melbourne_medium();
        let providers = arp_core::provider::standard_providers(&city.network, MASTER_SEED);
        let config = arp_userstudy::StudyConfig::paper(MASTER_SEED);
        let mut calibration = arp_userstudy::Calibration::from_paper_targets();
        eprintln!("fitting calibration (6 rounds of the full study)…");
        let residual = calibration.fit(&city.network, &providers, &config, 6, 0.9);
        eprintln!("calibration residual after fit: {residual:.3}");
        let outcome = arp_userstudy::run_study(&city.network, &providers, &config, &calibration);
        (outcome, calibration)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_queries_are_deterministic_and_bounded() {
        let g = generate_city(City::Melbourne, Scale::Tiny);
        let a = random_queries(&g.network, 10, 60_000, 600_000, 7);
        let b = random_queries(&g.network, 10, 60_000, 600_000, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for &(s, t, ms) in &a {
            assert_ne!(s, t);
            assert!((60_000..=600_000).contains(&ms));
        }
    }

    #[test]
    fn counters_are_nonzero_after_a_melbourne_query() {
        let g = generate_city(City::Melbourne, Scale::Tiny);
        let registry = arp_obs::Registry::new();
        let providers =
            arp_core::provider::instrumented_providers(&g.network, MASTER_SEED, &registry);
        let (s, t, _) = random_queries(&g.network, 1, 60_000, 600_000, 7)[0];
        let q = arp_core::AltQuery::paper();
        for p in &providers {
            p.alternatives(&g.network, g.network.weights(), s, t, &q)
                .unwrap();
        }
        let snapshot = metrics_snapshot(&registry);
        for technique in TECHNIQUE_SLUGS {
            let labels = [("technique", technique)];
            assert_eq!(
                registry.counter_value("arp_technique_calls_total", &labels),
                1,
                "{technique}"
            );
            for name in [
                "arp_search_settled_nodes_total",
                "arp_search_heap_pops_total",
                "arp_search_relaxed_edges_total",
            ] {
                assert!(
                    registry.counter_value(name, &labels) > 0,
                    "{technique} {name}\n{snapshot}"
                );
            }
            assert!(snapshot.contains(technique), "{snapshot}");
        }
    }

    #[test]
    fn impossible_bounds_return_fewer() {
        let g = generate_city(City::Melbourne, Scale::Tiny);
        // No 10-hour routes in a tiny city.
        let q = random_queries(&g.network, 5, 36_000_000, 72_000_000, 1);
        assert!(q.is_empty());
    }
}
