//! Response store: the feedback form's back-end (Fig. 3).
//!
//! Collects 1–5 ratings per blind label plus the residency flag and an
//! optional comment, exactly the fields the paper's form gathers. Persists
//! to a simple CSV so study sessions survive restarts.

use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::blind::LABELS;
use crate::error::DemoError;

/// One submitted feedback form.
#[derive(Clone, Debug, PartialEq)]
pub struct Submission {
    /// Ratings for labels A–D, each 1–5.
    pub ratings: [u8; 4],
    /// "Are you currently living (or have lived) in `<city>`?"
    pub resident: bool,
    /// Fastest route's display minutes for the rated query (used to bin
    /// responses like §4.1).
    pub fastest_minutes: u64,
    /// Optional free-text comment.
    pub comment: String,
}

impl Submission {
    /// Validates rating bounds.
    pub fn validate(&self) -> Result<(), DemoError> {
        for (i, &r) in self.ratings.iter().enumerate() {
            if !(1..=5).contains(&r) {
                return Err(DemoError::BadRequest(format!(
                    "rating for {} must be 1-5, got {r}",
                    LABELS[i]
                )));
            }
        }
        Ok(())
    }
}

/// Per-label summary of collected ratings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabelSummary {
    /// Blind label.
    pub label: char,
    /// Number of ratings.
    pub count: usize,
    /// Mean rating.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
}

/// Thread-safe in-memory store with CSV persistence.
#[derive(Debug, Default)]
pub struct ResponseStore {
    rows: Mutex<Vec<Submission>>,
}

impl ResponseStore {
    /// An empty store.
    pub fn new() -> ResponseStore {
        ResponseStore::default()
    }

    /// Adds a validated submission.
    pub fn submit(&self, s: Submission) -> Result<(), DemoError> {
        s.validate()?;
        self.rows.lock().expect("store lock").push(s);
        Ok(())
    }

    /// Number of stored submissions.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("store lock").len()
    }

    /// True when nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all submissions.
    pub fn snapshot(&self) -> Vec<Submission> {
        self.rows.lock().expect("store lock").clone()
    }

    /// Summary per blind label, optionally filtered by residency.
    pub fn summary(&self, resident: Option<bool>) -> Vec<LabelSummary> {
        let rows = self.rows.lock().expect("store lock");
        LABELS
            .iter()
            .enumerate()
            .map(|(i, &label)| {
                let mut n = 0usize;
                let mut sum = 0.0;
                let mut sum_sq = 0.0;
                for s in rows.iter() {
                    if resident.is_some_and(|want| s.resident != want) {
                        continue;
                    }
                    let x = s.ratings[i] as f64;
                    n += 1;
                    sum += x;
                    sum_sq += x * x;
                }
                let mean = if n > 0 { sum / n as f64 } else { 0.0 };
                let sd = if n > 1 {
                    ((sum_sq - sum * sum / n as f64) / (n as f64 - 1.0))
                        .max(0.0)
                        .sqrt()
                } else {
                    0.0
                };
                LabelSummary {
                    label,
                    count: n,
                    mean,
                    sd,
                }
            })
            .collect()
    }

    /// Serializes all rows to CSV (header + one line per submission).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("rating_a,rating_b,rating_c,rating_d,resident,fastest_minutes,comment\n");
        for s in self.rows.lock().expect("store lock").iter() {
            let comment = s.comment.replace('"', "\"\"");
            out.push_str(&format!(
                "{},{},{},{},{},{},\"{}\"\n",
                s.ratings[0],
                s.ratings[1],
                s.ratings[2],
                s.ratings[3],
                s.resident,
                s.fastest_minutes,
                comment
            ));
        }
        out
    }

    /// Writes the CSV to a file.
    pub fn save_csv(&self, path: &Path) -> Result<(), DemoError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(())
    }

    /// Loads submissions from a CSV produced by [`ResponseStore::to_csv`].
    pub fn load_csv(text: &str) -> Result<ResponseStore, DemoError> {
        let store = ResponseStore::new();
        for (lineno, line) in text.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.splitn(7, ',').collect();
            if parts.len() != 7 {
                return Err(DemoError::BadRequest(format!(
                    "csv line {} has {} fields",
                    lineno + 1,
                    parts.len()
                )));
            }
            let rating = |s: &str| -> Result<u8, DemoError> {
                s.parse()
                    .map_err(|_| DemoError::BadRequest(format!("bad rating {s:?}")))
            };
            let quoted = parts[6].trim();
            let comment = quoted
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .unwrap_or(quoted)
                .replace("\"\"", "\"");
            store.submit(Submission {
                ratings: [
                    rating(parts[0])?,
                    rating(parts[1])?,
                    rating(parts[2])?,
                    rating(parts[3])?,
                ],
                resident: parts[4] == "true",
                fastest_minutes: parts[5]
                    .parse()
                    .map_err(|_| DemoError::BadRequest("bad minutes".into()))?,
                comment,
            })?;
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(ratings: [u8; 4], resident: bool) -> Submission {
        Submission {
            ratings,
            resident,
            fastest_minutes: 14,
            comment: String::new(),
        }
    }

    #[test]
    fn submit_and_summary() {
        let store = ResponseStore::new();
        store.submit(sub([3, 4, 5, 4], true)).unwrap();
        store.submit(sub([1, 4, 3, 2], false)).unwrap();
        store.submit(sub([5, 4, 4, 3], true)).unwrap();
        assert_eq!(store.len(), 3);

        let all = store.summary(None);
        assert_eq!(all[0].label, 'A');
        assert!((all[0].mean - 3.0).abs() < 1e-9);
        assert!((all[1].mean - 4.0).abs() < 1e-9);
        assert_eq!(all[1].sd, 0.0);

        let residents = store.summary(Some(true));
        assert_eq!(residents[0].count, 2);
        assert!((residents[0].mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_ratings_rejected() {
        let store = ResponseStore::new();
        assert!(store.submit(sub([0, 3, 3, 3], true)).is_err());
        assert!(store.submit(sub([3, 6, 3, 3], true)).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let store = ResponseStore::new();
        store
            .submit(Submission {
                ratings: [2, 3, 4, 5],
                resident: true,
                fastest_minutes: 24,
                comment: "no route using \"Blackburn rd\"".into(),
            })
            .unwrap();
        store.submit(sub([1, 1, 1, 1], false)).unwrap();
        let csv = store.to_csv();
        let back = ResponseStore::load_csv(&csv).unwrap();
        assert_eq!(back.snapshot(), store.snapshot());
    }

    #[test]
    fn csv_rejects_corruption() {
        assert!(ResponseStore::load_csv("header\n1,2,3\n").is_err());
        assert!(ResponseStore::load_csv("header\nx,2,3,4,true,5,\"\"\n").is_err());
    }

    #[test]
    fn empty_store_summary() {
        let store = ResponseStore::new();
        let s = store.summary(None);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].count, 0);
        assert_eq!(s[0].mean, 0.0);
    }

    #[test]
    fn concurrent_submissions() {
        use std::sync::Arc;
        let store = Arc::new(ResponseStore::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let st = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    st.submit(sub([1 + (i % 5) as u8, 3, 3, 3], i % 2 == 0))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
    }
}
