//! The epoch-customizable CH index tier.
//!
//! [`IndexManager`] owns one metric-independent [`ChTopology`] per city
//! (built once, at startup) and keeps a cheap per-epoch [`ChMetric`]
//! customized against the live-traffic overlay. Serving never waits for
//! it: [`IndexManager::metric_for`] hands out a metric **only** when its
//! epoch matches the request's pinned epoch exactly, and the query path
//! falls back to the plain Dijkstra substrate build otherwise (counted
//! by `arp_ch_fallbacks_total`). Because a metric is published under the
//! epoch of the snapshot it was customized from, a response can never
//! mix a stale metric with a newer claimed epoch — the exact-match gate
//! makes the race unrepresentable rather than merely unlikely.
//!
//! Customization runs on one background thread fed by the traffic
//! state's epoch listener ([`arp_traffic::TrafficState::set_epoch_listener`]).
//! The feed slot is *latest-wins*: if three ticks land while one
//! customization is in flight, the intermediate epochs are skipped and
//! the worker customizes straight to the newest — requests pinned to the
//! skipped epochs simply fall back, which is the correct degradation
//! (those epochs are already stale).
//!
//! Instruments (DESIGN.md §11, docs/OPERATIONS.md):
//!
//! * `arp_ch_customizations_total` — metrics customized and published,
//! * `arp_ch_queries_total` — substrate builds served by the CH tier,
//! * `arp_ch_fallbacks_total` — requests that fell back to the Dijkstra
//!   build because the pinned epoch's metric was not ready,
//! * `arp_ch_customize_ms` — customization wall time.

use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use arp_core::{ChMetric, ChTopology};
use arp_obs::{Counter, Histogram, Registry};
use arp_roadnet::csr::RoadNetwork;
use arp_traffic::{EpochSnapshot, TrafficState};

/// Histogram buckets for customization wall time: customization is a
/// linear pass over the arcs and triangles, so even Large cities sit in
/// the tens of milliseconds — the tail buckets exist to make a
/// regression obvious, not to be hit.
const CUSTOMIZE_BUCKETS_MS: &[f64] = &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0];

/// Instruments of the CH index tier, resolved once at construction.
#[derive(Clone, Debug)]
struct ChIndexMetrics {
    customizations: Counter,
    queries: Counter,
    fallbacks: Counter,
    customize_ms: Histogram,
}

impl ChIndexMetrics {
    fn new(registry: &Registry) -> ChIndexMetrics {
        ChIndexMetrics {
            customizations: registry.counter(
                "arp_ch_customizations_total",
                "CH metrics customized and published (one per traffic epoch reached).",
                &[],
            ),
            queries: registry.counter(
                "arp_ch_queries_total",
                "Substrate builds served by the CH index tier.",
                &[],
            ),
            fallbacks: registry.counter(
                "arp_ch_fallbacks_total",
                "Requests that fell back to the Dijkstra build (pinned epoch's metric not ready).",
                &[],
            ),
            customize_ms: registry.histogram(
                "arp_ch_customize_ms",
                "Wall-clock time of one CH metric customization, in milliseconds.",
                &[],
                CUSTOMIZE_BUCKETS_MS,
            ),
        }
    }
}

/// The customizer's inbox: at most one snapshot waits at a time
/// (latest-wins), plus the control bits the worker honours.
#[derive(Default)]
struct Pending {
    next: Option<Arc<EpochSnapshot>>,
    paused: bool,
    shutdown: bool,
}

/// State shared between the serving path, the epoch listener, and the
/// customizer thread. Split from [`IndexManager`] so the listener and
/// the worker can hold it without keeping the manager's destructor from
/// ever running.
struct Inner {
    network: Arc<RoadNetwork>,
    topology: ChTopology,
    /// The newest customized metric. Its [`ChMetric::epoch`] stamp is
    /// the readiness gate: `metric_for` compares it against the
    /// request's pinned epoch.
    published: RwLock<Arc<ChMetric>>,
    pending: Mutex<Pending>,
    work: Condvar,
    /// Signalled after every publication so `wait_ready` can block
    /// without polling.
    published_cv: Condvar,
    metrics: ChIndexMetrics,
}

impl Inner {
    /// Customizes `snapshot`'s weight column and publishes the result
    /// under the snapshot's epoch. Infallible in practice: the only
    /// customize error is a column-length mismatch, which cannot happen
    /// for snapshots of the same network the topology was built on.
    fn customize_and_publish(&self, snapshot: &EpochSnapshot) {
        let timer = self.metrics.customize_ms.start_timer();
        match self.topology.customize_view(&self.network, snapshot) {
            Ok(metric) => {
                drop(timer);
                *self.published.write().unwrap() = Arc::new(metric);
                self.metrics.customizations.inc();
                // Wake `wait_ready` blockers. The condvar pairs with the
                // `pending` mutex purely for the wait protocol.
                let _guard = self.pending.lock().unwrap();
                self.published_cv.notify_all();
            }
            Err(_) => {
                timer.discard();
                debug_assert!(
                    false,
                    "customization over a same-network snapshot cannot fail"
                );
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let snapshot = {
                let mut slot = self.pending.lock().unwrap();
                loop {
                    if slot.shutdown {
                        return;
                    }
                    if slot.paused || slot.next.is_none() {
                        slot = self.work.wait(slot).unwrap();
                        continue;
                    }
                    break slot.next.take().unwrap();
                }
            };
            self.customize_and_publish(&snapshot);
        }
    }
}

/// The serving layer's CH index tier: one immutable per-city topology,
/// one background-customized per-epoch metric, and a strict readiness
/// gate. See the module docs for the protocol.
pub struct IndexManager {
    inner: Arc<Inner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for IndexManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexManager")
            .field("ready_epoch", &self.ready_epoch())
            .finish_non_exhaustive()
    }
}

impl IndexManager {
    /// Builds the topology, customizes the current epoch **synchronously**
    /// (so a freshly started server answers its very first request on the
    /// CH tier instead of warming up behind fallbacks), spawns the
    /// customizer thread, and registers the epoch listener that feeds it.
    pub fn new(
        network: Arc<RoadNetwork>,
        traffic: &TrafficState,
        registry: &Registry,
    ) -> IndexManager {
        let topology = ChTopology::build(&network);
        let metrics = ChIndexMetrics::new(registry);
        let snapshot = traffic.snapshot();
        let initial = topology
            .customize_view(&network, &*snapshot)
            .expect("base customization over the network's own column cannot fail");
        metrics.customizations.inc();
        let inner = Arc::new(Inner {
            network,
            topology,
            published: RwLock::new(Arc::new(initial)),
            pending: Mutex::new(Pending::default()),
            work: Condvar::new(),
            published_cv: Condvar::new(),
            metrics,
        });

        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("arp-ch-customizer".into())
                .spawn(move || inner.worker_loop())
                .expect("spawning the CH customizer thread")
        };

        // Every epoch publication (delta, tick, forced bump) lands in the
        // latest-wins slot; the listener runs on the writer's thread and
        // must stay cheap, so it only swaps a pointer and signals.
        let listener_inner = Arc::clone(&inner);
        traffic.set_epoch_listener(move |snapshot: &Arc<EpochSnapshot>| {
            let mut slot = listener_inner.pending.lock().unwrap();
            slot.next = Some(Arc::clone(snapshot));
            listener_inner.work.notify_all();
        });

        IndexManager {
            inner,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// The per-city topology (contraction order, shortcut arcs,
    /// triangles). Immutable for the manager's lifetime.
    pub fn topology(&self) -> &ChTopology {
        &self.inner.topology
    }

    /// The metric for `epoch`, **iff** it is exactly the one published.
    /// A hit counts `arp_ch_queries_total`; a miss counts
    /// `arp_ch_fallbacks_total` and the caller must use the Dijkstra
    /// build. The exact-epoch comparison is the tier's core safety
    /// property: a request pinned to epoch `e` can only ever be served
    /// from a metric customized from epoch `e`'s weight column.
    pub fn metric_for(&self, epoch: u64) -> Option<Arc<ChMetric>> {
        let metric = Arc::clone(&self.inner.published.read().unwrap());
        if metric.epoch() == epoch {
            self.inner.metrics.queries.inc();
            Some(metric)
        } else {
            self.inner.metrics.fallbacks.inc();
            None
        }
    }

    /// The epoch of the newest published metric.
    pub fn ready_epoch(&self) -> u64 {
        self.inner.published.read().unwrap().epoch()
    }

    /// Blocks until a metric for exactly `epoch` is published, up to
    /// `timeout`. Returns whether it is. Test and drill hook — the
    /// serving path never waits.
    pub fn wait_ready(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut slot = self.inner.pending.lock().unwrap();
        loop {
            if self.ready_epoch() == epoch {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (next, timed_out) = self
                .inner
                .published_cv
                .wait_timeout(slot, remaining)
                .unwrap();
            slot = next;
            if timed_out.timed_out() {
                return self.ready_epoch() == epoch;
            }
        }
    }

    /// Parks the customizer thread: enqueued snapshots accumulate
    /// (latest-wins) but nothing is customized until [`IndexManager::resume`]
    /// or a manual [`IndexManager::customize_now`]. Lets tests hold the
    /// tier in its not-ready state deterministically.
    pub fn pause(&self) {
        self.inner.pending.lock().unwrap().paused = true;
    }

    /// Un-parks the customizer thread.
    pub fn resume(&self) {
        let mut slot = self.inner.pending.lock().unwrap();
        slot.paused = false;
        self.inner.work.notify_all();
    }

    /// Synchronously customizes the pending snapshot on the calling
    /// thread, if one is queued. Returns whether it did any work.
    /// Deterministic companion to [`IndexManager::pause`] for tests.
    pub fn customize_now(&self) -> bool {
        let snapshot = self.inner.pending.lock().unwrap().next.take();
        match snapshot {
            Some(snapshot) => {
                self.inner.customize_and_publish(&snapshot);
                true
            }
            None => false,
        }
    }

    /// Published-metric customizations so far (startup included).
    pub fn customizations(&self) -> u64 {
        self.inner.metrics.customizations.get()
    }

    /// Substrate builds served by the CH tier so far.
    pub fn queries(&self) -> u64 {
        self.inner.metrics.queries.get()
    }

    /// Dijkstra fallbacks so far (pinned epoch's metric not ready).
    pub fn fallbacks(&self) -> u64 {
        self.inner.metrics.fallbacks.get()
    }
}

impl Drop for IndexManager {
    fn drop(&mut self) {
        {
            let mut slot = self.inner.pending.lock().unwrap();
            slot.shutdown = true;
            self.inner.work.notify_all();
        }
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};
    use arp_traffic::TrafficDelta;

    fn state_and_manager() -> (Arc<RoadNetwork>, Arc<TrafficState>, IndexManager) {
        let g = arp_citygen::generate(City::Copenhagen, Scale::Tiny, 3);
        let network = Arc::new(g.network);
        let traffic = Arc::new(TrafficState::new(Arc::clone(&network)));
        let registry = Registry::new();
        let manager = IndexManager::new(Arc::clone(&network), &traffic, &registry);
        (network, traffic, manager)
    }

    #[test]
    fn startup_metric_is_ready_at_epoch_zero() {
        let (_, _, manager) = state_and_manager();
        assert_eq!(manager.ready_epoch(), 0);
        assert!(manager.metric_for(0).is_some());
        assert_eq!(manager.queries(), 1);
        assert_eq!(manager.customizations(), 1);
        assert_eq!(manager.fallbacks(), 0);
    }

    #[test]
    fn epoch_bump_recustomizes_in_the_background() {
        let (_, traffic, manager) = state_and_manager();
        let delta = TrafficDelta::parse("cat:residential*2.0").unwrap();
        let outcome = traffic.apply_delta(&delta).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert!(
            manager.wait_ready(1, Duration::from_secs(30)),
            "customizer must reach epoch 1"
        );
        assert!(manager.metric_for(1).is_some());
        assert_eq!(manager.customizations(), 2);
    }

    #[test]
    fn not_ready_epoch_falls_back_and_counts_it() {
        let (_, traffic, manager) = state_and_manager();
        manager.pause();
        let delta = TrafficDelta::parse("cat:primary*1.5").unwrap();
        traffic.apply_delta(&delta).unwrap();
        // The worker is parked: epoch 1's metric cannot exist yet.
        assert!(manager.metric_for(1).is_none());
        assert_eq!(manager.fallbacks(), 1);
        // Manual customization publishes it deterministically.
        assert!(manager.customize_now());
        assert!(manager.metric_for(1).is_some());
        assert_eq!(manager.ready_epoch(), 1);
        manager.resume();
    }

    #[test]
    fn pending_slot_is_latest_wins() {
        let (_, traffic, manager) = state_and_manager();
        manager.pause();
        for _ in 0..3 {
            let delta = TrafficDelta::parse("cat:residential*1.1").unwrap();
            traffic.apply_delta(&delta).unwrap();
        }
        // Three publications queued while parked; one customization jumps
        // straight to the newest epoch.
        assert!(manager.customize_now());
        assert_eq!(manager.ready_epoch(), 3);
        assert!(!manager.customize_now(), "slot must be drained");
        // Requests pinned to the skipped epochs fall back.
        assert!(manager.metric_for(1).is_none());
        assert!(manager.metric_for(2).is_none());
        assert!(manager.metric_for(3).is_some());
        manager.resume();
    }

    #[test]
    fn forced_wraparound_epoch_is_served_exactly() {
        let (_, traffic, manager) = state_and_manager();
        traffic.force_epoch(u64::MAX);
        let delta = TrafficDelta::parse("cat:residential*1.2").unwrap();
        let outcome = traffic.apply_delta(&delta).unwrap();
        assert_eq!(outcome.epoch, 0, "epoch must wrap");
        assert!(
            manager.wait_ready(0, Duration::from_secs(30)),
            "customizer must reach the wrapped epoch"
        );
        // Exact-match still gates correctly across the wrap: the wrapped
        // epoch-0 metric carries the *overlayed* weights, and stale
        // pre-wrap epochs are refused.
        assert!(manager.metric_for(0).is_some());
        assert!(manager.metric_for(u64::MAX).is_none());
    }

    #[test]
    fn shutdown_joins_the_worker() {
        let (_, traffic, manager) = state_and_manager();
        drop(manager);
        // The listener still fires into the dropped manager's inner state
        // without panicking or deadlocking.
        let delta = TrafficDelta::parse("cat:residential*1.3").unwrap();
        traffic.apply_delta(&delta).unwrap();
    }
}
