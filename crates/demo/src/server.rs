//! A dependency-free HTTP server exposing the demo system.
//!
//! Endpoints (mirroring the paper's web demo):
//!
//! * `GET  /`             — the interactive map page (see [`crate::html`]),
//! * `GET  /api/meta`     — study area, city name, approach labels,
//! * `GET  /api/network`  — a down-sampled edge set for drawing the map,
//! * `POST /api/route`    — `{slon, slat, tlon, tlat}` → blinded routes,
//! * `POST /api/rate`     — `{a, b, c, d, resident, fastest_minutes, comment}`,
//! * `GET  /api/results`  — per-label rating summaries,
//! * `GET  /api/results.csv` — the raw response CSV,
//! * `GET  /api/metrics`  — Prometheus text exposition of every counter
//!   and histogram in the processor's [`arp_obs::Registry`],
//! * `GET  /api/health`   — serving health: verdict, queue pressure,
//!   per-technique breaker states, cache occupancy, and the live-traffic
//!   state (current graph epoch, overlay size, active closures),
//! * `POST /api/traffic`  — applies a traffic delta (either raw grammar,
//!   `cat:primary*1.8; close:412@3`, or wrapped as `{"delta": "…"}`);
//!   success bumps the graph epoch atomically, so subsequent routes see
//!   the new weights while in-flight requests finish on the epoch they
//!   pinned at admission,
//! * `GET  /api/debug/traces` — the trace ring buffer, newest first,
//!   filterable with `?min_ms=`, `?status=degraded` and `?technique=`,
//! * `GET  /api/trace/<id>` — one captured trace rendered as a nested
//!   span tree.
//!
//! Every request through the serving pipeline is traced: the response
//! body carries `"trace_id"` (echoed as an `X-Arp-Trace-Id` header, on
//! successes and serving failures alike), head-sampled traces plus every
//! slow/degraded/truncated/failed request land in the ring buffer behind
//! the debug endpoints, and requests crossing the `slow_ms` threshold
//! emit a single-line JSON log to stderr for grep-ability.
//!
//! Every request increments `arp_http_requests_total{endpoint,status}` and
//! feeds `arp_http_request_latency_ms{endpoint}`; unknown paths share the
//! `other` endpoint label so cardinality stays bounded.
//!
//! `POST /api/route` runs through the `arp-serve` pipeline: admission
//! control (overload answers `503` with an adaptive `Retry-After`), a
//! per-technique route cache, and parallel technique fan-out on the
//! worker pool with per-lane failure isolation — a failed or panicked
//! technique degrades its lane instead of the whole request, so the
//! response stays `200` while at least one technique produced routes
//! (`502` when all of them failed, `504` when the deadline passed with
//! nothing to serve). Degraded responses carry `"degraded": true` and a
//! `"lane_status"` map keyed by blind label; healthy responses omit both
//! keys and stay byte-identical to the fault-free wire format. The
//! serving instruments (`arp_serve_*`) share the processor's registry, so
//! `/api/metrics` exposes queue depth, shed counts, cache hit rates,
//! lane failures, retries and breaker states alongside the technique
//! metrics.
//!
//! The request handler is a pure function over `(method, path, body)` so
//! tests exercise the full API without sockets; `serve` adds the TCP loop
//! — bounded per-connection threads, load shedding at the accept loop,
//! and cooperative shutdown via [`ShutdownHandle`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use arp_obs::{
    CompletedTrace, Registry, Span, SpanStatus, TraceId, TraceReceipt, DEFAULT_LATENCY_BUCKETS_MS,
};
use arp_roadnet::geo::Point;
use arp_serve::{RouteService, ServeConfig, ServeError, ShutdownHandle};

use crate::backend::DemoBackend;
use crate::error::DemoError;
use crate::geojson::response_to_geojson;
use crate::html;
use crate::json::{self, Json};
use crate::query::QueryProcessor;
use crate::store::{ResponseStore, Submission};

/// Upper bound on concurrently handled TCP connections; the accept loop
/// answers `503` beyond it instead of spawning without bound.
pub const MAX_CONNECTIONS: usize = 128;

/// Default cap on `POST /api/traffic` bodies. Deltas are operator
/// commands — a handful of statements, not bulk data — so anything past
/// this is a client bug or abuse, answered `413` before parsing.
/// Override with [`DemoApp::with_traffic_body_cap`].
pub const DEFAULT_TRAFFIC_BODY_CAP: usize = 64 * 1024;

/// Hard wire-level bound on any request body. `read_request` refuses to
/// read past it: a larger `Content-Length` is answered `413` with the
/// declared bytes left unread on the (about-to-close) connection.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// An HTTP response produced by the handler.
#[derive(Clone, Debug, PartialEq)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, …).
    pub status: u16,
    /// Content type.
    pub content_type: &'static str,
    /// Body bytes (UTF-8 text for all our endpoints).
    pub body: String,
    /// `Retry-After` header value in seconds (load-shedding responses).
    pub retry_after: Option<u32>,
    /// The request's trace id, echoed as an `X-Arp-Trace-Id` header.
    /// Set on every response that ran the serving pipeline.
    pub trace_id: Option<String>,
}

impl HttpResponse {
    fn ok_json(v: Json) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "application/json",
            body: v.to_string_compact(),
            retry_after: None,
            trace_id: None,
        }
    }

    /// The one error-rendering path: every non-200 reply — client 400s,
    /// the serving ladder's 502/503/504 — goes through here, so the body
    /// shape (`{"error": …}`) and the optional `Retry-After` header stay
    /// uniform across endpoints.
    fn render_error(
        status: u16,
        message: impl Into<String>,
        retry_after: Option<u32>,
    ) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: Json::object([("error", Json::String(message.into()))]).to_string_compact(),
            retry_after,
            trace_id: None,
        }
    }

    fn error(status: u16, message: impl Into<String>) -> HttpResponse {
        HttpResponse::render_error(status, message, None)
    }

    fn overloaded(retry_after_s: u32) -> HttpResponse {
        HttpResponse::render_error(503, "overloaded, please retry", Some(retry_after_s))
    }

    /// Maps the serving pipeline's failure ladder onto HTTP statuses:
    /// 503 (shed, with an adaptive `Retry-After`), 504 (deadline, nothing
    /// finished), 502 (every technique lane failed). The trace id rides
    /// along in the body and header — a shed or failed request is kept
    /// by the tail-sampling rules, so the id is immediately resolvable
    /// at `GET /api/trace/<id>`.
    fn serve_error(err: &ServeError, trace_id: TraceId) -> HttpResponse {
        let (status, message, retry_after) = match err {
            ServeError::Overloaded { retry_after_s } => (
                503,
                "overloaded, please retry".to_string(),
                Some(*retry_after_s),
            ),
            ServeError::DeadlineExceeded => (
                504,
                "route computation exceeded its deadline".to_string(),
                None,
            ),
            ServeError::AllLanesFailed { reasons } => {
                (502, format!("all technique lanes failed: {reasons}"), None)
            }
        };
        HttpResponse {
            status,
            content_type: "application/json",
            body: Json::object([
                ("error", Json::str(message)),
                ("trace_id", Json::str(trace_id.to_string())),
            ])
            .to_string_compact(),
            retry_after,
            trace_id: Some(trace_id.to_string()),
        }
    }
}

/// The demo application state shared across connections.
pub struct DemoApp {
    /// The query processor (network + providers + blinding).
    pub processor: Arc<QueryProcessor>,
    /// The feedback store.
    pub store: ResponseStore,
    /// Shared metrics registry (cloned from the processor's, so HTTP,
    /// serving and technique metrics land in one exposition).
    registry: Registry,
    /// The serving pipeline `/api/route` runs through.
    service: RouteService<DemoBackend>,
    /// `POST /api/traffic` bodies larger than this answer `413`.
    traffic_body_cap: usize,
}

impl DemoApp {
    /// Builds the app for a processor with the default serving
    /// configuration, sharing its metrics registry.
    pub fn new(processor: QueryProcessor) -> DemoApp {
        DemoApp::with_config(processor, ServeConfig::default())
    }

    /// Builds the app with an explicit serving configuration.
    pub fn with_config(processor: QueryProcessor, config: ServeConfig) -> DemoApp {
        let registry = processor.registry().clone();
        let processor = Arc::new(processor);
        let service =
            RouteService::new(DemoBackend::new(Arc::clone(&processor)), config, &registry);
        // Wire the journal-append failpoint into the durability layer:
        // when a chaos plan arms `journal.append`, the hook fires inside
        // the traffic swap, *before* the epoch publishes — modelling a
        // full disk or an EIO exactly where a real one would land.
        let plan = service.config().faults.clone();
        if plan.is_enabled() {
            processor
                .traffic()
                .set_journal_fault_hook(move || plan.fire(arp_serve::sites::JOURNAL_APPEND));
        }
        DemoApp {
            processor,
            store: ResponseStore::new(),
            registry,
            service,
            traffic_body_cap: DEFAULT_TRAFFIC_BODY_CAP,
        }
    }

    /// Overrides the `POST /api/traffic` body cap (bytes). Bodies larger
    /// than the cap answer `413` before any parsing.
    pub fn with_traffic_body_cap(mut self, cap: usize) -> DemoApp {
        self.traffic_body_cap = cap;
        self
    }

    /// The serving pipeline (admission, cache, worker pool).
    pub fn service(&self) -> &RouteService<DemoBackend> {
        &self.service
    }

    /// Answers a request whose declared `Content-Length` exceeds
    /// [`MAX_BODY_BYTES`] — the body was never read, so this cannot go
    /// through the normal handler. Still counted in
    /// `arp_http_requests_total` under the endpoint's label.
    pub fn reject_oversized(&self, method: &str, path: &str) -> HttpResponse {
        let endpoint = Self::endpoint_label(method, path);
        let resp = HttpResponse::error(413, "request body too large");
        self.registry
            .counter(
                "arp_http_requests_total",
                "HTTP requests served, by endpoint and status code.",
                &[("endpoint", endpoint), ("status", &resp.status.to_string())],
            )
            .inc();
        resp
    }

    /// Maps a request to its bounded-cardinality `endpoint` label. The
    /// query string never participates (it is unbounded), and every
    /// `/api/trace/<id>` shares one label for the same reason.
    fn endpoint_label(method: &str, path: &str) -> &'static str {
        let path = path.split_once('?').map_or(path, |(p, _)| p);
        match (method, path) {
            ("GET", "/") => "index",
            ("GET", "/api/meta") => "meta",
            ("GET", "/api/network") => "network",
            ("POST", "/api/route") => "route",
            ("POST", "/api/rate") => "rate",
            ("GET", "/api/results") => "results",
            ("GET", "/api/results.csv") => "results_csv",
            ("GET", "/api/metrics") => "metrics",
            ("GET", "/api/health") => "health",
            ("POST", "/api/traffic") => "traffic",
            ("GET", "/api/debug/traces") => "debug_traces",
            ("GET", p) if p.starts_with("/api/trace/") => "trace",
            _ => "other",
        }
    }

    /// Dispatches one request, recording the request count (by endpoint
    /// and status) and handling latency into the shared registry.
    pub fn handle(&self, method: &str, path: &str, body: &str) -> HttpResponse {
        let endpoint = Self::endpoint_label(method, path);
        let timer = self
            .registry
            .histogram(
                "arp_http_request_latency_ms",
                "Wall-clock time handling one HTTP request, in milliseconds.",
                &[("endpoint", endpoint)],
                &DEFAULT_LATENCY_BUCKETS_MS,
            )
            .start_timer();
        let resp = self.dispatch(method, path, body);
        drop(timer);
        self.registry
            .counter(
                "arp_http_requests_total",
                "HTTP requests served, by endpoint and status code.",
                &[("endpoint", endpoint), ("status", &resp.status.to_string())],
            )
            .inc();
        resp
    }

    /// Routes one request to its endpoint handler. The query string is
    /// split off here — only the debug endpoints consume it; everything
    /// else ignores it, matching on the bare path.
    fn dispatch(&self, method: &str, path: &str, body: &str) -> HttpResponse {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        match (method, path) {
            ("GET", "/") => HttpResponse {
                status: 200,
                content_type: "text/html; charset=utf-8",
                body: html::index_page(self.processor.name()),
                retry_after: None,
                trace_id: None,
            },
            ("GET", "/api/meta") => self.meta(),
            ("GET", "/api/network") => self.network_sample(),
            ("POST", "/api/route") => self.route(body),
            ("POST", "/api/rate") => self.rate(body),
            ("GET", "/api/results") => self.results(),
            ("GET", "/api/results.csv") => HttpResponse {
                status: 200,
                content_type: "text/csv",
                body: self.store.to_csv(),
                retry_after: None,
                trace_id: None,
            },
            ("GET", "/api/metrics") => HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: self.registry.render_prometheus(),
                retry_after: None,
                trace_id: None,
            },
            ("GET", "/api/health") => self.health(),
            ("POST", "/api/traffic") => self.traffic(body),
            ("GET", "/api/debug/traces") => self.debug_traces(query),
            ("GET", p) if p.starts_with("/api/trace/") => {
                self.trace_tree(&p["/api/trace/".len()..])
            }
            ("GET", _) | ("POST", _) => {
                HttpResponse::error(404, format!("no such endpoint {path}"))
            }
            _ => HttpResponse::error(405, format!("method {method} not allowed")),
        }
    }

    fn meta(&self) -> HttpResponse {
        let bb = self.processor.study_area();
        HttpResponse::ok_json(Json::object([
            ("city", Json::str(self.processor.name())),
            ("min_lon", Json::Number(bb.min_lon)),
            ("min_lat", Json::Number(bb.min_lat)),
            ("max_lon", Json::Number(bb.max_lon)),
            ("max_lat", Json::Number(bb.max_lat)),
            (
                "labels",
                Json::Array(vec![
                    Json::str("A"),
                    Json::str("B"),
                    Json::str("C"),
                    Json::str("D"),
                ]),
            ),
        ]))
    }

    fn network_sample(&self) -> HttpResponse {
        let net = self.processor.network();
        const MAX_SEGMENTS: usize = 5_000;
        let step = net.num_edges().div_ceil(MAX_SEGMENTS).max(1);
        let mut segments = Vec::new();
        for e in net.edges().step_by(step) {
            let a = net.point(net.tail(e));
            let b = net.point(net.head(e));
            segments.push(Json::Array(vec![
                Json::Number(a.lon),
                Json::Number(a.lat),
                Json::Number(b.lon),
                Json::Number(b.lat),
            ]));
        }
        HttpResponse::ok_json(Json::object([("segments", Json::Array(segments))]))
    }

    fn route(&self, body: &str) -> HttpResponse {
        let req = match json::parse(body) {
            Ok(v) => v,
            Err(e) => return HttpResponse::error(400, e.to_string()),
        };
        let num = |key: &str| -> Result<f64, DemoError> {
            req.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| DemoError::BadRequest(format!("missing number {key:?}")))
        };
        let parsed = (|| -> Result<_, DemoError> {
            let s = Point::new(num("slon")?, num("slat")?);
            let t = Point::new(num("tlon")?, num("tlat")?);
            Ok((s, t))
        })();
        let (s, t) = match parsed {
            Ok(p) => p,
            Err(e) => return HttpResponse::error(400, e.to_string()),
        };
        // Normalize to vertices here (client errors stay at the HTTP
        // layer), then run the snapped query through the serving pipeline.
        // `backend.snap` is the pre-fan-out failpoint: an injected error
        // models the normalization dependency failing outright.
        if let Err(message) = self
            .service
            .config()
            .faults
            .fire(arp_serve::sites::BACKEND_SNAP)
        {
            return HttpResponse::error(500, message);
        }
        let snapped = match self.processor.snap(s, t) {
            Ok(q) => q,
            Err(
                e @ (DemoError::OutOfArea { .. }
                | DemoError::NoNearbyRoad { .. }
                | DemoError::SameLocation),
            ) => return HttpResponse::error(400, e.to_string()),
            Err(e) => return HttpResponse::error(500, e.to_string()),
        };
        // Pin the current traffic epoch *here*, before the serving
        // pipeline's cache probe: the lane keys fold the epoch in, so a
        // tick that lands after this line can never hand this request a
        // route computed under different weights (and vice versa).
        let (receipt, outcome) = self
            .service
            .route_traced(self.processor.prepare_query(snapped));
        self.log_slow(&receipt);
        match outcome {
            Ok(resp) => {
                let mut http = Self::render_route_response(&resp, Some(receipt.id));
                http.trace_id = Some(receipt.id.to_string());
                http
            }
            Err(e) => HttpResponse::serve_error(&e, receipt.id),
        }
    }

    /// Emits the threshold-gated slow-request log line: single-line JSON
    /// to stderr, so `grep slow_request` over process logs yields one
    /// parseable record per offender, each resolvable at
    /// `GET /api/trace/<id>` (slow traces are always tail-kept).
    fn log_slow(&self, receipt: &TraceReceipt) {
        if !receipt.slow {
            return;
        }
        let line = Json::object([
            ("event", Json::str("slow_request")),
            ("trace_id", Json::str(receipt.id.to_string())),
            ("duration_ms", Json::Number(receipt.duration_ms)),
            ("status", Json::str(receipt.status.as_str())),
            (
                "threshold_ms",
                Json::Number(self.service.tracer().slow_ms() as f64),
            ),
        ]);
        eprintln!("{}", line.to_string_compact());
    }

    /// Renders a computed response as the `/api/route` JSON. Split from
    /// [`DemoApp::route`] so tests can compare the served body byte for
    /// byte against the serial [`QueryProcessor::process`] path (the
    /// serial caller passes the served trace id to keep the comparison
    /// exact — the id is the one per-request field).
    fn render_route_response(
        resp: &crate::query::QueryResponse,
        trace_id: Option<TraceId>,
    ) -> HttpResponse {
        let approaches = resp
            .approaches
            .iter()
            .map(|a| {
                let routes = a
                    .routes
                    .iter()
                    .map(|r| {
                        Json::object([
                            ("minutes", Json::Number(r.minutes as f64)),
                            ("color", Json::str(r.color)),
                            (
                                "polyline",
                                Json::Array(
                                    r.polyline
                                        .iter()
                                        .map(|p| {
                                            Json::Array(vec![
                                                Json::Number(p.lon),
                                                Json::Number(p.lat),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Json::object([
                    ("label", Json::str(a.label.to_string())),
                    ("routes", Json::Array(routes)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("fastest_minutes", Json::Number(resp.fastest_minutes as f64)),
            ("approaches", Json::Array(approaches)),
            // A deadline-truncated response is still a 200 — the client
            // gets every route that finished, flagged so the UI can say
            // "some alternatives were cut short". 504 is reserved for
            // requests where nothing finished at all.
            ("truncated", Json::Bool(resp.truncated)),
            // The traffic epoch every route in this response was computed
            // under — one value for the whole response, because the epoch
            // is pinned per request, never per lane.
            ("epoch", Json::Number(resp.epoch as f64)),
            ("geojson", Json::str(response_to_geojson(resp))),
        ];
        // The trace id is present even when tracing is disabled (the
        // collector still mints ids), so clients can always log it; it
        // resolves at `/api/trace/<id>` only for kept traces.
        if let Some(id) = trace_id {
            fields.push(("trace_id", Json::str(id.to_string())));
        }
        // Degraded responses (a lane failed or its breaker was open) name
        // the affected approaches by blind label only — the technique
        // behind each label stays hidden from the study participant.
        // Healthy responses omit both keys, keeping them byte-identical
        // to the pre-fault-tolerance wire format.
        if resp.degraded {
            fields.push(("degraded", Json::Bool(true)));
            fields.push((
                "lane_status",
                Json::object_of(
                    resp.lane_status
                        .iter()
                        .map(|(label, status)| (label.to_string(), Json::str(status.as_str()))),
                ),
            ));
        }
        HttpResponse::ok_json(Json::object(fields))
    }

    /// `POST /api/traffic` — ingests a traffic delta and bumps the graph
    /// epoch atomically.
    ///
    /// The body is either raw delta grammar
    /// (`cat:primary*1.8; close:412@3; reopen:9; clear`) or a JSON object
    /// `{"delta": "<grammar>"}` — the JSON form exists so callers already
    /// speaking JSON to this API never need a second content type. A
    /// delta is all-or-nothing: one invalid statement rejects the whole
    /// body with a 400 and the epoch does not move. On success the reply
    /// carries the new epoch, the number of operations applied, and the
    /// closure count; the route cache's logical invalidations are
    /// recorded against `arp_serve_cache_epoch_invalidations_total`.
    ///
    /// Operator endpoint: like `/api/health` it is not participant-facing
    /// and does not touch the blinding.
    fn traffic(&self, body: &str) -> HttpResponse {
        // Cap check before any parsing: deltas are short operator
        // commands, so an oversized body is rejected outright instead of
        // being parsed (and journaled) at unbounded cost.
        if body.len() > self.traffic_body_cap {
            return HttpResponse::error(
                413,
                format!(
                    "traffic delta body of {} bytes exceeds the {}-byte cap",
                    body.len(),
                    self.traffic_body_cap
                ),
            );
        }
        let text = match json::parse(body) {
            Ok(v) => match v.get("delta").and_then(Json::as_str) {
                Some(s) => s.to_string(),
                None => {
                    return HttpResponse::error(
                        400,
                        "JSON body must carry a \"delta\" string (or send raw delta grammar)",
                    )
                }
            },
            // Not JSON: treat the body as raw delta grammar.
            Err(_) => body.to_string(),
        };
        let delta = match arp_traffic::TrafficDelta::parse(&text) {
            Ok(d) => d,
            Err(e) => return HttpResponse::error(400, e.to_string()),
        };
        match self.processor.traffic().apply_delta(&delta) {
            Ok(outcome) => {
                self.service.note_epoch_invalidations();
                HttpResponse::ok_json(Json::object([
                    ("epoch", Json::Number(outcome.epoch as f64)),
                    ("applied", Json::Number(outcome.applied as f64)),
                    ("expired", Json::Number(outcome.expired as f64)),
                    (
                        "closures_active",
                        Json::Number(outcome.closures_active as f64),
                    ),
                ]))
            }
            // A journal-append failure is the storage layer's problem,
            // not the client's: the delta was valid, the epoch did not
            // move, and a retry may well succeed once the disk recovers —
            // so it maps to 503 + Retry-After, never 400.
            Err(e @ arp_traffic::TrafficError::Journal { .. }) => {
                HttpResponse::render_error(503, e.to_string(), Some(1))
            }
            Err(e) => HttpResponse::error(400, e.to_string()),
        }
    }

    fn rate(&self, body: &str) -> HttpResponse {
        let req = match json::parse(body) {
            Ok(v) => v,
            Err(e) => return HttpResponse::error(400, e.to_string()),
        };
        let rating =
            |key: &str| -> Option<u8> { req.get(key).and_then(Json::as_f64).map(|v| v as u8) };
        let (Some(a), Some(b), Some(c), Some(d)) =
            (rating("a"), rating("b"), rating("c"), rating("d"))
        else {
            return HttpResponse::error(400, "ratings a-d are required");
        };
        let submission = Submission {
            ratings: [a, b, c, d],
            resident: req.get("resident").and_then(Json::as_bool).unwrap_or(false),
            fastest_minutes: req
                .get("fastest_minutes")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
            comment: req
                .get("comment")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        };
        match self.store.submit(submission) {
            Ok(()) => HttpResponse::ok_json(Json::object([
                ("ok", Json::Bool(true)),
                ("total_responses", Json::Number(self.store.len() as f64)),
            ])),
            Err(e) => HttpResponse::error(400, e.to_string()),
        }
    }

    /// `GET /api/health` — the serving pipeline's liveness snapshot for
    /// load balancers and operators: queue pressure, inflight count,
    /// per-technique breaker states and cache occupancy. `ready` and
    /// `degraded` answer 200 (still taking traffic); `unhealthy` (every
    /// breaker open) answers 503 so a balancer rotates the instance out.
    ///
    /// This is an operator endpoint, not a participant-facing one, so it
    /// names techniques directly — the blinding only governs `/api/route`
    /// responses.
    fn health(&self) -> HttpResponse {
        let report = self.service.health();
        let snapshot = self.processor.traffic().snapshot();
        // The CH index tier's readiness verdict: `ready` means the
        // published metric matches the current traffic epoch, so new
        // requests take the CH fast path; `false` means they fall back
        // to the Dijkstra build (correct, just slower) until the
        // background customization catches up. A disabled tier is not a
        // degradation — it is the configured steady state.
        let index = match self.processor.ch_index() {
            Some(index) => {
                let metric_epoch = index.ready_epoch();
                Json::object([
                    ("enabled", Json::Bool(true)),
                    ("ready", Json::Bool(metric_epoch == snapshot.epoch())),
                    ("metric_epoch", Json::Number(metric_epoch as f64)),
                    (
                        "customizations",
                        Json::Number(index.customizations() as f64),
                    ),
                    ("fallbacks", Json::Number(index.fallbacks() as f64)),
                ])
            }
            None => Json::object([("enabled", Json::Bool(false))]),
        };
        // The durability layer's recovery outcome: `disabled` when the
        // traffic state is in-memory only; otherwise what the last
        // startup found — `clean`, `replayed` (journal suffix applied,
        // possibly with a truncated torn tail) or `degraded` (something
        // was quarantined and the state fell back to what remained
        // valid). Operators alert on `degraded` and triage the
        // `*.quarantine` files (docs/OPERATIONS.md).
        let recovery = match self.processor.recovery_report() {
            Some(r) => Json::object([
                ("status", Json::str(r.status.as_str())),
                (
                    "snapshot_epoch",
                    match r.snapshot_epoch {
                        Some(e) => Json::Number(e as f64),
                        None => Json::Null,
                    },
                ),
                ("replayed_records", Json::Number(r.replayed_records as f64)),
                ("torn_tails", Json::Number(r.torn_tails as f64)),
                (
                    "quarantined",
                    Json::Array(r.quarantined.iter().map(Json::str).collect()),
                ),
                ("epoch", Json::Number(r.epoch as f64)),
                ("duration_ms", Json::Number(r.duration_ms as f64)),
            ]),
            None => Json::object([("status", Json::str("disabled"))]),
        };
        let status = match report.verdict {
            arp_serve::HealthVerdict::Unhealthy => 503,
            _ => 200,
        };
        let breakers = Json::object_of(
            report
                .lanes
                .iter()
                .map(|l| (l.technique.clone(), Json::str(l.breaker.as_str()))),
        );
        let body = Json::object([
            ("status", Json::str(report.verdict.as_str())),
            ("queue_depth", Json::Number(report.queue_depth as f64)),
            ("queue_capacity", Json::Number(report.queue_capacity as f64)),
            ("inflight", Json::Number(report.inflight as f64)),
            ("max_inflight", Json::Number(report.max_inflight as f64)),
            ("breakers", breakers),
            (
                "cache",
                Json::object([
                    ("entries", Json::Number(report.cache_entries as f64)),
                    ("hits", Json::Number(report.cache_hits as f64)),
                    ("misses", Json::Number(report.cache_misses as f64)),
                ]),
            ),
            (
                "traffic",
                Json::object([
                    ("epoch", Json::Number(snapshot.epoch() as f64)),
                    ("overlay_size", Json::Number(snapshot.overlay_size() as f64)),
                    ("closures_active", Json::Number(snapshot.closures() as f64)),
                ]),
            ),
            ("index", index),
            ("recovery", recovery),
        ]);
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.to_string_compact(),
            retry_after: None,
            trace_id: None,
        }
    }

    fn results(&self) -> HttpResponse {
        let to_json = |resident: Option<bool>| -> Json {
            Json::Array(
                self.store
                    .summary(resident)
                    .into_iter()
                    .map(|s| {
                        Json::object([
                            ("label", Json::str(s.label.to_string())),
                            ("count", Json::Number(s.count as f64)),
                            ("mean", Json::Number(s.mean)),
                            ("sd", Json::Number(s.sd)),
                        ])
                    })
                    .collect(),
            )
        };
        HttpResponse::ok_json(Json::object([
            ("all", to_json(None)),
            ("residents", to_json(Some(true))),
            ("non_residents", to_json(Some(false))),
        ]))
    }

    /// `GET /api/debug/traces` — the ring buffer of kept traces, newest
    /// first, one summary line each. Filters compose (logical AND):
    ///
    /// * `?min_ms=N` — only traces at least `N` ms end to end,
    /// * `?status=ok|truncated|degraded|failed` — only that final status,
    /// * `?technique=<slug>` — only traces with a lane span for that
    ///   technique (operator endpoint, so slugs are fine — blinding only
    ///   governs `/api/route`).
    ///
    /// Unknown filters and malformed values are 400s, not silent no-ops:
    /// a typo'd filter during an incident must not masquerade as "no
    /// matching traces".
    fn debug_traces(&self, query: &str) -> HttpResponse {
        let tracer = self.service.tracer();
        if !tracer.is_enabled() {
            return HttpResponse::error(404, "tracing is disabled on this instance");
        }
        let mut min_ms = 0.0_f64;
        let mut status: Option<SpanStatus> = None;
        let mut technique: Option<String> = None;
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "min_ms" => match value.parse::<f64>() {
                    Ok(v) if v >= 0.0 => min_ms = v,
                    _ => return HttpResponse::error(400, format!("bad min_ms {value:?}")),
                },
                "status" => match SpanStatus::parse(value) {
                    Some(s) => status = Some(s),
                    None => return HttpResponse::error(400, format!("bad status {value:?}")),
                },
                "technique" => technique = Some(value.to_string()),
                _ => return HttpResponse::error(400, format!("unknown filter {key:?}")),
            }
        }
        let mut traces = tracer.traces();
        traces.reverse(); // newest first: incidents read from the top
        let matches: Vec<Json> = traces
            .iter()
            .filter(|t| t.duration_ms >= min_ms)
            .filter(|t| status.is_none_or(|s| t.status == s))
            .filter(|t| {
                technique.as_deref().is_none_or(|tech| {
                    t.spans_named("lane")
                        .any(|s| s.attr("technique") == Some(tech))
                })
            })
            .map(|t| {
                Json::object([
                    ("trace_id", Json::str(t.id.to_string())),
                    ("duration_ms", Json::Number(t.duration_ms)),
                    ("status", Json::str(t.status.as_str())),
                    ("slow", Json::Bool(t.slow)),
                    ("spans", Json::Number(t.spans.len() as f64)),
                ])
            })
            .collect();
        HttpResponse::ok_json(Json::object([
            ("count", Json::Number(matches.len() as f64)),
            ("capacity", Json::Number(tracer.capacity() as f64)),
            ("traces", Json::Array(matches)),
        ]))
    }

    /// `GET /api/trace/<id>` — one kept trace rendered as a nested span
    /// tree. 400 for a malformed id, 404 when the id was never kept (not
    /// sampled, not slow, healthy) or has been evicted from the ring.
    fn trace_tree(&self, id_text: &str) -> HttpResponse {
        let tracer = self.service.tracer();
        if !tracer.is_enabled() {
            return HttpResponse::error(404, "tracing is disabled on this instance");
        }
        let Some(id) = TraceId::parse(id_text) else {
            return HttpResponse::error(400, format!("malformed trace id {id_text:?}"));
        };
        let Some(trace) = tracer.trace(id) else {
            return HttpResponse::error(
                404,
                format!("trace {id} not found (not sampled, or evicted from the ring)"),
            );
        };
        let root = match trace.root() {
            Some(root) => span_node(&trace, root),
            None => Json::Null,
        };
        HttpResponse::ok_json(Json::object([
            ("trace_id", Json::str(trace.id.to_string())),
            ("duration_ms", Json::Number(trace.duration_ms)),
            ("status", Json::str(trace.status.as_str())),
            ("slow", Json::Bool(trace.slow)),
            ("head_sampled", Json::Bool(trace.head_sampled)),
            ("well_nested", Json::Bool(trace.well_nested())),
            ("root", root),
        ]))
    }
}

/// Renders one span and, recursively, its children. Depth is bounded by
/// the pipeline's span structure (request → stage → lane → queue), not
/// by input, so recursion is safe.
fn span_node(trace: &CompletedTrace, span: &Span) -> Json {
    let children: Vec<Json> = trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(span.id))
        .map(|s| span_node(trace, s))
        .collect();
    Json::object([
        ("name", Json::str(span.name)),
        ("start_us", Json::Number(span.start_us as f64)),
        ("duration_us", Json::Number(span.duration_us() as f64)),
        ("status", Json::str(span.status.as_str())),
        (
            "attrs",
            Json::object_of(
                span.attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::str(v.clone()))),
            ),
        ),
        ("children", Json::Array(children)),
    ])
}

/// One request off the wire: the parsed request line plus either the
/// body or a refusal to read it.
struct RawRequest {
    method: String,
    path: String,
    body: String,
    /// The declared `Content-Length` exceeded [`MAX_BODY_BYTES`]; the
    /// body was left unread and the request must be answered `413`.
    oversized: bool,
}

/// Reads one HTTP request (request line, headers, body per
/// `Content-Length`) from a stream. Bodies whose declared length exceeds
/// [`MAX_BODY_BYTES`] are **not read at all** — the request comes back
/// with `oversized` set so the serving loop can answer `413` without
/// having buffered a single body byte.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<RawRequest>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("/").to_string();

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Some(RawRequest {
            method,
            path,
            body: String::new(),
            oversized: true,
        }));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(RawRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
        oversized: false,
    }))
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let retry_after = match resp.retry_after {
        Some(seconds) => format!("Retry-After: {seconds}\r\n"),
        None => String::new(),
    };
    let trace_id = match &resp.trace_id {
        Some(id) => format!("X-Arp-Trace-Id: {id}\r\n"),
        None => String::new(),
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: close\r\n\r\n{}",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len(),
        retry_after,
        trace_id,
        resp.body
    )?;
    stream.flush()
}

/// Serves the app on `listener`, one thread per connection, until the
/// process exits or an accept error occurs. Equivalent to
/// [`serve_with_shutdown`] with a handle nobody ever triggers.
pub fn serve(app: Arc<DemoApp>, listener: TcpListener) -> std::io::Result<()> {
    serve_with_shutdown(app, listener, ShutdownHandle::new())
}

/// Serves the app on `listener` until `shutdown` is triggered.
///
/// Connection handling is bounded: at most [`MAX_CONNECTIONS`] handler
/// threads run at a time, and connections beyond that are answered `503`
/// with `Retry-After` on the accept thread instead of spawning without
/// bound. On shutdown the loop stops accepting, then drains in-flight
/// connections before returning.
pub fn serve_with_shutdown(
    app: Arc<DemoApp>,
    listener: TcpListener,
    shutdown: ShutdownHandle,
) -> std::io::Result<()> {
    if let Ok(addr) = listener.local_addr() {
        shutdown.register_listener(addr);
    }
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.is_shutdown() {
            break;
        }
        let mut stream = stream?;
        if active.load(Ordering::Acquire) >= MAX_CONNECTIONS {
            let resp = HttpResponse::overloaded(1);
            let _ = write_response(&mut stream, &resp);
            continue;
        }
        active.fetch_add(1, Ordering::AcqRel);
        let app = Arc::clone(&app);
        let active = Arc::clone(&active);
        std::thread::spawn(move || {
            if let Ok(Some(req)) = read_request(&mut stream) {
                let resp = if req.oversized {
                    app.reject_oversized(&req.method, &req.path)
                } else {
                    app.handle(&req.method, &req.path, &req.body)
                };
                let _ = write_response(&mut stream, &resp);
            }
            active.fetch_sub(1, Ordering::AcqRel);
        });
    }
    // Graceful drain: wait (bounded) for in-flight handlers to finish.
    let drain_deadline = std::time::Instant::now() + Duration::from_secs(5);
    while active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Drained: run the registered hooks (e.g. the final durable-state
    // snapshot flush) exactly once, on this thread, after the last
    // in-flight handler could have journaled anything.
    shutdown.run_drain_hooks();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};

    fn app() -> DemoApp {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        DemoApp::new(QueryProcessor::new(g.name.clone(), g.network, 12))
    }

    fn route_body(app: &DemoApp) -> String {
        let bb = app.processor.network().bbox();
        format!(
            r#"{{"slon": {}, "slat": {}, "tlon": {}, "tlat": {}}}"#,
            bb.min_lon + bb.width_deg() * 0.3,
            bb.min_lat + bb.height_deg() * 0.4,
            bb.min_lon + bb.width_deg() * 0.7,
            bb.min_lat + bb.height_deg() * 0.7,
        )
    }

    #[test]
    fn index_page_served() {
        let app = app();
        let resp = app.handle("GET", "/", "");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("<html"));
        assert!(resp.body.contains("Melbourne"));
    }

    #[test]
    fn meta_endpoint() {
        let app = app();
        let resp = app.handle("GET", "/api/meta", "");
        assert_eq!(resp.status, 200);
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("city").unwrap().as_str(), Some("Melbourne"));
        assert!(
            v.get("min_lon").unwrap().as_f64().unwrap()
                < v.get("max_lon").unwrap().as_f64().unwrap()
        );
    }

    #[test]
    fn network_sample_endpoint() {
        let app = app();
        let resp = app.handle("GET", "/api/network", "");
        assert_eq!(resp.status, 200);
        let v = json::parse(&resp.body).unwrap();
        let segs = v.get("segments").unwrap().as_array().unwrap();
        assert!(!segs.is_empty());
        assert!(segs.len() <= 5_000);
        assert_eq!(segs[0].as_array().unwrap().len(), 4);
    }

    #[test]
    fn route_endpoint_full_flow() {
        let app = app();
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        let approaches = v.get("approaches").unwrap().as_array().unwrap();
        assert_eq!(approaches.len(), 4);
        for a in approaches {
            let routes = a.get("routes").unwrap().as_array().unwrap();
            assert!(!routes.is_empty());
            for r in routes {
                assert!(r.get("minutes").unwrap().as_f64().unwrap() >= 1.0);
            }
        }
        // GeoJSON embedded and parseable.
        let gj = v.get("geojson").unwrap().as_str().unwrap();
        assert!(json::parse(gj).is_ok());
    }

    #[test]
    fn route_endpoint_rejects_bad_input() {
        let app = app();
        assert_eq!(app.handle("POST", "/api/route", "not json").status, 400);
        assert_eq!(
            app.handle("POST", "/api/route", r#"{"slon": 1}"#).status,
            400
        );
        let out_of_area = r#"{"slon": 0, "slat": 0, "tlon": 1, "tlat": 1}"#;
        assert_eq!(app.handle("POST", "/api/route", out_of_area).status, 400);
    }

    #[test]
    fn rate_and_results_flow() {
        let app = app();
        let rate = r#"{"a": 3, "b": 5, "c": 4, "d": 4, "resident": true, "fastest_minutes": 18, "comment": "nice"}"#;
        let resp = app.handle("POST", "/api/rate", rate);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp2 = app.handle("POST", "/api/rate", r#"{"a": 1, "b": 2, "c": 3, "d": 4}"#);
        assert_eq!(resp2.status, 200);

        let results = app.handle("GET", "/api/results", "");
        let v = json::parse(&results.body).unwrap();
        let all = v.get("all").unwrap().as_array().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].get("count").unwrap().as_f64(), Some(2.0));
        let residents = v.get("residents").unwrap().as_array().unwrap();
        assert_eq!(residents[0].get("count").unwrap().as_f64(), Some(1.0));

        let csv = app.handle("GET", "/api/results.csv", "");
        assert_eq!(csv.status, 200);
        assert!(csv.body.lines().count() >= 3);
    }

    #[test]
    fn rate_rejects_invalid() {
        let app = app();
        assert_eq!(
            app.handle("POST", "/api/rate", r#"{"a": 9, "b": 1, "c": 1, "d": 1}"#)
                .status,
            400
        );
        assert_eq!(app.handle("POST", "/api/rate", r#"{"a": 3}"#).status, 400);
    }

    #[test]
    fn metrics_endpoint_exposes_prometheus_text() {
        let app = app();
        let ok = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(ok.status, 200, "{}", ok.body);
        app.handle("GET", "/nope", "");

        let resp = app.handle("GET", "/api/metrics", "");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        let body = &resp.body;

        // HTTP request metrics from the two calls above.
        assert!(
            body.contains(r#"arp_http_requests_total{endpoint="route",status="200"} 1"#),
            "{body}"
        );
        assert!(
            body.contains(r#"arp_http_requests_total{endpoint="other",status="404"} 1"#),
            "{body}"
        );
        assert!(body.contains("# TYPE arp_http_requests_total counter"));
        assert!(body.contains("# TYPE arp_http_request_latency_ms histogram"));
        assert!(
            body.contains(r#"arp_http_request_latency_ms_bucket{endpoint="route",le="+Inf"} 1"#),
            "{body}"
        );

        // Technique metrics flowed through the shared registry.
        for technique in ["google_like", "plateaus", "dissimilarity", "penalty"] {
            assert!(
                body.contains(&format!(
                    r#"arp_technique_calls_total{{technique="{technique}"}} 1"#
                )),
                "{technique}: {body}"
            );
        }
        assert!(body.contains("arp_search_settled_nodes_total{"), "{body}");

        // Valid exposition: every line is a HELP/TYPE comment or a sample
        // whose last token parses as a number.
        for line in body.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
            } else {
                let (_, value) = line.rsplit_once(' ').expect("sample line");
                assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            }
        }
    }

    #[test]
    fn metrics_endpoint_counts_itself_on_later_scrapes() {
        let app = app();
        app.handle("GET", "/api/metrics", "");
        let resp = app.handle("GET", "/api/metrics", "");
        assert!(
            resp.body
                .contains(r#"arp_http_requests_total{endpoint="metrics",status="200"} 1"#),
            "{}",
            resp.body
        );
    }

    #[test]
    fn unknown_paths_404() {
        let app = app();
        assert_eq!(app.handle("GET", "/nope", "").status, 404);
        assert_eq!(app.handle("DELETE", "/api/meta", "").status, 405);
    }

    /// Extracts and parses the `trace_id` a served route body carries.
    fn served_trace_id(resp: &HttpResponse) -> TraceId {
        let v = json::parse(&resp.body).unwrap();
        let text = v
            .get("trace_id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no trace_id in {}", resp.body));
        assert_eq!(
            resp.trace_id.as_deref(),
            Some(text),
            "header id must match the body id"
        );
        TraceId::parse(text).unwrap()
    }

    #[test]
    fn served_body_is_byte_identical_to_the_serial_path() {
        let app = app();
        let body = route_body(&app);
        let served = app.handle("POST", "/api/route", &body);
        assert_eq!(served.status, 200, "{}", served.body);

        // The serial reference: snap + process on this thread, rendered
        // by the same function the handler uses. The trace id is the one
        // per-request field, so the reference borrows the served one to
        // keep the comparison byte-exact.
        let req = json::parse(&body).unwrap();
        let s = Point::new(
            req.get("slon").unwrap().as_f64().unwrap(),
            req.get("slat").unwrap().as_f64().unwrap(),
        );
        let t = Point::new(
            req.get("tlon").unwrap().as_f64().unwrap(),
            req.get("tlat").unwrap().as_f64().unwrap(),
        );
        let processed = app.processor.process(s, t).unwrap();
        let id = served_trace_id(&served);
        let serial = DemoApp::render_route_response(&processed, Some(id));
        assert_eq!(served.body, serial.body, "fan-out must match serial path");

        // And a repeat request — served from the route cache — is
        // byte-identical too, modulo its own fresh trace id.
        let repeat = app.handle("POST", "/api/route", &body);
        let repeat_id = served_trace_id(&repeat);
        assert_ne!(repeat_id, id, "every request gets its own trace");
        let serial = DemoApp::render_route_response(&processed, Some(repeat_id));
        assert_eq!(repeat.body, serial.body, "cached reply must match");
    }

    #[test]
    fn route_sheds_with_503_when_admission_is_full() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            max_inflight: 1,
            retry_after_s: 2,
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        // Occupy the only admission slot, then request a route.
        let _slot = app.service().admission().try_acquire().unwrap();
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 503, "{}", resp.body);
        // The hint is adaptive: admission is saturated (ratio 1.0) and the
        // queue idle (0.0), so base 2s scales by 1 + 4 * 0.5 to 6s.
        assert_eq!(resp.retry_after, Some(6));
        assert!(resp.body.contains("overloaded"), "{}", resp.body);
        assert_eq!(
            app.registry
                .counter_value("arp_serve_shed_total", &[("reason", "admission_full")]),
            1
        );
    }

    #[test]
    fn metrics_expose_the_serving_layer() {
        let app = app();
        let body = route_body(&app);
        assert_eq!(app.handle("POST", "/api/route", &body).status, 200);
        assert_eq!(app.handle("POST", "/api/route", &body).status, 200);

        let text = app.handle("GET", "/api/metrics", "").body;
        assert!(text.contains("arp_serve_admitted_total 2"), "{text}");
        // First query misses all four lanes, the repeat hits all four.
        assert!(text.contains("arp_serve_cache_misses_total 4"), "{text}");
        assert!(text.contains("arp_serve_cache_hits_total 4"), "{text}");
        assert!(text.contains("arp_serve_cache_entries 4"), "{text}");
        assert!(text.contains("arp_serve_queue_depth"), "{text}");
        assert!(
            text.contains(r#"arp_serve_stage_latency_ms_bucket{stage="compute",le="+Inf"} 1"#),
            "{text}"
        );
        // The cached repeat ran zero technique computations.
        assert!(
            text.contains(r#"arp_technique_calls_total{technique="penalty"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn real_socket_roundtrip_with_graceful_shutdown() {
        let app = Arc::new(app());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownHandle::new();
        let server = {
            let app = Arc::clone(&app);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || serve_with_shutdown(app, listener, shutdown))
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /api/meta HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200 OK"), "{buf}");
        assert!(buf.contains("Melbourne"));

        // The server thread exits cleanly instead of leaking.
        shutdown.request_shutdown();
        server.join().unwrap().unwrap();
    }

    /// The regression this PR exists for: a panicking technique used to
    /// fail the whole request with a 500. Now the panic is contained to
    /// its lane and the other three techniques' routes are still served.
    #[test]
    fn panicking_lane_still_serves_the_other_techniques_over_http() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            faults: arp_serve::FaultPlan::parse("lane.google_like=panic").unwrap(),
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 200, "{}", resp.body);

        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
        let approaches = v.get("approaches").unwrap().as_array().unwrap();
        assert_eq!(approaches.len(), 4, "blind A-D structure is preserved");
        let served = approaches
            .iter()
            .filter(|a| !a.get("routes").unwrap().as_array().unwrap().is_empty())
            .count();
        assert_eq!(served, 3, "three healthy lanes, one failed: {}", resp.body);

        // The lane-status map is keyed by blind label only and marks
        // exactly the panicked lane as failed.
        let status = v.get("lane_status").unwrap();
        let failed: Vec<&str> = ["A", "B", "C", "D"]
            .iter()
            .filter(|l| status.get(l).and_then(Json::as_str) == Some("failed"))
            .copied()
            .collect();
        assert_eq!(failed.len(), 1, "{}", resp.body);
        assert!(!resp.body.contains("google_like"), "blinding leaked");
    }

    /// Healthy responses must not carry the degraded keys — the wire
    /// format with faults disabled is byte-for-byte the pre-existing one.
    #[test]
    fn healthy_responses_omit_the_degraded_keys() {
        let app = app();
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        assert!(v.get("degraded").is_none(), "{}", resp.body);
        assert!(v.get("lane_status").is_none(), "{}", resp.body);
        // The trace id is part of the healthy wire format too.
        served_trace_id(&resp);
    }

    #[test]
    fn injected_snap_fault_is_a_500() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            faults: arp_serve::FaultPlan::parse("backend.snap=error:snap store down").unwrap(),
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 500, "{}", resp.body);
        assert!(resp.body.contains("snap store down"), "{}", resp.body);
    }

    #[test]
    fn health_endpoint_reports_ready_with_closed_breakers() {
        let app = app();
        let resp = app.handle("GET", "/api/health", "");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ready"));
        let breakers = v.get("breakers").unwrap();
        for technique in ["google_like", "plateaus", "dissimilarity", "penalty"] {
            assert_eq!(
                breakers.get(technique).and_then(Json::as_str),
                Some("closed"),
                "{}",
                resp.body
            );
        }
        assert!(v.get("queue_capacity").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("max_inflight").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(v.get("inflight").unwrap().as_f64(), Some(0.0));
    }

    /// A permanently failing lane trips its breaker; `/api/health` then
    /// degrades the verdict and names the open breaker.
    #[test]
    fn health_endpoint_degrades_when_a_breaker_opens() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            faults: arp_serve::FaultPlan::parse("lane.penalty=error:backend gone").unwrap(),
            breaker: arp_serve::BreakerConfig {
                window: 8,
                min_volume: 2,
                error_rate: 0.5,
                ..arp_serve::BreakerConfig::default()
            },
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        let body = route_body(&app);
        for _ in 0..3 {
            let resp = app.handle("POST", "/api/route", &body);
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
        let resp = app.handle("GET", "/api/health", "");
        assert_eq!(resp.status, 200, "degraded still serves: {}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("degraded"));
        assert_eq!(
            v.get("breakers")
                .unwrap()
                .get("penalty")
                .and_then(Json::as_str),
            Some("open"),
            "{}",
            resp.body
        );
    }

    /// A delta through `POST /api/traffic` bumps the epoch, logically
    /// invalidates every cached route (they were keyed under the old
    /// epoch), and the next route request recomputes under — and reports
    /// — the new epoch.
    #[test]
    fn traffic_endpoint_bumps_the_epoch_and_invalidates_cached_routes() {
        let app = app();
        let body = route_body(&app);

        let first = app.handle("POST", "/api/route", &body);
        assert_eq!(first.status, 200, "{}", first.body);
        let v = json::parse(&first.body).unwrap();
        assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            app.registry
                .counter_value("arp_serve_cache_misses_total", &[]),
            4
        );

        // Slow every residential street down 2×.
        let resp = app.handle(
            "POST",
            "/api/traffic",
            r#"{"delta": "cat:residential*2.0"}"#,
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("applied").and_then(Json::as_f64), Some(1.0));

        // All four cached lanes became logically unreachable.
        assert_eq!(
            app.registry
                .counter_value("arp_serve_cache_epoch_invalidations_total", &[]),
            4
        );

        // Health reports the new epoch and the overlay size.
        let health = app.handle("GET", "/api/health", "");
        let v = json::parse(&health.body).unwrap();
        let traffic = v.get("traffic").unwrap();
        assert_eq!(traffic.get("epoch").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            traffic.get("overlay_size").and_then(Json::as_f64),
            Some(1.0)
        );

        // The same query now misses the cache (old keys are dead) and the
        // response carries the new epoch.
        let second = app.handle("POST", "/api/route", &body);
        assert_eq!(second.status, 200, "{}", second.body);
        let v = json::parse(&second.body).unwrap();
        assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            app.registry
                .counter_value("arp_serve_cache_misses_total", &[]),
            8,
            "epoch bump must invalidate all four cached lanes"
        );

        // A raw-grammar body (no JSON wrapper) works too.
        let resp = app.handle("POST", "/api/traffic", "close:0@2; cat:primary*1.5");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("closures_active").and_then(Json::as_f64), Some(1.0));
    }

    /// Invalid deltas are rejected whole — a 400, and the epoch does not
    /// move (atomicity is observable from the outside).
    #[test]
    fn traffic_endpoint_rejects_bad_deltas_without_moving_the_epoch() {
        let app = app();
        for bad in [
            r#"{"delta": "cat:nope*2.0"}"#,                  // unknown category
            r#"{"delta": "cat:primary*0.5"}"#,               // speed-up: factor < 1
            r#"{"delta": "edge:999999999*2.0"}"#,            // edge out of range
            r#"{"delta": "cat:primary*1.5; close:banana"}"#, // one bad statement kills all
            r#"{"wrong_key": "clear"}"#,                     // JSON without "delta"
            "total : nonsense",                              // unparseable raw grammar
        ] {
            let resp = app.handle("POST", "/api/traffic", bad);
            assert_eq!(resp.status, 400, "{bad} → {}", resp.body);
        }
        assert_eq!(app.processor.traffic().epoch(), 0, "epoch must not move");
    }

    /// The Prometheus exposition content type, checked on a real socket:
    /// scrapers key their parser off the `version=0.0.4` parameter, so
    /// the header must survive the wire, not just the in-process handler.
    #[test]
    fn metrics_content_type_is_prometheus_text_on_the_wire() {
        let app = Arc::new(app());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownHandle::new();
        let server = {
            let app = Arc::clone(&app);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || serve_with_shutdown(app, listener, shutdown))
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /api/metrics HTTP/1.1\r\nHost: localhost\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        shutdown.request_shutdown();
        server.join().unwrap().unwrap();

        assert!(buf.starts_with("HTTP/1.1 200 OK"), "{buf}");
        let (head, _) = buf.split_once("\r\n\r\n").expect("header/body split");
        assert!(
            head.lines()
                .any(|l| l.eq_ignore_ascii_case("Content-Type: text/plain; version=0.0.4")),
            "exposition content type missing on the wire: {head}"
        );
    }

    fn temp_state_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "arp_demo_{name}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Satellite: the `POST /api/traffic` body cap is exact — a body of
    /// cap bytes is processed, cap + 1 bytes answers `413`, and the
    /// rejected request does not move the epoch.
    #[test]
    fn traffic_endpoint_enforces_the_body_cap_at_the_boundary() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let app = DemoApp::new(QueryProcessor::new(g.name.clone(), g.network, 12))
            .with_traffic_body_cap(32);

        // Exactly at the cap: a valid delta padded to 32 bytes applies.
        let mut at_cap = "cat:primary*1.5".to_string();
        while at_cap.len() < 32 {
            at_cap.push(' ');
        }
        assert_eq!(at_cap.len(), 32);
        let resp = app.handle("POST", "/api/traffic", &at_cap);
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(app.processor.traffic().epoch(), 1);

        // One byte over: 413, epoch untouched, nothing parsed.
        let over = format!("{at_cap} ");
        assert_eq!(over.len(), 33);
        let resp = app.handle("POST", "/api/traffic", &over);
        assert_eq!(resp.status, 413, "{}", resp.body);
        assert!(resp.body.contains("cap"), "{}", resp.body);
        assert_eq!(app.processor.traffic().epoch(), 1, "413 must not apply");
        assert_eq!(
            app.registry.counter_value(
                "arp_http_requests_total",
                &[("endpoint", "traffic"), ("status", "413")]
            ),
            1
        );
    }

    /// Without durability, `/api/health` reports the recovery layer as
    /// disabled — distinguishable from a clean recovery.
    #[test]
    fn health_reports_recovery_disabled_without_durability() {
        let app = app();
        let v = json::parse(&app.handle("GET", "/api/health", "").body).unwrap();
        assert_eq!(
            v.get("recovery")
                .unwrap()
                .get("status")
                .and_then(Json::as_str),
            Some("disabled")
        );
    }

    /// The durable path end to end over HTTP: a fresh state-dir recovers
    /// clean, deltas journal as they apply, and a second app built from
    /// the same directory reports the replay and serves the same epoch.
    #[test]
    fn durable_app_recovers_journaled_deltas_across_restarts() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let dir = temp_state_dir("durable_http");

        let processor = QueryProcessor::new(g.name.clone(), g.network.clone(), 12)
            .with_traffic_durability(arp_traffic::DurabilityConfig::new(&dir))
            .unwrap();
        let app = DemoApp::new(processor);
        let v = json::parse(&app.handle("GET", "/api/health", "").body).unwrap();
        let recovery = v.get("recovery").unwrap();
        assert_eq!(recovery.get("status").and_then(Json::as_str), Some("clean"));
        assert_eq!(recovery.get("epoch").and_then(Json::as_f64), Some(0.0));

        let resp = app.handle("POST", "/api/traffic", r#"{"delta": "cat:primary*1.7"}"#);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = app.handle("POST", "/api/traffic", "close:3@5");
        assert_eq!(resp.status, 200, "{}", resp.body);
        drop(app);

        // "Crash" (no flush) and restart from the same directory.
        let processor = QueryProcessor::new(g.name.clone(), g.network.clone(), 12)
            .with_traffic_durability(arp_traffic::DurabilityConfig::new(&dir))
            .unwrap();
        let report = processor.recovery_report().unwrap().clone();
        assert_eq!(report.epoch, 2, "both deltas replayed: {report:?}");
        let app = DemoApp::new(processor);
        let v = json::parse(&app.handle("GET", "/api/health", "").body).unwrap();
        let recovery = v.get("recovery").unwrap();
        assert_eq!(recovery.get("epoch").and_then(Json::as_f64), Some(2.0));
        let traffic = v.get("traffic").unwrap();
        assert_eq!(traffic.get("epoch").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            traffic.get("closures_active").and_then(Json::as_f64),
            Some(1.0)
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected `journal.append` fault (disk full, EIO) answers `503`
    /// with a retry hint; the epoch does not move, so nothing was
    /// published that the journal does not cover.
    #[test]
    fn journal_append_fault_is_a_503_and_the_epoch_does_not_move() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let dir = temp_state_dir("journal_fault");
        let processor = QueryProcessor::new(g.name.clone(), g.network, 12)
            .with_traffic_durability(arp_traffic::DurabilityConfig::new(&dir))
            .unwrap();
        let config = arp_serve::ServeConfig {
            faults: arp_serve::FaultPlan::parse("journal.append=error:disk full").unwrap(),
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(processor, config);

        let resp = app.handle("POST", "/api/traffic", r#"{"delta": "cat:primary*1.5"}"#);
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert_eq!(resp.retry_after, Some(1));
        assert!(resp.body.contains("disk full"), "{}", resp.body);
        assert_eq!(app.processor.traffic().epoch(), 0, "epoch must not move");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A `Content-Length` past the wire cap is answered `413` without the
    /// server reading the body at all — the client never even sends it.
    #[test]
    fn oversized_content_length_is_rejected_on_the_wire_without_reading() {
        let app = Arc::new(app());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownHandle::new();
        let server = {
            let app = Arc::clone(&app);
            let shutdown = shutdown.clone();
            std::thread::spawn(move || serve_with_shutdown(app, listener, shutdown))
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /api/traffic HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        // Deliberately send no body: the 413 must come back anyway.
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        shutdown.request_shutdown();
        server.join().unwrap().unwrap();
        assert!(buf.starts_with("HTTP/1.1 413 Payload Too Large"), "{buf}");
        assert_eq!(
            app.registry.counter_value(
                "arp_http_requests_total",
                &[("endpoint", "traffic"), ("status", "413")]
            ),
            1
        );
    }

    #[test]
    fn retry_after_header_is_written_on_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            write_response(&mut stream, &HttpResponse::overloaded(3)).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        writer.join().unwrap();
        assert!(buf.starts_with("HTTP/1.1 503 Service Unavailable"), "{buf}");
        assert!(buf.contains("Retry-After: 3\r\n"), "{buf}");
    }

    /// The acceptance-criteria walk, end to end: a degraded request's
    /// trace id resolves at `GET /api/trace/<id>` and the tree shows
    /// admission, queue, prepare, every attempted lane (with retry and
    /// breaker attributes) and assemble.
    #[test]
    fn degraded_request_trace_is_servable_from_the_debug_endpoints() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            faults: arp_serve::FaultPlan::parse("lane.penalty=error:boom").unwrap(),
            // Head sampling off: the trace must be kept by the degraded
            // tail rule alone.
            trace: arp_obs::TraceConfig {
                sample: 0.0,
                ..arp_obs::TraceConfig::default()
            },
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let id = served_trace_id(&resp);

        let tree = app.handle("GET", &format!("/api/trace/{id}"), "");
        assert_eq!(tree.status, 200, "{}", tree.body);
        let v = json::parse(&tree.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("degraded"));
        assert_eq!(v.get("well_nested").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("head_sampled").and_then(Json::as_bool), Some(false));

        let root = v.get("root").unwrap();
        assert_eq!(root.get("name").and_then(Json::as_str), Some("request"));
        let attrs = root.get("attrs").unwrap();
        assert_eq!(attrs.get("traffic_epoch").and_then(Json::as_str), Some("0"));
        assert!(attrs.get("cache_key").is_some(), "{}", tree.body);

        let children = root.get("children").unwrap().as_array().unwrap();
        let named = |name: &str| -> Vec<&Json> {
            children
                .iter()
                .filter(|c| c.get("name").and_then(Json::as_str) == Some(name))
                .collect()
        };
        for stage in ["admission", "cache_probe", "prepare", "assemble"] {
            assert_eq!(named(stage).len(), 1, "missing {stage}: {}", tree.body);
        }
        assert_eq!(
            named("assemble")[0]
                .get("attrs")
                .unwrap()
                .get("outcome")
                .and_then(Json::as_str),
            Some("degraded")
        );

        // Four first attempts plus the failed lane's retry.
        let lanes = named("lane");
        assert_eq!(lanes.len(), 5, "{}", tree.body);
        let retry = lanes
            .iter()
            .find(|l| l.get("attrs").unwrap().get("retry").is_some())
            .expect("retry lane span");
        let retry_attrs = retry.get("attrs").unwrap();
        assert_eq!(
            retry_attrs.get("technique").and_then(Json::as_str),
            Some("penalty")
        );
        assert_eq!(retry_attrs.get("attempt").and_then(Json::as_str), Some("2"));
        assert_eq!(
            retry_attrs.get("fault_injected").and_then(Json::as_str),
            Some("injected fault at lane.penalty: boom")
        );
        assert_eq!(retry.get("status").and_then(Json::as_str), Some("failed"));
        for lane in &lanes {
            let attrs = lane.get("attrs").unwrap();
            assert!(attrs.get("technique").is_some(), "{}", tree.body);
            // First attempts carry the breaker state at submit; retries
            // carry their backoff instead.
            assert!(
                attrs.get("breaker").is_some() || attrs.get("backoff_ms").is_some(),
                "{}",
                tree.body
            );
            // Every executed lane records its retroactive queue-wait
            // child (a short-circuit would not, but none occur here).
            let queues = lane.get("children").unwrap().as_array().unwrap();
            assert_eq!(
                queues
                    .iter()
                    .filter(|c| c.get("name").and_then(Json::as_str) == Some("queue"))
                    .count(),
                1,
                "{}",
                tree.body
            );
        }

        // The listing finds it through every filter, and misses it when
        // a filter excludes it.
        let hit = |query: &str| -> usize {
            let resp = app.handle("GET", &format!("/api/debug/traces{query}"), "");
            assert_eq!(resp.status, 200, "{query}: {}", resp.body);
            let v = json::parse(&resp.body).unwrap();
            v.get("traces")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .filter(|t| t.get("trace_id").and_then(Json::as_str) == Some(&id.to_string()))
                .count()
        };
        assert_eq!(hit(""), 1);
        assert_eq!(hit("?status=degraded"), 1);
        assert_eq!(hit("?technique=penalty&min_ms=0"), 1);
        assert_eq!(hit("?status=failed"), 0);
        assert_eq!(hit("?min_ms=600000"), 0);
        assert_eq!(hit("?technique=nonexistent"), 0);

        // Filter hygiene: typos are 400s, not empty result sets.
        assert_eq!(
            app.handle("GET", "/api/debug/traces?min_ms=x", "").status,
            400
        );
        assert_eq!(
            app.handle("GET", "/api/debug/traces?status=bogus", "")
                .status,
            400
        );
        assert_eq!(
            app.handle("GET", "/api/debug/traces?nope=1", "").status,
            400
        );

        // Trace lookup hygiene.
        assert_eq!(app.handle("GET", "/api/trace/zzz", "").status, 400);
        assert_eq!(
            app.handle("GET", "/api/trace/00000000000000ff", "").status,
            404
        );
    }

    /// A shed request (503) still carries a resolvable trace id: the
    /// failed tail rule keeps the trace, whose admission span names the
    /// shed.
    #[test]
    fn shed_requests_carry_a_resolvable_trace_id() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            max_inflight: 1,
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        let _slot = app.service().admission().try_acquire().unwrap();
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 503, "{}", resp.body);
        let v = json::parse(&resp.body).unwrap();
        let id = v
            .get("trace_id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(resp.trace_id.as_deref(), Some(id.as_str()));

        let tree = app.handle("GET", &format!("/api/trace/{id}"), "");
        assert_eq!(tree.status, 200, "{}", tree.body);
        let v = json::parse(&tree.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("failed"));
        let root = v.get("root").unwrap();
        let admission = root
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("admission"))
            .expect("admission span");
        assert_eq!(
            admission
                .get("attrs")
                .unwrap()
                .get("outcome")
                .and_then(Json::as_str),
            Some("shed")
        );
    }

    /// With tracing disabled, responses still mint trace ids (clients
    /// can log them uniformly) but the debug endpoints answer 404.
    #[test]
    fn disabled_tracing_still_mints_ids_but_hides_the_debug_endpoints() {
        let g = arp_citygen::generate(City::Melbourne, Scale::Small, 12);
        let config = arp_serve::ServeConfig {
            trace: arp_obs::TraceConfig::disabled(),
            ..arp_serve::ServeConfig::default()
        };
        let app = DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, 12), config);
        let resp = app.handle("POST", "/api/route", &route_body(&app));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let id = served_trace_id(&resp);
        assert_eq!(app.handle("GET", "/api/debug/traces", "").status, 404);
        assert_eq!(
            app.handle("GET", &format!("/api/trace/{id}"), "").status,
            404
        );
    }

    #[test]
    fn trace_id_header_is_written_on_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut resp = HttpResponse::ok_json(Json::object([("ok", Json::Bool(true))]));
            resp.trace_id = Some("00000000deadbeef".to_string());
            write_response(&mut stream, &resp).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        writer.join().unwrap();
        assert!(
            buf.contains("X-Arp-Trace-Id: 00000000deadbeef\r\n"),
            "{buf}"
        );
    }
}
