//! GeoJSON export of query responses — lets any external map tool render
//! what the demo UI shows.

use crate::json::Json;
use crate::query::QueryResponse;

/// Converts a [`QueryResponse`] into a GeoJSON `FeatureCollection` string.
///
/// Every route becomes a `LineString` feature with `approach`, `rank`,
/// `minutes` and `stroke` (color) properties, so the output drops straight
/// into geojson.io or Leaflet.
pub fn response_to_geojson(resp: &QueryResponse) -> String {
    let mut features = Vec::new();
    for approach in &resp.approaches {
        for (rank, route) in approach.routes.iter().enumerate() {
            let coords = Json::Array(
                route
                    .polyline
                    .iter()
                    .map(|p| Json::Array(vec![Json::Number(p.lon), Json::Number(p.lat)]))
                    .collect(),
            );
            let geometry =
                Json::object([("type", Json::str("LineString")), ("coordinates", coords)]);
            let properties = Json::object([
                ("approach", Json::str(approach.label.to_string())),
                ("rank", Json::Number(rank as f64)),
                ("minutes", Json::Number(route.minutes as f64)),
                ("stroke", Json::str(route.color)),
            ]);
            features.push(Json::object([
                ("type", Json::str("Feature")),
                ("geometry", geometry),
                ("properties", properties),
            ]));
        }
    }
    Json::object([
        ("type", Json::str("FeatureCollection")),
        ("features", Json::Array(features)),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::query::QueryProcessor;
    use arp_citygen::{City, Scale};
    use arp_roadnet::geo::Point;

    #[test]
    fn geojson_is_valid_and_complete() {
        let g = arp_citygen::generate(City::Copenhagen, Scale::Small, 9);
        let qp = QueryProcessor::new(g.name.clone(), g.network, 9);
        let bb = qp.network().bbox();
        let a = Point::new(
            bb.min_lon + bb.width_deg() * 0.3,
            bb.min_lat + bb.height_deg() * 0.3,
        );
        let b = Point::new(
            bb.min_lon + bb.width_deg() * 0.7,
            bb.min_lat + bb.height_deg() * 0.7,
        );
        let resp = qp.process(a, b).unwrap();
        let text = response_to_geojson(&resp);
        let parsed = json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("type").unwrap().as_str(),
            Some("FeatureCollection")
        );
        let features = parsed.get("features").unwrap().as_array().unwrap();
        let total_routes: usize = resp.approaches.iter().map(|a| a.routes.len()).sum();
        assert_eq!(features.len(), total_routes);
        for f in features {
            assert_eq!(f.get("type").unwrap().as_str(), Some("Feature"));
            let geom = f.get("geometry").unwrap();
            assert_eq!(geom.get("type").unwrap().as_str(), Some("LineString"));
            assert!(geom.get("coordinates").unwrap().as_array().unwrap().len() >= 2);
            let props = f.get("properties").unwrap();
            assert!(props.get("minutes").unwrap().as_f64().unwrap() > 0.0);
            let label = props.get("approach").unwrap().as_str().unwrap();
            assert!(["A", "B", "C", "D"].contains(&label));
        }
    }
}
