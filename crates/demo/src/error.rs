//! Error type for the demo system.

use std::fmt;

/// Errors raised by the demo query processor and server.
#[derive(Debug)]
pub enum DemoError {
    /// A clicked location is outside the study rectangle.
    OutOfArea {
        /// Which endpoint ("source" or "target").
        which: &'static str,
    },
    /// No vertex within matching distance of the clicked location.
    NoNearbyRoad {
        /// Which endpoint.
        which: &'static str,
    },
    /// Source and target matched to the same vertex.
    SameLocation,
    /// Route computation failed.
    Routing(arp_core::CoreError),
    /// A malformed API request.
    BadRequest(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemoError::OutOfArea { which } => {
                write!(f, "{which} location is outside the study area")
            }
            DemoError::NoNearbyRoad { which } => {
                write!(f, "no road near the {which} location")
            }
            DemoError::SameLocation => write!(f, "source and target match the same road vertex"),
            DemoError::Routing(e) => write!(f, "routing failed: {e}"),
            DemoError::BadRequest(m) => write!(f, "bad request: {m}"),
            DemoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl DemoError {
    /// Whether retrying the same operation could plausibly succeed —
    /// the serving layer's retry gate. Only an interrupted routing
    /// computation ([`arp_core::CoreError::is_transient`]) and I/O
    /// failures qualify; everything else is a property of the request
    /// and fails identically on every attempt.
    pub fn is_transient(&self) -> bool {
        match self {
            DemoError::Routing(e) => e.is_transient(),
            DemoError::Io(_) => true,
            DemoError::OutOfArea { .. }
            | DemoError::NoNearbyRoad { .. }
            | DemoError::SameLocation
            | DemoError::BadRequest(_) => false,
        }
    }
}

impl std::error::Error for DemoError {}

impl From<arp_core::CoreError> for DemoError {
    fn from(e: arp_core::CoreError) -> Self {
        DemoError::Routing(e)
    }
}

impl From<std::io::Error> for DemoError {
    fn from(e: std::io::Error) -> Self {
        DemoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DemoError::OutOfArea { which: "source" }
            .to_string()
            .contains("source"));
        assert!(DemoError::SameLocation.to_string().contains("same"));
        assert!(DemoError::BadRequest("x".into()).to_string().contains("x"));
    }

    #[test]
    fn transience_follows_the_core_error() {
        assert!(DemoError::Routing(arp_core::CoreError::Interrupted).is_transient());
        assert!(DemoError::Io(std::io::Error::other("disk")).is_transient());
        assert!(!DemoError::SameLocation.is_transient());
        assert!(!DemoError::BadRequest("x".into()).is_transient());
        assert!(!DemoError::Routing(arp_core::CoreError::Unreachable {
            source: arp_roadnet::ids::NodeId(1),
            target: arp_roadnet::ids::NodeId(2),
        })
        .is_transient());
    }
}
