//! The demo's single-page UI (Figs. 2–3 of the paper), self-contained —
//! no external tiles or libraries. An SVG canvas draws a down-sampled
//! street map; the user clicks source and target, the four approaches'
//! routes render in separate panels labelled A–D, and the feedback form
//! submits 1–5 ratings plus the residency question.

/// Renders the index page for a city.
pub fn index_page(city: &str) -> String {
    let template = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Alternative Routes Demo — __CITY__</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 1rem; background: #fafafa; color: #222; }
  h1 { font-size: 1.3rem; }
  #map { background: #fff; border: 1px solid #ccc; cursor: crosshair; }
  .net { stroke: #d8d8d8; stroke-width: 0.8; }
  .panels { display: grid; grid-template-columns: repeat(2, minmax(280px, 1fr)); gap: 0.8rem; margin-top: 1rem; }
  .panel { background: #fff; border: 1px solid #ccc; padding: 0.4rem; }
  .panel h2 { font-size: 1rem; margin: 0.2rem 0; }
  form { margin-top: 1rem; background: #fff; border: 1px solid #ccc; padding: 0.8rem; max-width: 36rem; }
  .ratingrow { margin: 0.3rem 0; }
  #status { color: #555; min-height: 1.4em; }
  button { padding: 0.4rem 1rem; }
</style>
</head>
<body>
<h1>Comparing Alternative Route Planning Techniques — __CITY__</h1>
<p>Click a <b>source</b> and then a <b>target</b> on the map, then press <i>Get routes</i>.
Rate each approach (1&ndash;5, higher is better). Approaches are anonymized as A&ndash;D.</p>
<svg id="map" width="820" height="620"></svg>
<div><button id="go" disabled>Get routes</button> <button id="clear">Clear</button> <span id="status"></span></div>
<div class="panels" id="panels"></div>
<form id="feedback" style="display:none">
  <h2>Rate each approach (Fig. 3)</h2>
  <div id="ratings"></div>
  <div class="ratingrow"><label><input type="checkbox" id="resident"> I am currently living (or have lived) in __CITY__</label></div>
  <div class="ratingrow"><input type="text" id="comment" placeholder="Optional comment" size="48"></div>
  <button type="submit">Submit Rating</button>
</form>
<script>
"use strict";
const svg = document.getElementById("map");
const W = 820, H = 620;
let meta = null, clicks = [], lastFastest = 0;

function xOf(lon) { return (lon - meta.min_lon) / (meta.max_lon - meta.min_lon) * W; }
function yOf(lat) { return H - (lat - meta.min_lat) / (meta.max_lat - meta.min_lat) * H; }
function lonOf(x) { return meta.min_lon + x / W * (meta.max_lon - meta.min_lon); }
function latOf(y) { return meta.min_lat + (H - y) / H * (meta.max_lat - meta.min_lat); }

function el(name, attrs) {
  const e = document.createElementNS("http://www.w3.org/2000/svg", name);
  for (const k in attrs) e.setAttribute(k, attrs[k]);
  return e;
}

async function boot() {
  meta = await (await fetch("/api/meta")).json();
  const net = await (await fetch("/api/network")).json();
  for (const [alon, alat, blon, blat] of net.segments) {
    svg.appendChild(el("line", {x1: xOf(alon), y1: yOf(alat), x2: xOf(blon), y2: yOf(blat), class: "net"}));
  }
  document.getElementById("status").textContent = "Map loaded. Click source, then target.";
}

svg.addEventListener("click", ev => {
  if (!meta || clicks.length >= 2) return;
  const r = svg.getBoundingClientRect();
  const x = ev.clientX - r.left, y = ev.clientY - r.top;
  clicks.push([lonOf(x), latOf(y)]);
  svg.appendChild(el("circle", {cx: x, cy: y, r: 6, fill: clicks.length === 1 ? "#1a67d6" : "#c0392b"}));
  document.getElementById("go").disabled = clicks.length !== 2;
});

document.getElementById("clear").addEventListener("click", () => location.reload());

document.getElementById("go").addEventListener("click", async () => {
  const [s, t] = clicks;
  document.getElementById("status").textContent = "Computing routes…";
  const resp = await fetch("/api/route", {method: "POST", body: JSON.stringify({slon: s[0], slat: s[1], tlon: t[0], tlat: t[1]})});
  const data = await resp.json();
  if (data.error) { document.getElementById("status").textContent = data.error; return; }
  lastFastest = data.fastest_minutes;
  const panels = document.getElementById("panels");
  panels.innerHTML = "";
  for (const a of data.approaches) {
    const div = document.createElement("div");
    div.className = "panel";
    const mins = a.routes.map(r => r.minutes + " min").join(", ");
    div.innerHTML = "<h2>Approach " + a.label + "</h2><div>" + mins + "</div>";
    const s2 = el("svg", {width: 380, height: 280, viewBox: "0 0 " + W + " " + H});
    for (const r of a.routes) {
      const pts = r.polyline.map(p => xOf(p[0]).toFixed(1) + "," + yOf(p[1]).toFixed(1)).join(" ");
      s2.appendChild(el("polyline", {points: pts, fill: "none", stroke: r.color, "stroke-width": 5}));
    }
    div.appendChild(s2);
    panels.appendChild(div);
  }
  const ratings = document.getElementById("ratings");
  ratings.innerHTML = "";
  for (const a of data.approaches) {
    const row = document.createElement("div");
    row.className = "ratingrow";
    row.innerHTML = "Approach " + a.label + ": " +
      [1,2,3,4,5].map(v => '<label><input type="radio" name="r' + a.label + '" value="' + v + '">' + v + "</label>").join(" ");
    ratings.appendChild(row);
  }
  document.getElementById("feedback").style.display = "block";
  document.getElementById("status").textContent = "Routes shown. Please rate each approach.";
});

document.getElementById("feedback").addEventListener("submit", async ev => {
  ev.preventDefault();
  const val = l => { const c = document.querySelector('input[name="r' + l + '"]:checked'); return c ? +c.value : null; };
  const body = {a: val("A"), b: val("B"), c: val("C"), d: val("D"),
    resident: document.getElementById("resident").checked,
    fastest_minutes: lastFastest,
    comment: document.getElementById("comment").value};
  if (body.a === null || body.b === null || body.c === null || body.d === null) {
    document.getElementById("status").textContent = "Please rate all four approaches."; return;
  }
  const resp = await fetch("/api/rate", {method: "POST", body: JSON.stringify(body)});
  const data = await resp.json();
  document.getElementById("status").textContent = data.ok ? "Thank you! Responses so far: " + data.total_responses : data.error;
});

boot();
</script>
</body>
</html>
"##;
    template.replace("__CITY__", city)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_contains_city_and_hooks() {
        let page = index_page("Dhaka");
        assert!(page.contains("Dhaka"));
        assert!(!page.contains("__CITY__"));
        for hook in [
            "/api/meta",
            "/api/network",
            "/api/route",
            "/api/rate",
            "Submit Rating",
        ] {
            assert!(page.contains(hook), "missing {hook}");
        }
    }

    #[test]
    fn page_is_blinded() {
        // The page must never leak approach identities.
        let page = index_page("Melbourne");
        for name in ["Google", "Plateau", "Dissimilarity", "Penalty"] {
            assert!(!page.contains(name), "page leaks {name}");
        }
    }
}
