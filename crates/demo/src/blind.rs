//! A–D blinding of the four approaches.
//!
//! "The approaches are named A-D … to hide the identities of the
//! approaches from the users, to avoid any biases or preconceived
//! notions" (§3). The paper uses a fixed assignment (A: Google Maps,
//! B: Plateaus, C: Dissimilarity, D: Penalty); this module supports both
//! that fixed assignment and a per-session shuffled one, keeping the
//! unblinding map server-side.

use arp_core::provider::ProviderKind;

/// Blind labels shown to participants.
pub const LABELS: [char; 4] = ['A', 'B', 'C', 'D'];

/// A server-side mapping between blind labels and approaches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blinding {
    /// `order[i]` is the approach shown under label `LABELS[i]`.
    order: [ProviderKind; 4],
}

impl Blinding {
    /// The paper's fixed assignment.
    pub fn paper() -> Blinding {
        Blinding {
            order: ProviderKind::ALL,
        }
    }

    /// A deterministic per-session shuffle (Fisher–Yates driven by
    /// SplitMix64 on the session seed).
    pub fn shuffled(seed: u64) -> Blinding {
        let mut order = ProviderKind::ALL;
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        for i in (1..4usize).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Blinding { order }
    }

    /// The approach behind a label.
    pub fn unblind(&self, label: char) -> Option<ProviderKind> {
        let idx = LABELS.iter().position(|&l| l == label)?;
        Some(self.order[idx])
    }

    /// The label assigned to an approach.
    pub fn label_of(&self, kind: ProviderKind) -> char {
        let idx = self
            .order
            .iter()
            .position(|&k| k == kind)
            .expect("every kind is in the order");
        LABELS[idx]
    }

    /// Approaches in label order.
    pub fn order(&self) -> &[ProviderKind; 4] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_assignment_is_fixed() {
        let b = Blinding::paper();
        assert_eq!(b.unblind('A'), Some(ProviderKind::GoogleLike));
        assert_eq!(b.unblind('B'), Some(ProviderKind::Plateaus));
        assert_eq!(b.unblind('C'), Some(ProviderKind::Dissimilarity));
        assert_eq!(b.unblind('D'), Some(ProviderKind::Penalty));
        assert_eq!(b.unblind('E'), None);
    }

    #[test]
    fn labels_roundtrip() {
        for blinding in [
            Blinding::paper(),
            Blinding::shuffled(7),
            Blinding::shuffled(99),
        ] {
            for kind in ProviderKind::ALL {
                let label = blinding.label_of(kind);
                assert_eq!(blinding.unblind(label), Some(kind));
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic_and_varies() {
        assert_eq!(Blinding::shuffled(1), Blinding::shuffled(1));
        // Some pair of seeds must differ (4! = 24 permutations).
        let distinct = (0..10u64).map(Blinding::shuffled).collect::<Vec<_>>();
        assert!(distinct.iter().any(|b| b != &distinct[0]));
    }

    #[test]
    fn every_shuffle_is_a_permutation() {
        for seed in 0..50u64 {
            let b = Blinding::shuffled(seed);
            let mut kinds: Vec<ProviderKind> = b.order().to_vec();
            kinds.sort_by_key(|k| format!("{k:?}"));
            let mut expected: Vec<ProviderKind> = ProviderKind::ALL.to_vec();
            expected.sort_by_key(|k| format!("{k:?}"));
            assert_eq!(kinds, expected);
        }
    }
}
