//! The demo's [`RouteBackend`]: how `arp-serve` drives the query
//! processor.
//!
//! Each of the four techniques is one *lane*, in blinding order, so the
//! serving layer computes them in parallel and caches them independently
//! — a repeat query recomputes nothing, and a query that shares endpoints
//! with a cached one recomputes only the lanes that expired.

use std::sync::Arc;

use arp_core::SearchBudget;
use arp_serve::{CancelToken, Deadline, LaneError, LaneOutcome, LaneStatus, RouteBackend};

use crate::query::{ApproachRoutes, PreparedQuery, QueryProcessor, QueryResponse};

/// Adapts a [`QueryProcessor`] to the serving layer's lane model.
pub struct DemoBackend {
    processor: Arc<QueryProcessor>,
}

impl DemoBackend {
    /// Wraps a shared processor.
    pub fn new(processor: Arc<QueryProcessor>) -> DemoBackend {
        DemoBackend { processor }
    }

    /// The wrapped processor.
    pub fn processor(&self) -> &QueryProcessor {
        &self.processor
    }
}

impl RouteBackend for DemoBackend {
    type Request = PreparedQuery;
    type Part = ApproachRoutes;
    type Response = QueryResponse;

    fn lanes(&self) -> usize {
        self.processor.technique_slots()
    }

    fn lane_name(&self, lane: usize) -> String {
        // The technique slug (server-side identity: breakers, metrics,
        // `lane.<slug>` failpoints). Responses only ever carry the blind
        // label.
        self.processor.slot_technique(lane).to_string()
    }

    fn lane_key(&self, request: &PreparedQuery, lane: usize) -> String {
        // Keyed on the snapped endpoints plus the request's pinned traffic
        // epoch: a tick moves every key forward, so stale routes can never
        // be served while untouched shards simply age out. The substrate is
        // derived state and stays out of the key; the cache probe runs
        // before `prepare` anyway, which is exactly why the epoch is pinned
        // at request construction rather than in `prepare`.
        self.processor
            .slot_cache_key_at(&request.snapped, lane, request.epoch())
    }

    fn prepare(
        &self,
        mut request: PreparedQuery,
        token: &CancelToken,
        deadline: &Deadline,
    ) -> PreparedQuery {
        // Build the shared substrate once, under the same cancel token the
        // lanes observe plus whatever headroom the deadline leaves. A
        // build that cannot finish (tripped token, expired or zero-headroom
        // deadline, unroutable pair) leaves `substrate` as `None` and the
        // lanes self-compute — the pre-substrate behaviour.
        if request.substrate.is_none() {
            let mut budget = SearchBudget::with_cancel_flag(token.flag());
            if !deadline.is_unbounded() {
                match deadline.remaining() {
                    Some(headroom) => budget = budget.with_deadline(headroom),
                    // Already expired: don't start a doomed build.
                    None => return request,
                }
            }
            let substrate = self.processor.prepare_substrate(&request, &budget);
            request.substrate = substrate;
        }
        request
    }

    fn compute(&self, request: &PreparedQuery, lane: usize) -> Result<ApproachRoutes, String> {
        self.processor
            .compute_slot_prepared(request, lane, &SearchBudget::unlimited())
            .map(|(part, _)| part)
            .map_err(|e| e.to_string())
    }

    fn assemble(&self, request: &PreparedQuery, parts: Vec<ApproachRoutes>) -> QueryResponse {
        let mut response = self.processor.assemble(&request.snapped, parts);
        response.epoch = request.epoch();
        response
    }

    fn compute_cancellable(
        &self,
        request: &PreparedQuery,
        lane: usize,
        token: &CancelToken,
    ) -> Result<LaneOutcome<ApproachRoutes>, LaneError> {
        // The serving layer's cancel token becomes the technique's search
        // budget: a tripped deadline stops the in-flight search within one
        // budget-check interval, and the routes admitted so far come back
        // as a truncated lane.
        let budget = SearchBudget::with_cancel_flag(token.flag());
        match self.processor.compute_slot_prepared(request, lane, &budget) {
            Ok((part, true)) => Ok(LaneOutcome::Truncated(part)),
            Ok((part, false)) => Ok(LaneOutcome::Complete(part)),
            // Transience follows the error: an interrupted search or an
            // I/O failure earns a retry, an unroutable query does not.
            Err(e) if e.is_transient() => Err(LaneError::transient(e.to_string())),
            Err(e) => Err(LaneError::permanent(e.to_string())),
        }
    }

    fn assemble_partial(
        &self,
        request: &PreparedQuery,
        parts: Vec<Option<ApproachRoutes>>,
    ) -> Option<QueryResponse> {
        let mut response = self.processor.assemble_partial(&request.snapped, parts)?;
        response.epoch = request.epoch();
        Some(response)
    }

    fn assemble_degraded(
        &self,
        request: &PreparedQuery,
        parts: Vec<Option<ApproachRoutes>>,
        statuses: &[LaneStatus],
    ) -> Option<QueryResponse> {
        let mut response = self
            .processor
            .assemble_degraded(&request.snapped, parts, statuses)?;
        response.epoch = request.epoch();
        Some(response)
    }

    fn trace_attrs(&self, request: &PreparedQuery) -> Vec<(&'static str, String)> {
        // Root-span identity: the pinned traffic epoch (via the
        // overlay's own hook, so the attribute key stays in one place)
        // and a representative cache key covering city + snapped
        // endpoints + epoch.
        let epoch_attr = match &request.overlay {
            Some(overlay) => overlay.trace_attr(),
            None => ("traffic_epoch", "0".to_string()),
        };
        vec![
            epoch_attr,
            (
                "cache_key",
                self.processor
                    .slot_cache_key_at(&request.snapped, 0, request.epoch()),
            ),
        ]
    }

    fn prepare_attrs(&self, request: &PreparedQuery) -> Vec<(&'static str, String)> {
        let mut attrs = vec![(
            "substrate",
            if request.substrate.is_some() {
                "ready"
            } else {
                "none"
            }
            .to_string(),
        )];
        if request.substrate.is_some() {
            // Which builder served the build: the CH fast path runs iff
            // the index tier has a metric published for this request's
            // pinned epoch (checked without touching the
            // queries/fallbacks counters the real build feeds).
            let ch = self
                .processor
                .ch_index()
                .is_some_and(|index| index.ready_epoch() == request.epoch());
            attrs.push(("builder", if ch { "ch" } else { "dijkstra" }.to_string()));
        }
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};
    use arp_roadnet::geo::Point;
    use arp_serve::{RouteService, ServeConfig, ServeMetrics};

    fn processor() -> Arc<QueryProcessor> {
        let g = arp_citygen::generate(City::Dhaka, Scale::Small, 9);
        Arc::new(QueryProcessor::new(g.name.clone(), g.network, 9))
    }

    fn inner_points(qp: &QueryProcessor) -> (Point, Point) {
        let bb = qp.network().bbox();
        (
            Point::new(
                bb.min_lon + bb.width_deg() * 0.3,
                bb.min_lat + bb.height_deg() * 0.6,
            ),
            Point::new(
                bb.min_lon + bb.width_deg() * 0.75,
                bb.min_lat + bb.height_deg() * 0.75,
            ),
        )
    }

    #[test]
    fn served_response_matches_the_serial_reference() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let serial = qp.process(a, b).unwrap();

        let service = RouteService::with_metrics(
            DemoBackend::new(Arc::clone(&qp)),
            ServeConfig::default(),
            ServeMetrics::default(),
        );
        let snapped = qp.snap(a, b).unwrap();
        let served = service.route(PreparedQuery::new(snapped)).unwrap();

        assert_eq!(served.source, serial.source);
        assert_eq!(served.target, serial.target);
        assert_eq!(served.fastest_minutes, serial.fastest_minutes);
        assert_eq!(served.approaches.len(), serial.approaches.len());
        for (x, y) in served.approaches.iter().zip(&serial.approaches) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.routes.len(), y.routes.len());
            for (rx, ry) in x.routes.iter().zip(&y.routes) {
                assert_eq!(rx.minutes, ry.minutes);
                assert_eq!(rx.cost_ms, ry.cost_ms);
                assert_eq!(rx.polyline, ry.polyline);
                assert_eq!(rx.color, ry.color);
            }
        }
    }

    #[test]
    fn cancelled_token_truncates_lanes_and_partial_assembly_marks_it() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let prepared = PreparedQuery::new(q);
        let backend = DemoBackend::new(Arc::clone(&qp));

        // A lane that finished before the deadline…
        let full = backend.compute(&prepared, 0).unwrap();
        // …and one whose token was already tripped when it started: the
        // budget interrupts it immediately, yielding an empty partial.
        let token = CancelToken::new();
        token.cancel();
        let outcome = backend.compute_cancellable(&prepared, 1, &token).unwrap();
        let LaneOutcome::Truncated(partial) = outcome else {
            panic!("cancelled lane must come back truncated");
        };
        assert!(partial.routes.is_empty());

        // Partial assembly keeps the blind A-D structure and flags the
        // truncation; abandoned slots keep their label with no routes.
        let full_routes = full.routes.len();
        let parts = vec![Some(full), Some(partial), None, None];
        let resp = qp.assemble_partial(&q, parts).expect("one lane finished");
        assert!(resp.truncated);
        assert_eq!(resp.approaches.len(), 4);
        assert_eq!(resp.approaches[0].routes.len(), full_routes);
        assert!(resp.approaches[2].routes.is_empty());
        let labels: Vec<char> = resp.approaches.iter().map(|a| a.label).collect();
        assert_eq!(labels, vec!['A', 'B', 'C', 'D']);

        // Nothing finished at all → no partial response; the serving
        // layer degrades that to DeadlineExceeded (HTTP 504).
        assert!(qp
            .assemble_partial(&q, vec![None, None, None, None])
            .is_none());
    }

    #[test]
    fn untripped_token_leaves_lanes_complete_and_identical() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let prepared = PreparedQuery::new(q);
        let backend = DemoBackend::new(Arc::clone(&qp));
        let token = CancelToken::new();
        for lane in 0..backend.lanes() {
            let plain = backend.compute(&prepared, lane).unwrap();
            let LaneOutcome::Complete(budgeted) = backend
                .compute_cancellable(&prepared, lane, &token)
                .unwrap()
            else {
                panic!("untripped lane {lane} must complete");
            };
            assert_eq!(plain.label, budgeted.label);
            assert_eq!(plain.routes.len(), budgeted.routes.len());
            for (x, y) in plain.routes.iter().zip(&budgeted.routes) {
                assert_eq!(x.cost_ms, y.cost_ms);
                assert_eq!(x.polyline, y.polyline);
            }
        }
    }

    #[test]
    fn prepare_builds_the_substrate_and_lanes_reuse_it() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let backend = DemoBackend::new(Arc::clone(&qp));
        let token = CancelToken::new();

        let prepared = backend.prepare(PreparedQuery::new(q), &token, &Deadline::never());
        assert!(prepared.substrate.is_some(), "healthy build must succeed");
        assert_eq!(
            qp.registry()
                .counter_value("arp_substrate_builds_total", &[]),
            1
        );

        // Every lane computes identically to the self-computed path, and
        // the three substrate consumers count their reuse.
        for lane in 0..backend.lanes() {
            let fed = backend.compute(&prepared, lane).unwrap();
            let solo = qp.compute_slot(&q, lane).unwrap();
            assert_eq!(fed.label, solo.label);
            assert_eq!(fed.routes.len(), solo.routes.len());
            for (x, y) in fed.routes.iter().zip(&solo.routes) {
                assert_eq!(x.cost_ms, y.cost_ms);
                assert_eq!(x.polyline, y.polyline);
            }
        }
        for technique in ["plateaus", "dissimilarity", "penalty"] {
            assert_eq!(
                qp.registry()
                    .counter_value("arp_substrate_reuse_total", &[("technique", technique)]),
                1,
                "{technique}"
            );
        }
        assert_eq!(
            qp.registry()
                .counter_value("arp_substrate_reuse_total", &[("technique", "google_like")]),
            0,
            "the Google-like lane runs on private weights and never reuses"
        );
        // Re-resolving the gauge returns the same shared instrument.
        let saved = qp
            .registry()
            .gauge("arp_substrate_saved_settled_nodes", "", &[]);
        assert!(saved.get() > 0, "reuse must record settled-node savings");
    }

    #[test]
    fn tripped_token_or_expired_deadline_skips_the_build() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let backend = DemoBackend::new(Arc::clone(&qp));

        // Zero-headroom deadline: the build is not even started.
        let token = CancelToken::new();
        let prepared = backend.prepare(
            PreparedQuery::new(q),
            &token,
            &Deadline::after(std::time::Duration::ZERO),
        );
        assert!(prepared.substrate.is_none());
        assert_eq!(
            qp.registry()
                .counter_value("arp_substrate_builds_total", &[]),
            0
        );

        // Already-tripped token: the build starts, trips at its first
        // budget check, and the lanes fall back to self-computing.
        let tripped = CancelToken::new();
        tripped.cancel();
        let prepared = backend.prepare(PreparedQuery::new(q), &tripped, &Deadline::never());
        assert!(prepared.substrate.is_none());
        assert_eq!(
            qp.registry()
                .counter_value("arp_substrate_build_failures_total", &[]),
            1
        );
        // The fallback path still serves: a fresh budget computes the lane.
        let fresh = CancelToken::new();
        let outcome = backend.compute_cancellable(&prepared, 0, &fresh).unwrap();
        assert!(matches!(outcome, LaneOutcome::Complete(_)));
    }

    #[test]
    fn disconnected_pair_degrades_per_lane_without_panicking() {
        use arp_roadnet::builder::{EdgeSpec, GraphBuilder};

        // Two components: {0,1} and {2,3}, no edges between them.
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(144.00, -37.00));
        let n1 = b.add_node(Point::new(144.01, -37.00));
        let n2 = b.add_node(Point::new(144.20, -37.20));
        let n3 = b.add_node(Point::new(144.21, -37.20));
        b.add_bidirectional(n0, n1, EdgeSpec::default());
        b.add_bidirectional(n2, n3, EdgeSpec::default());
        let net = b.build();
        let qp = Arc::new(QueryProcessor::new("Islands", net, 1));
        let backend = DemoBackend::new(Arc::clone(&qp));
        let q = crate::query::SnappedQuery {
            source: n0,
            target: n2,
        };

        // The substrate build fails cleanly (counted, not propagated)…
        let token = CancelToken::new();
        let prepared = backend.prepare(PreparedQuery::new(q), &token, &Deadline::never());
        assert!(prepared.substrate.is_none());
        assert_eq!(
            qp.registry()
                .counter_value("arp_substrate_build_failures_total", &[]),
            1
        );
        // …and each lane reports its own permanent error, exactly like
        // the pre-substrate pipeline.
        for lane in 0..backend.lanes() {
            let err = backend
                .compute_cancellable(&prepared, lane, &token)
                .expect_err("unroutable pair must fail the lane");
            assert!(!err.transient, "Unreachable is permanent, not retryable");
        }

        // End to end: the serving layer answers with an error response,
        // never a panic.
        let service = RouteService::with_metrics(
            DemoBackend::new(Arc::clone(&qp)),
            ServeConfig::default(),
            ServeMetrics::default(),
        );
        assert!(service.route(PreparedQuery::new(q)).is_err());
    }

    #[test]
    fn same_endpoint_pair_yields_no_substrate() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let same = crate::query::SnappedQuery {
            source: q.source,
            target: q.source,
        };
        assert!(qp
            .prepare_substrate(
                &PreparedQuery::new(same),
                &arp_core::SearchBudget::unlimited()
            )
            .is_none());
    }

    #[test]
    fn lane_keys_cover_city_endpoints_technique_and_k() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let prepared = PreparedQuery::new(q);
        let backend = DemoBackend::new(Arc::clone(&qp));
        let keys: Vec<String> = (0..backend.lanes())
            .map(|l| backend.lane_key(&prepared, l))
            .collect();
        assert_eq!(keys.len(), 4);
        for key in &keys {
            assert!(key.starts_with("Dhaka:"), "{key}");
            assert!(key.contains(&format!(":{}:", q.source.0)), "{key}");
        }
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(distinct.len(), 4, "technique must distinguish lane keys");
    }
}
