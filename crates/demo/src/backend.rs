//! The demo's [`RouteBackend`]: how `arp-serve` drives the query
//! processor.
//!
//! Each of the four techniques is one *lane*, in blinding order, so the
//! serving layer computes them in parallel and caches them independently
//! — a repeat query recomputes nothing, and a query that shares endpoints
//! with a cached one recomputes only the lanes that expired.

use std::sync::Arc;

use arp_core::SearchBudget;
use arp_serve::{CancelToken, LaneError, LaneOutcome, LaneStatus, RouteBackend};

use crate::query::{ApproachRoutes, QueryProcessor, QueryResponse, SnappedQuery};

/// Adapts a [`QueryProcessor`] to the serving layer's lane model.
pub struct DemoBackend {
    processor: Arc<QueryProcessor>,
}

impl DemoBackend {
    /// Wraps a shared processor.
    pub fn new(processor: Arc<QueryProcessor>) -> DemoBackend {
        DemoBackend { processor }
    }

    /// The wrapped processor.
    pub fn processor(&self) -> &QueryProcessor {
        &self.processor
    }
}

impl RouteBackend for DemoBackend {
    type Request = SnappedQuery;
    type Part = ApproachRoutes;
    type Response = QueryResponse;

    fn lanes(&self) -> usize {
        self.processor.technique_slots()
    }

    fn lane_name(&self, lane: usize) -> String {
        // The technique slug (server-side identity: breakers, metrics,
        // `lane.<slug>` failpoints). Responses only ever carry the blind
        // label.
        self.processor.slot_technique(lane).to_string()
    }

    fn lane_key(&self, request: &SnappedQuery, lane: usize) -> String {
        self.processor.slot_cache_key(request, lane)
    }

    fn compute(&self, request: &SnappedQuery, lane: usize) -> Result<ApproachRoutes, String> {
        self.processor
            .compute_slot(request, lane)
            .map_err(|e| e.to_string())
    }

    fn assemble(&self, request: &SnappedQuery, parts: Vec<ApproachRoutes>) -> QueryResponse {
        self.processor.assemble(request, parts)
    }

    fn compute_cancellable(
        &self,
        request: &SnappedQuery,
        lane: usize,
        token: &CancelToken,
    ) -> Result<LaneOutcome<ApproachRoutes>, LaneError> {
        // The serving layer's cancel token becomes the technique's search
        // budget: a tripped deadline stops the in-flight search within one
        // budget-check interval, and the routes admitted so far come back
        // as a truncated lane.
        let budget = SearchBudget::with_cancel_flag(token.flag());
        match self.processor.compute_slot_budgeted(request, lane, &budget) {
            Ok((part, true)) => Ok(LaneOutcome::Truncated(part)),
            Ok((part, false)) => Ok(LaneOutcome::Complete(part)),
            // Transience follows the error: an interrupted search or an
            // I/O failure earns a retry, an unroutable query does not.
            Err(e) if e.is_transient() => Err(LaneError::transient(e.to_string())),
            Err(e) => Err(LaneError::permanent(e.to_string())),
        }
    }

    fn assemble_partial(
        &self,
        request: &SnappedQuery,
        parts: Vec<Option<ApproachRoutes>>,
    ) -> Option<QueryResponse> {
        self.processor.assemble_partial(request, parts)
    }

    fn assemble_degraded(
        &self,
        request: &SnappedQuery,
        parts: Vec<Option<ApproachRoutes>>,
        statuses: &[LaneStatus],
    ) -> Option<QueryResponse> {
        self.processor.assemble_degraded(request, parts, statuses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_citygen::{City, Scale};
    use arp_roadnet::geo::Point;
    use arp_serve::{RouteService, ServeConfig, ServeMetrics};

    fn processor() -> Arc<QueryProcessor> {
        let g = arp_citygen::generate(City::Dhaka, Scale::Small, 9);
        Arc::new(QueryProcessor::new(g.name.clone(), g.network, 9))
    }

    fn inner_points(qp: &QueryProcessor) -> (Point, Point) {
        let bb = qp.network().bbox();
        (
            Point::new(
                bb.min_lon + bb.width_deg() * 0.3,
                bb.min_lat + bb.height_deg() * 0.6,
            ),
            Point::new(
                bb.min_lon + bb.width_deg() * 0.75,
                bb.min_lat + bb.height_deg() * 0.75,
            ),
        )
    }

    #[test]
    fn served_response_matches_the_serial_reference() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let serial = qp.process(a, b).unwrap();

        let service = RouteService::with_metrics(
            DemoBackend::new(Arc::clone(&qp)),
            ServeConfig::default(),
            ServeMetrics::default(),
        );
        let snapped = qp.snap(a, b).unwrap();
        let served = service.route(snapped).unwrap();

        assert_eq!(served.source, serial.source);
        assert_eq!(served.target, serial.target);
        assert_eq!(served.fastest_minutes, serial.fastest_minutes);
        assert_eq!(served.approaches.len(), serial.approaches.len());
        for (x, y) in served.approaches.iter().zip(&serial.approaches) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.routes.len(), y.routes.len());
            for (rx, ry) in x.routes.iter().zip(&y.routes) {
                assert_eq!(rx.minutes, ry.minutes);
                assert_eq!(rx.cost_ms, ry.cost_ms);
                assert_eq!(rx.polyline, ry.polyline);
                assert_eq!(rx.color, ry.color);
            }
        }
    }

    #[test]
    fn cancelled_token_truncates_lanes_and_partial_assembly_marks_it() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let backend = DemoBackend::new(Arc::clone(&qp));

        // A lane that finished before the deadline…
        let full = backend.compute(&q, 0).unwrap();
        // …and one whose token was already tripped when it started: the
        // budget interrupts it immediately, yielding an empty partial.
        let token = CancelToken::new();
        token.cancel();
        let outcome = backend.compute_cancellable(&q, 1, &token).unwrap();
        let LaneOutcome::Truncated(partial) = outcome else {
            panic!("cancelled lane must come back truncated");
        };
        assert!(partial.routes.is_empty());

        // Partial assembly keeps the blind A-D structure and flags the
        // truncation; abandoned slots keep their label with no routes.
        let full_routes = full.routes.len();
        let parts = vec![Some(full), Some(partial), None, None];
        let resp = qp.assemble_partial(&q, parts).expect("one lane finished");
        assert!(resp.truncated);
        assert_eq!(resp.approaches.len(), 4);
        assert_eq!(resp.approaches[0].routes.len(), full_routes);
        assert!(resp.approaches[2].routes.is_empty());
        let labels: Vec<char> = resp.approaches.iter().map(|a| a.label).collect();
        assert_eq!(labels, vec!['A', 'B', 'C', 'D']);

        // Nothing finished at all → no partial response; the serving
        // layer degrades that to DeadlineExceeded (HTTP 504).
        assert!(qp
            .assemble_partial(&q, vec![None, None, None, None])
            .is_none());
    }

    #[test]
    fn untripped_token_leaves_lanes_complete_and_identical() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let backend = DemoBackend::new(Arc::clone(&qp));
        let token = CancelToken::new();
        for lane in 0..backend.lanes() {
            let plain = backend.compute(&q, lane).unwrap();
            let LaneOutcome::Complete(budgeted) =
                backend.compute_cancellable(&q, lane, &token).unwrap()
            else {
                panic!("untripped lane {lane} must complete");
            };
            assert_eq!(plain.label, budgeted.label);
            assert_eq!(plain.routes.len(), budgeted.routes.len());
            for (x, y) in plain.routes.iter().zip(&budgeted.routes) {
                assert_eq!(x.cost_ms, y.cost_ms);
                assert_eq!(x.polyline, y.polyline);
            }
        }
    }

    #[test]
    fn lane_keys_cover_city_endpoints_technique_and_k() {
        let qp = processor();
        let (a, b) = inner_points(&qp);
        let q = qp.snap(a, b).unwrap();
        let backend = DemoBackend::new(Arc::clone(&qp));
        let keys: Vec<String> = (0..backend.lanes())
            .map(|l| backend.lane_key(&q, l))
            .collect();
        assert_eq!(keys.len(), 4);
        for key in &keys {
            assert!(key.starts_with("Dhaka:"), "{key}");
            assert!(key.contains(&format!(":{}:", q.source.0)), "{key}");
        }
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(distinct.len(), 4, "technique must distinguish lane keys");
    }
}
