#![warn(missing_docs)]
//! # arp-demo
//!
//! The paper's web-based demonstration system (§3, Figs. 2–3), rebuilt as
//! a dependency-free Rust service:
//!
//! * [`query`] — the query processor: geo-coordinate matching, the four
//!   approaches, OSM-priced travel times rounded to minutes,
//! * [`blind`] — A–D anonymization with the unblinding map kept
//!   server-side,
//! * [`index`] — the epoch-customizable CH index tier: a per-city
//!   topology customized per traffic epoch in the background, with a
//!   strict fall-back-to-Dijkstra readiness gate,
//! * [`store`] — the feedback form's response store (ratings, residency,
//!   comments) with CSV persistence,
//! * [`server`] — a small std-only HTTP server exposing the JSON API and
//!   the interactive map page ([`html`]),
//! * [`geojson`] / [`json`] — hand-rolled serialization for the API.
//!
//! ```no_run
//! use arp_citygen::{City, Scale};
//! use arp_demo::prelude::*;
//! use std::net::TcpListener;
//! use std::sync::Arc;
//!
//! let city = arp_citygen::generate(City::Melbourne, Scale::Medium, 42);
//! let app = Arc::new(DemoApp::new(QueryProcessor::new(city.name.clone(), city.network, 42)));
//! let listener = TcpListener::bind("127.0.0.1:8080").unwrap();
//! arp_demo::server::serve(app, listener).unwrap();
//! ```

pub mod backend;
pub mod blind;
pub mod error;
pub mod geojson;
pub mod html;
pub mod index;
pub mod json;
pub mod query;
pub mod server;
pub mod store;

pub use backend::DemoBackend;
pub use blind::Blinding;
pub use error::DemoError;
pub use geojson::response_to_geojson;
pub use index::IndexManager;
pub use query::{
    ApproachRoutes, PreparedQuery, QueryProcessor, QueryResponse, RouteInfo, SnappedQuery,
};
pub use server::{serve, serve_with_shutdown, DemoApp, HttpResponse};
pub use store::{ResponseStore, Submission};

/// Convenient glob import.
pub mod prelude {
    pub use crate::blind::Blinding;
    pub use crate::error::DemoError;
    pub use crate::geojson::response_to_geojson;
    pub use crate::query::{QueryProcessor, QueryResponse};
    pub use crate::server::{serve, serve_with_shutdown, DemoApp, HttpResponse};
    pub use crate::store::{ResponseStore, Submission};
}
