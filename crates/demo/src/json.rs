//! A minimal JSON value, serializer and parser.
//!
//! The demo's web API exchanges small JSON documents; hand-rolling ~200
//! lines avoids a serialization-framework dependency. Supports the full
//! JSON data model except exotic number formats (serializes via `f64`).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An object with runtime-computed keys (per-label lane status,
    /// per-technique breaker states).
    pub fn object_of(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}

fn write_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::String(s) => write_escaped(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c => {
                    // Re-decode UTF-8: step back and take the full char.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        self.pos -= 1;
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        let ch = rest.chars().next().unwrap();
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::object([
            ("name", Json::str("route")),
            ("minutes", Json::Number(24.0)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Array(vec![Json::str("a"), Json::str("b")])),
            ("none", Json::Null),
        ]);
        let text = v.to_string_compact();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Json::Number(24.0).to_string_compact(), "24");
        assert_eq!(Json::Number(24.5).to_string_compact(), "24.5");
        assert_eq!(Json::Number(-3.0).to_string_compact(), "-3");
    }

    #[test]
    fn string_escapes() {
        let v = Json::str("a\"b\\c\nd\te");
        let text = v.to_string_compact();
        assert_eq!(text, r#""a\"b\\c\nd\te""#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_roundtrip() {
        let v = Json::str("Mëlbourne → Dhâka ✓");
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(parse(r#""A""#).unwrap(), Json::str("A"));
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse("3.25").unwrap().as_f64(), Some(3.25));
        assert_eq!(parse("-17").unwrap().as_f64(), Some(-17.0));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":1} garbage").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Array(vec![]));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"s": "x", "n": 2, "b": true}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
