//! Acceptance tests of the epoch-customizable CH index tier.
//!
//! The contract under test, end to end: with the tier enabled, every
//! served response is **byte-identical** to what the plain Dijkstra
//! pipeline produces — for all four techniques, all three cities, under
//! the identity overlay and under live-traffic overlays — and whenever
//! the metric for a request's pinned epoch is not ready, the request is
//! served immediately off the Dijkstra fallback (counted, never blocked,
//! never an error). The adversarial mid-load test from the traffic
//! subsystem is repeated on the CH tier: no response may ever mix a
//! stale metric with a newer claimed epoch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use arp_citygen::{City, Scale};
use arp_demo::json::{self, Json};
use arp_demo::query::{QueryProcessor, QueryResponse};
use arp_demo::{DemoApp, DemoBackend};
use arp_roadnet::weight::Weight;
use arp_serve::{RouteService, ServeConfig, ServeMetrics};
use arp_traffic::TrafficDelta;

const READY_TIMEOUT: Duration = Duration::from_secs(60);

fn route_body(app: &DemoApp, sx: f64, sy: f64, tx: f64, ty: f64) -> String {
    let bb = app.processor.network().bbox();
    format!(
        r#"{{"slon": {}, "slat": {}, "tlon": {}, "tlat": {}}}"#,
        bb.min_lon + bb.width_deg() * sx,
        bb.min_lat + bb.height_deg() * sy,
        bb.min_lon + bb.width_deg() * tx,
        bb.min_lat + bb.height_deg() * ty,
    )
}

/// A served body with its per-request `trace_id` removed: every request
/// mints its own id, so cross-app byte comparisons go modulo that one
/// field (BTreeMap-backed objects re-serialize deterministically).
fn sans_trace_id(body: &str) -> String {
    let mut v = json::parse(body).expect("served body parses");
    if let Json::Object(map) = &mut v {
        assert!(
            map.remove("trace_id").is_some(),
            "every route body carries a trace_id: {body}"
        );
    }
    v.to_string_compact()
}

/// Field-by-field equality of two query responses, route geometry and
/// costs included. `QueryResponse` carries no `PartialEq` on purpose
/// (it is not a wire type), so the audit spells the comparison out.
fn assert_same_response(ch: &QueryResponse, plain: &QueryResponse, context: &str) {
    assert_eq!(ch.epoch, plain.epoch, "{context}: epoch");
    assert_eq!(
        ch.fastest_minutes, plain.fastest_minutes,
        "{context}: fastest"
    );
    assert_eq!(
        ch.approaches.len(),
        plain.approaches.len(),
        "{context}: approach count"
    );
    for (a, b) in ch.approaches.iter().zip(&plain.approaches) {
        assert_eq!(a.label, b.label, "{context}");
        assert_eq!(
            a.routes.len(),
            b.routes.len(),
            "{context}: label {}",
            a.label
        );
        for (x, y) in a.routes.iter().zip(&b.routes) {
            assert_eq!(x.minutes, y.minutes, "{context}: label {}", a.label);
            assert_eq!(x.cost_ms, y.cost_ms, "{context}: label {}", a.label);
            assert_eq!(x.edges, y.edges, "{context}: label {}", a.label);
            assert_eq!(x.polyline, y.polyline, "{context}: label {}", a.label);
            assert_eq!(x.color, y.color, "{context}: label {}", a.label);
        }
    }
}

/// The tentpole's acceptance property over the full HTTP surface: for
/// every city, the CH-tier app and the plain app serve **byte-identical**
/// `/api/route` bodies — first on the identity overlay (epoch 0), then
/// again after a traffic delta (slowdowns per category and per edge),
/// with the CH app's customization awaited so the fast path actually
/// serves.
#[test]
fn ch_served_bodies_are_byte_identical_across_cities_and_overlays() {
    for city in City::ALL {
        let make = |ch: bool| {
            let g = arp_citygen::generate(city, Scale::Tiny, 7);
            let qp = QueryProcessor::new(g.name.clone(), g.network, 7);
            let qp = if ch { qp.with_ch_index() } else { qp };
            DemoApp::with_config(qp, ServeConfig::default())
        };
        let plain = make(false);
        let fast = make(true);

        let pairs = [(0.25, 0.30, 0.75, 0.70), (0.70, 0.25, 0.30, 0.80)];
        for &(sx, sy, tx, ty) in &pairs {
            let body = route_body(&plain, sx, sy, tx, ty);
            let a = plain.handle("POST", "/api/route", &body);
            let b = fast.handle("POST", "/api/route", &body);
            assert_eq!(a.status, 200, "{city}: {}", a.body);
            assert_eq!(
                sans_trace_id(&a.body),
                sans_trace_id(&b.body),
                "{city}: epoch-0 bodies must match"
            );
        }

        // A non-identity overlay: category-wide and per-edge slowdowns.
        let delta = r#"{"delta": "cat:residential*1.7; edge:5*3.0"}"#;
        for app in [&plain, &fast] {
            let resp = app.handle("POST", "/api/traffic", delta);
            assert_eq!(resp.status, 200, "{city}: {}", resp.body);
        }
        let index = fast.processor.ch_index().expect("tier enabled");
        assert!(
            index.wait_ready(1, READY_TIMEOUT),
            "{city}: customization must reach epoch 1"
        );

        let queries_before = index.queries();
        for &(sx, sy, tx, ty) in &pairs {
            let body = route_body(&plain, sx, sy, tx, ty);
            let a = plain.handle("POST", "/api/route", &body);
            let b = fast.handle("POST", "/api/route", &body);
            assert_eq!(a.status, 200, "{city}: {}", a.body);
            assert_eq!(
                sans_trace_id(&a.body),
                sans_trace_id(&b.body),
                "{city}: epoch-1 bodies must match"
            );
            let v = json::parse(&a.body).unwrap();
            assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(1.0), "{city}");
        }
        assert!(
            index.queries() > queries_before,
            "{city}: the overlaid requests must ride the CH tier"
        );
    }
}

/// While a customization is in flight (held in flight here via the pause
/// hook), requests pinned to the new epoch are served **immediately**
/// off the Dijkstra fallback — same bytes, counted by
/// `arp_ch_fallbacks_total`, never blocking, never an error — and
/// `/api/health` reports the tier as enabled-but-not-ready. Once the
/// customization lands, the CH path takes over.
#[test]
fn in_flight_customization_falls_back_without_blocking_or_diverging() {
    let make = |ch: bool| {
        let g = arp_citygen::generate(City::Dhaka, Scale::Tiny, 9);
        let qp = QueryProcessor::new(g.name.clone(), g.network, 9);
        let qp = if ch { qp.with_ch_index() } else { qp };
        DemoApp::with_config(qp, ServeConfig::default())
    };
    let plain = make(false);
    let fast = make(true);
    let index = fast.processor.ch_index().unwrap();

    // Park the customizer, then bump the epoch on both apps.
    index.pause();
    let delta = r#"{"delta": "cat:primary*1.4"}"#;
    assert_eq!(plain.handle("POST", "/api/traffic", delta).status, 200);
    assert_eq!(fast.handle("POST", "/api/traffic", delta).status, 200);

    // Health: enabled, not ready (metric still at epoch 0).
    let health = fast.handle("GET", "/api/health", "");
    assert_eq!(health.status, 200, "{}", health.body);
    let v = json::parse(&health.body).unwrap();
    let ix = v.get("index").expect("index object in health");
    assert_eq!(ix.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(ix.get("ready").and_then(Json::as_bool), Some(false));
    assert_eq!(ix.get("metric_epoch").and_then(Json::as_f64), Some(0.0));

    // The epoch-1 request serves right away, identically, via fallback.
    let body = route_body(&plain, 0.3, 0.6, 0.75, 0.75);
    let fallbacks_before = index.fallbacks();
    let a = plain.handle("POST", "/api/route", &body);
    let b = fast.handle("POST", "/api/route", &body);
    assert_eq!(a.status, 200, "{}", a.body);
    assert_eq!(
        sans_trace_id(&a.body),
        sans_trace_id(&b.body),
        "fallback bytes must match the plain path"
    );
    let v = json::parse(&b.body).unwrap();
    assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(1.0));
    assert!(
        index.fallbacks() > fallbacks_before,
        "the not-ready epoch must be counted as a fallback"
    );

    // Publish the metric; a fresh pair now rides the CH path — and the
    // health verdict flips to ready.
    assert!(index.customize_now());
    let queries_before = index.queries();
    let body = route_body(&plain, 0.2, 0.3, 0.8, 0.7);
    let a = plain.handle("POST", "/api/route", &body);
    let b = fast.handle("POST", "/api/route", &body);
    assert_eq!(
        sans_trace_id(&a.body),
        sans_trace_id(&b.body),
        "post-customization bytes must match"
    );
    assert!(index.queries() > queries_before, "CH path must serve now");
    let health = fast.handle("GET", "/api/health", "");
    let v = json::parse(&health.body).unwrap();
    let ix = v.get("index").unwrap();
    assert_eq!(ix.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(ix.get("metric_epoch").and_then(Json::as_f64), Some(1.0));
    index.resume();

    // And an app without the tier reports it disabled.
    let health = plain.handle("GET", "/api/health", "");
    let v = json::parse(&health.body).unwrap();
    let ix = v.get("index").unwrap();
    assert_eq!(ix.get("enabled").and_then(Json::as_bool), Some(false));
}

/// The traffic subsystem's adversarial mid-load test, repeated on the CH
/// tier: the ticker bumps the epoch continuously while workers hammer
/// the pipeline, and every route in every response must re-cost exactly
/// under the single epoch the response claims. With the tier enabled,
/// requests race real background customizations — some ride the CH path,
/// the rest fall back — and the audit proves neither path ever pairs a
/// stale metric with a newer epoch.
#[test]
fn epoch_bump_mid_load_never_mixes_epochs_on_the_ch_tier() {
    let g = arp_citygen::generate(City::Melbourne, Scale::Small, 7);
    let qp = Arc::new(QueryProcessor::new(g.name.clone(), g.network, 7).with_ch_index());
    let service = Arc::new(RouteService::with_metrics(
        DemoBackend::new(Arc::clone(&qp)),
        ServeConfig::default(),
        ServeMetrics::default(),
    ));

    let columns: Arc<Mutex<HashMap<u64, Arc<Vec<Weight>>>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let snap = qp.traffic().snapshot();
        columns
            .lock()
            .unwrap()
            .insert(snap.epoch(), Arc::clone(snap.weights()));
    }

    let bb = qp.network().bbox();
    let endpoints = [
        (0.30, 0.60, 0.75, 0.75),
        (0.20, 0.30, 0.80, 0.70),
        (0.40, 0.20, 0.60, 0.85),
    ];
    let queries: Vec<_> = endpoints
        .iter()
        .map(|&(sx, sy, tx, ty)| {
            let s = arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * sx,
                bb.min_lat + bb.height_deg() * sy,
            );
            let t = arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * tx,
                bb.min_lat + bb.height_deg() * ty,
            );
            qp.snap(s, t).expect("inner points snap")
        })
        .collect();

    // Each swap slows every residential edge further, so any two epochs
    // disagree on any route touching a residential street — a torn lane
    // cannot re-cost cleanly.
    let ticker = {
        let qp = Arc::clone(&qp);
        let columns = Arc::clone(&columns);
        thread::spawn(move || {
            for round in 0..12u32 {
                let factor = 1.0 + 0.1 * f64::from(round + 1);
                let delta = TrafficDelta::parse(&format!("cat:residential*{factor:.3}")).unwrap();
                let outcome = qp.traffic().apply_delta(&delta).unwrap();
                let snap = qp.traffic().snapshot();
                assert_eq!(snap.epoch(), outcome.epoch);
                columns
                    .lock()
                    .unwrap()
                    .insert(snap.epoch(), Arc::clone(snap.weights()));
                thread::sleep(Duration::from_millis(3));
            }
        })
    };

    let mut workers = Vec::new();
    for worker in 0..3 {
        let qp = Arc::clone(&qp);
        let service = Arc::clone(&service);
        let queries = queries.clone();
        workers.push(thread::spawn(move || {
            let mut responses = Vec::new();
            for i in 0..25 {
                let snapped = queries[(worker + i) % queries.len()];
                let prepared = qp.prepare_query(snapped);
                let resp = service.route(prepared).expect("healthy service must route");
                responses.push(resp);
            }
            responses
        }));
    }
    let responses: Vec<_> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();
    ticker.join().unwrap();

    // Audit: every route re-costs exactly under its response's epoch.
    let columns = columns.lock().unwrap();
    let mut epochs_seen = std::collections::BTreeSet::new();
    for resp in &responses {
        epochs_seen.insert(resp.epoch);
        let weights = columns
            .get(&resp.epoch)
            .unwrap_or_else(|| panic!("response stamped with unpublished epoch {}", resp.epoch));
        for approach in &resp.approaches {
            for route in &approach.routes {
                let recosted: u64 = route
                    .edges
                    .iter()
                    .map(|&e| u64::from(weights[e.index()]))
                    .sum();
                assert_eq!(
                    recosted, route.cost_ms,
                    "approach {} route does not re-cost under epoch {} — a stale CH metric \
                     leaked into a newer epoch's response",
                    approach.label, resp.epoch
                );
            }
        }
    }
    assert!(
        epochs_seen.len() >= 2,
        "the load must actually straddle an epoch bump (saw {epochs_seen:?})"
    );
    let index = qp.ch_index().unwrap();
    assert!(
        index.queries() + index.fallbacks() > 0,
        "the readiness gate must have been consulted under load"
    );
}

/// TTL closures through the tier: a `close:E@1` kills the only path (an
/// error response, not a panic, CH enabled or not); the next feed tick
/// expires the closure, the customizer tracks the reopen epoch, and the
/// CH-served response equals the plain one again.
#[test]
fn ttl_closure_reopen_is_tracked_by_the_ch_tier() {
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::geo::Point;

    let build_net = || {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(144.00, -37.00));
        let n1 = b.add_node(Point::new(144.01, -37.00));
        let n2 = b.add_node(Point::new(144.02, -37.00));
        b.add_bidirectional(n0, n1, EdgeSpec::default());
        b.add_bidirectional(n1, n2, EdgeSpec::default());
        (b.build(), n0, n2)
    };
    let (net, n0, n2) = build_net();
    let cut: Vec<u32> = net
        .edges()
        .filter(|&e| {
            let (a, b) = (net.tail(e).0, net.head(e).0);
            (a, b) == (1, 2) || (a, b) == (2, 1)
        })
        .map(|e| e.0)
        .collect();
    assert_eq!(cut.len(), 2);

    let make = |ch: bool| {
        let (net, _, _) = build_net();
        let qp = QueryProcessor::new("Chain", net, 1);
        let qp = if ch { qp.with_ch_index() } else { qp };
        let qp = Arc::new(qp);
        let service = RouteService::with_metrics(
            DemoBackend::new(Arc::clone(&qp)),
            ServeConfig::default(),
            ServeMetrics::default(),
        );
        (qp, service)
    };
    let (plain_qp, plain) = make(false);
    let (fast_qp, fast) = make(true);
    let snapped = arp_demo::SnappedQuery {
        source: n0,
        target: n2,
    };

    // Close the n1↔n2 pair for exactly one tick, on both stacks.
    let statements: Vec<String> = cut.iter().map(|e| format!("close:{e}@1")).collect();
    let delta = TrafficDelta::parse(&statements.join("; ")).unwrap();
    plain_qp.traffic().apply_delta(&delta).unwrap();
    fast_qp.traffic().apply_delta(&delta).unwrap();
    let index = fast_qp.ch_index().unwrap();
    assert!(index.wait_ready(1, READY_TIMEOUT));

    // Both stacks refuse identically: every lane Unreachable.
    let closed = plain.route(plain_qp.prepare_query(snapped));
    assert!(
        matches!(closed, Err(arp_serve::ServeError::AllLanesFailed { .. })),
        "{closed:?}"
    );
    let closed = fast.route(fast_qp.prepare_query(snapped));
    assert!(
        matches!(closed, Err(arp_serve::ServeError::AllLanesFailed { .. })),
        "{closed:?}"
    );

    // One feed tick expires the TTL; the same deterministic feed drives
    // both stacks so their columns stay identical.
    // No random incidents: the feed must not re-close the chain's only
    // path while we are proving the TTL reopen.
    let profile = arp_traffic::CityProfile::for_city_name("Chain");
    let feed = arp_traffic::TrafficFeed::new(5, profile).with_incident_rate(0.0);
    let out_plain = plain_qp.traffic().advance_tick(&feed).unwrap();
    let out_fast = fast_qp.traffic().advance_tick(&feed).unwrap();
    assert_eq!(out_plain.epoch, out_fast.epoch);
    assert_eq!(out_fast.expired, 2, "both TTL closures must expire");
    assert_eq!(out_fast.closures_active, 0);
    assert!(index.wait_ready(out_fast.epoch, READY_TIMEOUT));

    // Service restored on the reopen epoch, byte-identical across tiers.
    let a = plain.route(plain_qp.prepare_query(snapped)).unwrap();
    let b = fast.route(fast_qp.prepare_query(snapped)).unwrap();
    assert_eq!(a.epoch, out_fast.epoch);
    assert_same_response(&b, &a, "after TTL reopen");
}

/// Epoch wraparound through the tier: a forced `u64::MAX` epoch followed
/// by a delta wraps to epoch 0 — whose column is now *overlaid*, not the
/// base weights — and the exact-match gate serves it correctly while
/// refusing the stale pre-wrap metric.
#[test]
fn forced_wraparound_epoch_serves_exactly_through_the_ch_tier() {
    let make = |ch: bool| {
        let g = arp_citygen::generate(City::Copenhagen, Scale::Tiny, 11);
        let qp = QueryProcessor::new(g.name.clone(), g.network, 11);
        let qp = if ch { qp.with_ch_index() } else { qp };
        let qp = Arc::new(qp);
        let service = RouteService::with_metrics(
            DemoBackend::new(Arc::clone(&qp)),
            ServeConfig::default(),
            ServeMetrics::default(),
        );
        (qp, service)
    };
    let (plain_qp, plain) = make(false);
    let (fast_qp, fast) = make(true);
    let index = fast_qp.ch_index().unwrap();

    let delta = TrafficDelta::parse("cat:residential*1.6").unwrap();
    for qp in [&plain_qp, &fast_qp] {
        qp.traffic().force_epoch(u64::MAX);
        let outcome = qp.traffic().apply_delta(&delta).unwrap();
        assert_eq!(outcome.epoch, 0, "the swap past u64::MAX must wrap");
    }
    assert!(index.wait_ready(0, READY_TIMEOUT));

    let bb = plain_qp.network().bbox();
    let s = arp_roadnet::geo::Point::new(
        bb.min_lon + bb.width_deg() * 0.3,
        bb.min_lat + bb.height_deg() * 0.6,
    );
    let t = arp_roadnet::geo::Point::new(
        bb.min_lon + bb.width_deg() * 0.75,
        bb.min_lat + bb.height_deg() * 0.75,
    );
    let snapped = plain_qp.snap(s, t).unwrap();

    let queries_before = index.queries();
    let a = plain.route(plain_qp.prepare_query(snapped)).unwrap();
    let b = fast.route(fast_qp.prepare_query(snapped)).unwrap();
    assert_eq!(a.epoch, 0, "wrapped epoch is 0 again");
    assert_same_response(&b, &a, "wrapped epoch");
    assert!(
        index.queries() > queries_before,
        "the wrapped epoch's metric must serve the CH path"
    );
}
