//! The traffic subsystem's serving-layer acceptance tests.
//!
//! The central one is adversarial: bump the graph epoch continuously while
//! request threads hammer the serving pipeline, and prove that **no
//! response ever mixes epochs** — every route in every response re-costs
//! *exactly* (millisecond for millisecond, edge by edge) under the weight
//! column of the single epoch the response claims. A torn read — one lane
//! computed under the old weights, another under the new — would make at
//! least one route's edge-sum disagree with its priced cost, because
//! consecutive epochs here always differ on every residential edge.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use arp_citygen::{City, Scale};
use arp_demo::query::QueryProcessor;
use arp_demo::DemoBackend;
use arp_roadnet::weight::Weight;
use arp_serve::{RouteService, ServeConfig, ServeMetrics};
use arp_traffic::TrafficDelta;

#[test]
fn epoch_bump_mid_load_never_serves_a_mixed_epoch_route() {
    let g = arp_citygen::generate(City::Melbourne, Scale::Small, 7);
    let qp = Arc::new(QueryProcessor::new(g.name.clone(), g.network, 7));
    let service = Arc::new(RouteService::with_metrics(
        DemoBackend::new(Arc::clone(&qp)),
        ServeConfig::default(),
        ServeMetrics::default(),
    ));

    // Epoch → weight column, as published. The ticker records each column
    // right after its swap; requesters only *read* the map after every
    // thread has joined, so a response stamped with epoch N always finds
    // column N here.
    let columns: Mutex<HashMap<u64, Arc<Vec<Weight>>>> = Mutex::new(HashMap::new());
    let columns = Arc::new(columns);
    {
        let snap = qp.traffic().snapshot();
        columns
            .lock()
            .unwrap()
            .insert(snap.epoch(), Arc::clone(snap.weights()));
    }

    let bb = qp.network().bbox();
    let endpoints = [
        (0.30, 0.60, 0.75, 0.75),
        (0.20, 0.30, 0.80, 0.70),
        (0.40, 0.20, 0.60, 0.85),
    ];
    let queries: Vec<_> = endpoints
        .iter()
        .map(|&(sx, sy, tx, ty)| {
            let s = arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * sx,
                bb.min_lat + bb.height_deg() * sy,
            );
            let t = arp_roadnet::geo::Point::new(
                bb.min_lon + bb.width_deg() * tx,
                bb.min_lat + bb.height_deg() * ty,
            );
            qp.snap(s, t).expect("inner points snap")
        })
        .collect();

    // The ticker: a dozen swaps, each making *every* residential edge
    // strictly slower than the previous epoch, so any two epochs disagree
    // on any route touching a residential street — and small-scale cities
    // are mostly residential, so torn lanes cannot re-cost cleanly.
    let ticker = {
        let qp = Arc::clone(&qp);
        let columns = Arc::clone(&columns);
        thread::spawn(move || {
            for round in 0..12u32 {
                let factor = 1.0 + 0.1 * f64::from(round + 1);
                let delta = TrafficDelta::parse(&format!("cat:residential*{factor:.3}")).unwrap();
                let outcome = qp.traffic().apply_delta(&delta).unwrap();
                let snap = qp.traffic().snapshot();
                assert_eq!(snap.epoch(), outcome.epoch);
                columns
                    .lock()
                    .unwrap()
                    .insert(snap.epoch(), Arc::clone(snap.weights()));
                thread::sleep(Duration::from_millis(3));
            }
        })
    };

    // The requesters: pin an epoch per request (exactly what the HTTP
    // handler does), route through the full serving pipeline — cache,
    // fan-out, assembly — and keep every response for post-hoc audit.
    let mut workers = Vec::new();
    for worker in 0..3 {
        let qp = Arc::clone(&qp);
        let service = Arc::clone(&service);
        let queries = queries.clone();
        workers.push(thread::spawn(move || {
            let mut responses = Vec::new();
            for i in 0..25 {
                let snapped = queries[(worker + i) % queries.len()];
                let prepared = qp.prepare_query(snapped);
                let resp = service.route(prepared).expect("healthy service must route");
                responses.push(resp);
            }
            responses
        }));
    }
    let responses: Vec<_> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();
    ticker.join().unwrap();

    // Audit: every route re-costs exactly under its response's epoch.
    let columns = columns.lock().unwrap();
    let mut epochs_seen = std::collections::BTreeSet::new();
    for resp in &responses {
        epochs_seen.insert(resp.epoch);
        let weights = columns
            .get(&resp.epoch)
            .unwrap_or_else(|| panic!("response stamped with unpublished epoch {}", resp.epoch));
        for approach in &resp.approaches {
            for route in &approach.routes {
                let recosted: u64 = route
                    .edges
                    .iter()
                    .map(|&e| u64::from(weights[e.index()]))
                    .sum();
                assert_eq!(
                    recosted, route.cost_ms,
                    "approach {} route does not re-cost under epoch {} — a mixed-epoch \
                     response leaked through the serving pipeline",
                    approach.label, resp.epoch
                );
            }
        }
    }
    assert!(
        epochs_seen.len() >= 2,
        "the load must actually straddle an epoch bump (saw {epochs_seen:?})"
    );
}

/// Closing the only edge into the target degrades each lane — an
/// `Unreachable` per technique, surfaced as a failed request — without
/// panicking anywhere in the stack, and reopening restores service.
#[test]
fn only_path_closure_degrades_per_lane_and_reopening_restores_service() {
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::geo::Point;

    // A 3-node chain; the middle edge pair is the only way across.
    let mut b = GraphBuilder::new();
    let n0 = b.add_node(Point::new(144.00, -37.00));
    let n1 = b.add_node(Point::new(144.01, -37.00));
    let n2 = b.add_node(Point::new(144.02, -37.00));
    b.add_bidirectional(n0, n1, EdgeSpec::default());
    b.add_bidirectional(n1, n2, EdgeSpec::default());
    let net = b.build();

    // Find both directed edges of the n1↔n2 pair: with them closed, n2 is
    // unreachable from n0 and vice versa.
    let cut: Vec<u32> = net
        .edges()
        .filter(|&e| {
            (net.tail(e) == n1 && net.head(e) == n2) || (net.tail(e) == n2 && net.head(e) == n1)
        })
        .map(|e| e.0)
        .collect();
    assert_eq!(cut.len(), 2);

    let qp = Arc::new(QueryProcessor::new("Chain", net, 1));
    let service = RouteService::with_metrics(
        DemoBackend::new(Arc::clone(&qp)),
        ServeConfig::default(),
        ServeMetrics::default(),
    );
    let snapped = arp_demo::SnappedQuery {
        source: n0,
        target: n2,
    };

    // Open: the pair routes.
    let open = service.route(qp.prepare_query(snapped)).unwrap();
    assert_eq!(open.epoch, 0);
    assert!(open.approaches.iter().any(|a| !a.routes.is_empty()));

    // Closed: every lane reports its own Unreachable; the service answers
    // with AllLanesFailed — an error response, never a panic.
    let statements: Vec<String> = cut.iter().map(|e| format!("close:{e}")).collect();
    let delta = TrafficDelta::parse(&statements.join("; ")).unwrap();
    qp.traffic().apply_delta(&delta).unwrap();
    let closed = service.route(qp.prepare_query(snapped));
    assert!(
        matches!(closed, Err(arp_serve::ServeError::AllLanesFailed { .. })),
        "{closed:?}"
    );

    // Reopened: service restored, on a fresh epoch, same routes as before.
    let statements: Vec<String> = cut.iter().map(|e| format!("reopen:{e}")).collect();
    let delta = TrafficDelta::parse(&statements.join("; ")).unwrap();
    qp.traffic().apply_delta(&delta).unwrap();
    let reopened = service.route(qp.prepare_query(snapped)).unwrap();
    assert_eq!(reopened.epoch, 2);
    assert_eq!(reopened.fastest_minutes, open.fastest_minutes);
}
