//! Concurrency smoke test: hammer `/api/route` from many threads with a
//! mix of repeated and unique queries and check that
//!
//! * every response is byte-identical to the single-threaded answer for
//!   the same body (parallel fan-out and caching change *when* work runs,
//!   never *what* comes back),
//! * the route cache actually absorbed the repeats (hit counter > 0),
//! * nothing was shed while concurrency stayed below the admission limit.
//!
//! The cross-city check runs the same comparison on Melbourne, Dhaka and
//! Copenhagen with caching on and off.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use arp_citygen::{City, Scale};
use arp_demo::json::{self, Json};
use arp_demo::prelude::*;
use arp_serve::ServeConfig;

fn app_with(city: City, seed: u64, config: ServeConfig) -> DemoApp {
    let g = arp_citygen::generate(city, Scale::Small, seed);
    DemoApp::with_config(QueryProcessor::new(g.name.clone(), g.network, seed), config)
}

/// A served body minus its per-request `trace_id`: every request mints a
/// fresh id, so determinism comparisons go modulo that one field.
fn sans_trace_id(body: &str) -> String {
    let mut v = json::parse(body).expect("served body parses");
    if let Json::Object(map) = &mut v {
        assert!(map.remove("trace_id").is_some(), "missing trace_id: {body}");
    }
    v.to_string_compact()
}

/// A route body from bounding-box fractions, kept inside the study area.
fn body_at(app: &DemoApp, fs: (f64, f64), ft: (f64, f64)) -> String {
    let bb = app.processor.network().bbox();
    format!(
        r#"{{"slon": {}, "slat": {}, "tlon": {}, "tlat": {}}}"#,
        bb.min_lon + bb.width_deg() * fs.0,
        bb.min_lat + bb.height_deg() * fs.1,
        bb.min_lon + bb.width_deg() * ft.0,
        bb.min_lat + bb.height_deg() * ft.1,
    )
}

#[test]
fn parallel_and_cached_responses_match_across_cities() {
    for (city, seed) in [
        (City::Melbourne, 21u64),
        (City::Dhaka, 22),
        (City::Copenhagen, 23),
    ] {
        // Cache off, one worker with a tiny queue: every lane degrades to
        // inline execution on the request thread — the serial shape.
        let serial = app_with(
            city,
            seed,
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        // Cache on, full parallel fan-out.
        let parallel = app_with(city, seed, ServeConfig::default());

        let bodies = [
            body_at(&serial, (0.3, 0.4), (0.7, 0.7)),
            body_at(&serial, (0.25, 0.6), (0.75, 0.35)),
        ];
        for body in &bodies {
            let a = serial.handle("POST", "/api/route", body);
            let b = parallel.handle("POST", "/api/route", body);
            let b_cached = parallel.handle("POST", "/api/route", body);
            assert_eq!(a.status, 200, "{city:?}: {}", a.body);
            assert_eq!(
                sans_trace_id(&a.body),
                sans_trace_id(&b.body),
                "{city:?}: fan-out answer differs"
            );
            assert_eq!(
                sans_trace_id(&a.body),
                sans_trace_id(&b_cached.body),
                "{city:?}: cached answer differs"
            );
        }
    }
}

#[test]
fn hammering_route_is_deterministic_and_feeds_the_cache() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let app = Arc::new(app_with(
        City::Melbourne,
        31,
        ServeConfig {
            // Admission comfortably above THREADS: nothing may be shed.
            max_inflight: 64,
            ..ServeConfig::default()
        },
    ));

    // Shared bodies (cache fodder) plus one unique query per thread.
    let shared: Vec<String> = vec![
        body_at(&app, (0.3, 0.4), (0.7, 0.7)),
        body_at(&app, (0.35, 0.3), (0.65, 0.75)),
        body_at(&app, (0.25, 0.55), (0.8, 0.45)),
    ];
    let unique: Vec<String> = (0..THREADS)
        .map(|i| {
            let f = 0.28 + 0.04 * i as f64;
            body_at(&app, (f, 0.35), (0.72, f))
        })
        .collect();

    // Single-threaded reference answers first.
    let mut expected: HashMap<String, String> = HashMap::new();
    for body in shared.iter().chain(unique.iter()) {
        let resp = app.handle("POST", "/api/route", body);
        assert_eq!(resp.status, 200, "{}", resp.body);
        expected.insert(body.clone(), sans_trace_id(&resp.body));
    }

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let app = Arc::clone(&app);
            let shared = shared.clone();
            let mine = unique[t].clone();
            thread::spawn(move || {
                let mut out = Vec::new();
                for round in 0..ROUNDS {
                    let body = if round % 2 == 0 {
                        shared[(t + round) % shared.len()].clone()
                    } else {
                        mine.clone()
                    };
                    let resp = app.handle("POST", "/api/route", &body);
                    out.push((body, resp.status, resp.body));
                }
                out
            })
        })
        .collect();

    let mut responses = 0usize;
    for handle in handles {
        for (body, status, text) in handle.join().expect("worker thread") {
            assert_eq!(status, 200, "shed below the admission limit: {text}");
            assert_eq!(
                &sans_trace_id(&text),
                expected.get(&body).expect("known body"),
                "concurrent answer differs from the serial reference"
            );
            responses += 1;
        }
    }
    assert_eq!(responses, THREADS * ROUNDS);

    let registry = app.processor.registry();
    assert!(
        registry.counter_value("arp_serve_cache_hits_total", &[]) > 0,
        "repeated queries never hit the cache"
    );
    assert_eq!(
        registry.counter_value("arp_serve_shed_total", &[("reason", "admission_full")]),
        0,
        "requests were shed below the admission limit"
    );
}
