//! The identity-overlay regression suite: a traffic overlay whose
//! operations net out to *no change* must be invisible — byte for byte —
//! to every technique, on every city.
//!
//! This is the contract that makes the traffic subsystem safe to keep
//! always-on: serving with an identity overlay (the state every instance
//! boots into, and the state any instance returns to once every factor is
//! reset and every closure reopened) produces exactly the routes the
//! pre-traffic pipeline produced. Not "equivalent" routes — the same
//! `Route` values, node for node, cost for cost, on the shared-substrate
//! path as well as the self-computing one. The overlay even shares the
//! base weight allocation (`Arc::ptr_eq`), so the zero-traffic fast path
//! costs nothing.

use std::sync::Arc;

use arp_citygen::{City, Scale};
use arp_core::{AltQuery, ProviderContext, SearchBudget, SearchSpace, SearchSubstrate};
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::ids::NodeId;
use arp_traffic::{TrafficDelta, TrafficState};

/// Deterministic routable node pairs spread across the network: candidate
/// endpoints at fixed fractions of the node range, kept only when a route
/// exists between them.
fn routable_pairs(net: &RoadNetwork) -> Vec<(NodeId, NodeId)> {
    let n = net.num_nodes();
    let mut space = SearchSpace::new(net);
    let candidates = [
        (n / 5, 4 * n / 5),
        (n / 3, 2 * n / 3),
        (n / 10, 9 * n / 10),
        (2 * n / 5, 3 * n / 5),
    ];
    let pairs: Vec<(NodeId, NodeId)> = candidates
        .into_iter()
        .map(|(a, b)| (NodeId(a as u32), NodeId(b as u32)))
        .filter(|&(a, b)| a != b && space.shortest_distance(net, net.weights(), a, b).is_ok())
        .collect();
    assert!(
        !pairs.is_empty(),
        "generated city must contain at least one routable candidate pair"
    );
    pairs
}

/// A delta whose statements cancel out exactly: category slowed and
/// restored, an edge scaled and unscaled, an edge closed and reopened.
/// Applying it bumps the epoch (epoch counts *swaps*, not changes) but
/// must leave the effective weights identical to — and sharing the
/// allocation of — the base column.
fn identity_round_trip(city: City) {
    let g = arp_citygen::generate(city, Scale::Small, 42);
    let net = Arc::new(g.network);
    let state = TrafficState::new(Arc::clone(&net));
    let base = state.snapshot();
    assert_eq!(base.epoch(), 0);

    let delta = TrafficDelta::parse(
        "cat:primary*1.8; edge:3*2.5; close:7@9; cat:primary*1.0; edge:3*1.0; reopen:7",
    )
    .unwrap();
    let outcome = state.apply_delta(&delta).unwrap();
    assert_eq!(outcome.epoch, 1);
    let snap = state.snapshot();
    assert_eq!(snap.epoch(), 1);
    assert_eq!(snap.overlay_size(), 0, "all operations must cancel out");
    assert!(
        Arc::ptr_eq(snap.weights(), base.weights()),
        "identity overlay must share the base weight allocation"
    );

    // Sharing the allocation makes value identity trivial, but the real
    // contract is behavioural: run all four techniques on both columns,
    // self-computing and substrate-fed, and demand the same `Route`
    // values. This keeps the test meaningful even if materialization
    // later stops short-circuiting the identity case.
    let query = AltQuery::paper();
    let providers = arp_core::standard_providers(&net, 42);
    let budget = SearchBudget::unlimited();
    for (s, t) in routable_pairs(&net) {
        let sub_base = SearchSubstrate::build(&net, base.weights().as_slice(), s, t, &budget)
            .expect("routable pair must yield a substrate");
        let sub_snap = SearchSubstrate::build(&net, snap.weights().as_slice(), s, t, &budget)
            .expect("routable pair must yield a substrate")
            .with_epoch(snap.epoch());
        let ctx_base = ProviderContext::with_substrate(&sub_base);
        let ctx_snap = ProviderContext::with_substrate_at_epoch(&sub_snap, snap.epoch());

        for p in &providers {
            let plain_base = p
                .alternatives(&net, base.weights(), s, t, &query)
                .expect("base column must route");
            let plain_snap = p
                .alternatives(&net, snap.weights(), s, t, &query)
                .expect("identity column must route");
            assert_eq!(
                plain_base,
                plain_snap,
                "{}: identity overlay changed the self-computed routes",
                p.kind()
            );

            let fed_base = p
                .alternatives_in_context(&net, base.weights(), s, t, &query, &budget, &ctx_base)
                .expect("base substrate path must route")
                .routes();
            let fed_snap = p
                .alternatives_in_context(&net, snap.weights(), s, t, &query, &budget, &ctx_snap)
                .expect("identity substrate path must route")
                .routes();
            assert_eq!(
                fed_base,
                fed_snap,
                "{}: identity overlay changed the substrate-fed routes",
                p.kind()
            );
            assert_eq!(
                plain_base,
                fed_base,
                "{}: substrate-fed routes diverged from self-computed ones",
                p.kind()
            );
        }
    }
}

#[test]
fn identity_overlay_is_invisible_on_melbourne() {
    identity_round_trip(City::Melbourne);
}

#[test]
fn identity_overlay_is_invisible_on_dhaka() {
    identity_round_trip(City::Dhaka);
}

#[test]
fn identity_overlay_is_invisible_on_copenhagen() {
    identity_round_trip(City::Copenhagen);
}
